file(REMOVE_RECURSE
  "CMakeFiles/bench_ckpt_sched.dir/bench_ckpt_sched.cpp.o"
  "CMakeFiles/bench_ckpt_sched.dir/bench_ckpt_sched.cpp.o.d"
  "bench_ckpt_sched"
  "bench_ckpt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ckpt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
