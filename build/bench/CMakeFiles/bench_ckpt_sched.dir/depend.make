# Empty dependencies file for bench_ckpt_sched.
# This may be replaced when dependencies are built.
