file(REMOVE_RECURSE
  "CMakeFiles/bench_nonblocking.dir/bench_nonblocking.cpp.o"
  "CMakeFiles/bench_nonblocking.dir/bench_nonblocking.cpp.o.d"
  "bench_nonblocking"
  "bench_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
