# Empty dependencies file for bench_nonblocking.
# This may be replaced when dependencies are built.
