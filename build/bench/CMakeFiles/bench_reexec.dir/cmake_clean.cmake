file(REMOVE_RECURSE
  "CMakeFiles/bench_reexec.dir/bench_reexec.cpp.o"
  "CMakeFiles/bench_reexec.dir/bench_reexec.cpp.o.d"
  "bench_reexec"
  "bench_reexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
