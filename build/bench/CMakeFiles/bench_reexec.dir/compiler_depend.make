# Empty compiler generated dependencies file for bench_reexec.
# This may be replaced when dependencies are built.
