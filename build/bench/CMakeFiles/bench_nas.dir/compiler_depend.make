# Empty compiler generated dependencies file for bench_nas.
# This may be replaced when dependencies are built.
