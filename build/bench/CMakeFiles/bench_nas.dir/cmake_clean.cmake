file(REMOVE_RECURSE
  "CMakeFiles/bench_nas.dir/bench_nas.cpp.o"
  "CMakeFiles/bench_nas.dir/bench_nas.cpp.o.d"
  "bench_nas"
  "bench_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
