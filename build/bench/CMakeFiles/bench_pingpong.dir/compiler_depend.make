# Empty compiler generated dependencies file for bench_pingpong.
# This may be replaced when dependencies are built.
