file(REMOVE_RECURSE
  "CMakeFiles/bench_pingpong.dir/bench_pingpong.cpp.o"
  "CMakeFiles/bench_pingpong.dir/bench_pingpong.cpp.o.d"
  "bench_pingpong"
  "bench_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
