file(REMOVE_RECURSE
  "CMakeFiles/bench_datapath.dir/bench_datapath.cpp.o"
  "CMakeFiles/bench_datapath.dir/bench_datapath.cpp.o.d"
  "bench_datapath"
  "bench_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
