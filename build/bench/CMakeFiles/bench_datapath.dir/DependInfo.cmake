
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_datapath.cpp" "bench/CMakeFiles/bench_datapath.dir/bench_datapath.cpp.o" "gcc" "bench/CMakeFiles/bench_datapath.dir/bench_datapath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mpiv_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpiv_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/v1/CMakeFiles/mpiv_v1.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/mpiv_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/mpiv_services.dir/DependInfo.cmake"
  "/root/repo/build/src/v2/CMakeFiles/mpiv_v2.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mpiv_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mpiv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpiv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
