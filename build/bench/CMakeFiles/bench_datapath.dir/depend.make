# Empty dependencies file for bench_datapath.
# This may be replaced when dependencies are built.
