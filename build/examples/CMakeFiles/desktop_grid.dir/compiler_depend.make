# Empty compiler generated dependencies file for desktop_grid.
# This may be replaced when dependencies are built.
