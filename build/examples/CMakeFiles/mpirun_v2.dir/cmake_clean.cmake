file(REMOVE_RECURSE
  "CMakeFiles/mpirun_v2.dir/mpirun_v2.cpp.o"
  "CMakeFiles/mpirun_v2.dir/mpirun_v2.cpp.o.d"
  "mpirun_v2"
  "mpirun_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpirun_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
