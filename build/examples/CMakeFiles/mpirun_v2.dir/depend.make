# Empty dependencies file for mpirun_v2.
# This may be replaced when dependencies are built.
