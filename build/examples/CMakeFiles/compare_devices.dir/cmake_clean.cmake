file(REMOVE_RECURSE
  "CMakeFiles/compare_devices.dir/compare_devices.cpp.o"
  "CMakeFiles/compare_devices.dir/compare_devices.cpp.o.d"
  "compare_devices"
  "compare_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
