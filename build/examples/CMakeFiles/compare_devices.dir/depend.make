# Empty dependencies file for compare_devices.
# This may be replaced when dependencies are built.
