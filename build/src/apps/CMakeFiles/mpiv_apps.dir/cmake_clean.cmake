file(REMOVE_RECURSE
  "CMakeFiles/mpiv_apps.dir/adi.cpp.o"
  "CMakeFiles/mpiv_apps.dir/adi.cpp.o.d"
  "CMakeFiles/mpiv_apps.dir/cg.cpp.o"
  "CMakeFiles/mpiv_apps.dir/cg.cpp.o.d"
  "CMakeFiles/mpiv_apps.dir/ft.cpp.o"
  "CMakeFiles/mpiv_apps.dir/ft.cpp.o.d"
  "CMakeFiles/mpiv_apps.dir/lu.cpp.o"
  "CMakeFiles/mpiv_apps.dir/lu.cpp.o.d"
  "CMakeFiles/mpiv_apps.dir/mg.cpp.o"
  "CMakeFiles/mpiv_apps.dir/mg.cpp.o.d"
  "libmpiv_apps.a"
  "libmpiv_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
