file(REMOVE_RECURSE
  "libmpiv_apps.a"
)
