# Empty compiler generated dependencies file for mpiv_apps.
# This may be replaced when dependencies are built.
