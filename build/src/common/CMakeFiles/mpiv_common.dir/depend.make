# Empty dependencies file for mpiv_common.
# This may be replaced when dependencies are built.
