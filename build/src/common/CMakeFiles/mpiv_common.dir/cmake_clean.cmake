file(REMOVE_RECURSE
  "CMakeFiles/mpiv_common.dir/error.cpp.o"
  "CMakeFiles/mpiv_common.dir/error.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/log.cpp.o"
  "CMakeFiles/mpiv_common.dir/log.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/options.cpp.o"
  "CMakeFiles/mpiv_common.dir/options.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/rng.cpp.o"
  "CMakeFiles/mpiv_common.dir/rng.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/serialize.cpp.o"
  "CMakeFiles/mpiv_common.dir/serialize.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/stats.cpp.o"
  "CMakeFiles/mpiv_common.dir/stats.cpp.o.d"
  "CMakeFiles/mpiv_common.dir/units.cpp.o"
  "CMakeFiles/mpiv_common.dir/units.cpp.o.d"
  "libmpiv_common.a"
  "libmpiv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
