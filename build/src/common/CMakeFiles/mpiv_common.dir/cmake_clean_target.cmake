file(REMOVE_RECURSE
  "libmpiv_common.a"
)
