
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/ckpt_policies.cpp" "src/services/CMakeFiles/mpiv_services.dir/ckpt_policies.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/ckpt_policies.cpp.o.d"
  "/root/repo/src/services/ckpt_scheduler.cpp" "src/services/CMakeFiles/mpiv_services.dir/ckpt_scheduler.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/ckpt_scheduler.cpp.o.d"
  "/root/repo/src/services/ckpt_server.cpp" "src/services/CMakeFiles/mpiv_services.dir/ckpt_server.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/ckpt_server.cpp.o.d"
  "/root/repo/src/services/dispatcher.cpp" "src/services/CMakeFiles/mpiv_services.dir/dispatcher.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/dispatcher.cpp.o.d"
  "/root/repo/src/services/event_logger.cpp" "src/services/CMakeFiles/mpiv_services.dir/event_logger.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/event_logger.cpp.o.d"
  "/root/repo/src/services/program_file.cpp" "src/services/CMakeFiles/mpiv_services.dir/program_file.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/program_file.cpp.o.d"
  "/root/repo/src/services/sched_sim.cpp" "src/services/CMakeFiles/mpiv_services.dir/sched_sim.cpp.o" "gcc" "src/services/CMakeFiles/mpiv_services.dir/sched_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/v2/CMakeFiles/mpiv_v2.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mpiv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mpiv_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpiv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
