file(REMOVE_RECURSE
  "CMakeFiles/mpiv_services.dir/ckpt_policies.cpp.o"
  "CMakeFiles/mpiv_services.dir/ckpt_policies.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/ckpt_scheduler.cpp.o"
  "CMakeFiles/mpiv_services.dir/ckpt_scheduler.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/ckpt_server.cpp.o"
  "CMakeFiles/mpiv_services.dir/ckpt_server.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/dispatcher.cpp.o"
  "CMakeFiles/mpiv_services.dir/dispatcher.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/event_logger.cpp.o"
  "CMakeFiles/mpiv_services.dir/event_logger.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/program_file.cpp.o"
  "CMakeFiles/mpiv_services.dir/program_file.cpp.o.d"
  "CMakeFiles/mpiv_services.dir/sched_sim.cpp.o"
  "CMakeFiles/mpiv_services.dir/sched_sim.cpp.o.d"
  "libmpiv_services.a"
  "libmpiv_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
