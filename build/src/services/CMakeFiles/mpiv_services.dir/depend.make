# Empty dependencies file for mpiv_services.
# This may be replaced when dependencies are built.
