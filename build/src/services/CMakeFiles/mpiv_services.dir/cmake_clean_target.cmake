file(REMOVE_RECURSE
  "libmpiv_services.a"
)
