file(REMOVE_RECURSE
  "CMakeFiles/mpiv_v1.dir/v1_device.cpp.o"
  "CMakeFiles/mpiv_v1.dir/v1_device.cpp.o.d"
  "libmpiv_v1.a"
  "libmpiv_v1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_v1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
