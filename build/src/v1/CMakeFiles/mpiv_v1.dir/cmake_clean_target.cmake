file(REMOVE_RECURSE
  "libmpiv_v1.a"
)
