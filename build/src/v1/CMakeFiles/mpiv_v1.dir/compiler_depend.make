# Empty compiler generated dependencies file for mpiv_v1.
# This may be replaced when dependencies are built.
