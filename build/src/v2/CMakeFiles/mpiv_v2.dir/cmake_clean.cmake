file(REMOVE_RECURSE
  "CMakeFiles/mpiv_v2.dir/daemon.cpp.o"
  "CMakeFiles/mpiv_v2.dir/daemon.cpp.o.d"
  "CMakeFiles/mpiv_v2.dir/v2_device.cpp.o"
  "CMakeFiles/mpiv_v2.dir/v2_device.cpp.o.d"
  "libmpiv_v2.a"
  "libmpiv_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
