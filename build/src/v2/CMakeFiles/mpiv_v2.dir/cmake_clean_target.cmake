file(REMOVE_RECURSE
  "libmpiv_v2.a"
)
