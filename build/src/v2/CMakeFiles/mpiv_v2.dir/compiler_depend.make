# Empty compiler generated dependencies file for mpiv_v2.
# This may be replaced when dependencies are built.
