file(REMOVE_RECURSE
  "CMakeFiles/mpiv_sim.dir/engine.cpp.o"
  "CMakeFiles/mpiv_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mpiv_sim.dir/process.cpp.o"
  "CMakeFiles/mpiv_sim.dir/process.cpp.o.d"
  "libmpiv_sim.a"
  "libmpiv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
