file(REMOVE_RECURSE
  "libmpiv_sim.a"
)
