# Empty compiler generated dependencies file for mpiv_sim.
# This may be replaced when dependencies are built.
