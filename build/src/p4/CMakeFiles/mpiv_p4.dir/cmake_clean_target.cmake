file(REMOVE_RECURSE
  "libmpiv_p4.a"
)
