file(REMOVE_RECURSE
  "CMakeFiles/mpiv_p4.dir/p4_device.cpp.o"
  "CMakeFiles/mpiv_p4.dir/p4_device.cpp.o.d"
  "libmpiv_p4.a"
  "libmpiv_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
