# Empty dependencies file for mpiv_p4.
# This may be replaced when dependencies are built.
