file(REMOVE_RECURSE
  "CMakeFiles/mpiv_runtime.dir/job.cpp.o"
  "CMakeFiles/mpiv_runtime.dir/job.cpp.o.d"
  "libmpiv_runtime.a"
  "libmpiv_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
