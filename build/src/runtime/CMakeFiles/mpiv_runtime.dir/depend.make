# Empty dependencies file for mpiv_runtime.
# This may be replaced when dependencies are built.
