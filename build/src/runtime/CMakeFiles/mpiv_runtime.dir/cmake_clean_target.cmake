file(REMOVE_RECURSE
  "libmpiv_runtime.a"
)
