file(REMOVE_RECURSE
  "CMakeFiles/mpiv_mpi.dir/adi.cpp.o"
  "CMakeFiles/mpiv_mpi.dir/adi.cpp.o.d"
  "CMakeFiles/mpiv_mpi.dir/collectives.cpp.o"
  "CMakeFiles/mpiv_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/mpiv_mpi.dir/comm.cpp.o"
  "CMakeFiles/mpiv_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/mpiv_mpi.dir/profiler.cpp.o"
  "CMakeFiles/mpiv_mpi.dir/profiler.cpp.o.d"
  "libmpiv_mpi.a"
  "libmpiv_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
