# Empty compiler generated dependencies file for mpiv_mpi.
# This may be replaced when dependencies are built.
