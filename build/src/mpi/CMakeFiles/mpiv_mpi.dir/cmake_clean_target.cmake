file(REMOVE_RECURSE
  "libmpiv_mpi.a"
)
