
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/adi.cpp" "src/mpi/CMakeFiles/mpiv_mpi.dir/adi.cpp.o" "gcc" "src/mpi/CMakeFiles/mpiv_mpi.dir/adi.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/mpiv_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/mpiv_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/mpiv_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/mpiv_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/profiler.cpp" "src/mpi/CMakeFiles/mpiv_mpi.dir/profiler.cpp.o" "gcc" "src/mpi/CMakeFiles/mpiv_mpi.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mpiv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpiv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpiv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
