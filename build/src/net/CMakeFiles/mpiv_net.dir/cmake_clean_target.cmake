file(REMOVE_RECURSE
  "libmpiv_net.a"
)
