file(REMOVE_RECURSE
  "CMakeFiles/mpiv_net.dir/network.cpp.o"
  "CMakeFiles/mpiv_net.dir/network.cpp.o.d"
  "libmpiv_net.a"
  "libmpiv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
