# Empty dependencies file for mpiv_net.
# This may be replaced when dependencies are built.
