# Empty dependencies file for test_program_file.
# This may be replaced when dependencies are built.
