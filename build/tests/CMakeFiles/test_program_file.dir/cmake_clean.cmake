file(REMOVE_RECURSE
  "CMakeFiles/test_program_file.dir/test_program_file.cpp.o"
  "CMakeFiles/test_program_file.dir/test_program_file.cpp.o.d"
  "test_program_file"
  "test_program_file.pdb"
  "test_program_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
