# Empty dependencies file for test_v1_cm.
# This may be replaced when dependencies are built.
