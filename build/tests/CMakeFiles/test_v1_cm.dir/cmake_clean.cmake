file(REMOVE_RECURSE
  "CMakeFiles/test_v1_cm.dir/test_v1_cm.cpp.o"
  "CMakeFiles/test_v1_cm.dir/test_v1_cm.cpp.o.d"
  "test_v1_cm"
  "test_v1_cm.pdb"
  "test_v1_cm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v1_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
