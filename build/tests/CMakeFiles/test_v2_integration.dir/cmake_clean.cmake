file(REMOVE_RECURSE
  "CMakeFiles/test_v2_integration.dir/test_v2_integration.cpp.o"
  "CMakeFiles/test_v2_integration.dir/test_v2_integration.cpp.o.d"
  "test_v2_integration"
  "test_v2_integration.pdb"
  "test_v2_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v2_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
