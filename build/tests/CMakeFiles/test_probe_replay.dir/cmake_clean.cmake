file(REMOVE_RECURSE
  "CMakeFiles/test_probe_replay.dir/test_probe_replay.cpp.o"
  "CMakeFiles/test_probe_replay.dir/test_probe_replay.cpp.o.d"
  "test_probe_replay"
  "test_probe_replay.pdb"
  "test_probe_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
