# Empty compiler generated dependencies file for test_probe_replay.
# This may be replaced when dependencies are built.
