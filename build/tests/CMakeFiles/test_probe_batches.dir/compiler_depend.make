# Empty compiler generated dependencies file for test_probe_batches.
# This may be replaced when dependencies are built.
