file(REMOVE_RECURSE
  "CMakeFiles/test_probe_batches.dir/test_probe_batches.cpp.o"
  "CMakeFiles/test_probe_batches.dir/test_probe_batches.cpp.o.d"
  "test_probe_batches"
  "test_probe_batches.pdb"
  "test_probe_batches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
