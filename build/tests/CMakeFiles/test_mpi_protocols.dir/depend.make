# Empty dependencies file for test_mpi_protocols.
# This may be replaced when dependencies are built.
