file(REMOVE_RECURSE
  "CMakeFiles/test_v2_units.dir/test_v2_units.cpp.o"
  "CMakeFiles/test_v2_units.dir/test_v2_units.cpp.o.d"
  "test_v2_units"
  "test_v2_units.pdb"
  "test_v2_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v2_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
