# Empty dependencies file for test_v2_units.
# This may be replaced when dependencies are built.
