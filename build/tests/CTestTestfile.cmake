# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_v2_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_v2_units[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_program_file[1]_include.cmake")
include("/root/repo/build/tests/test_v1_cm[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_probe_replay[1]_include.cmake")
include("/root/repo/build/tests/test_probe_batches[1]_include.cmake")
