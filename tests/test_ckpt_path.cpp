// Tests for the incremental checkpoint datapath: chunked delta uploads,
// content-addressed dedup and refcounting on the stripe servers, the
// two-table pinning rule, striped restart fetch, copy-on-write capture
// accounting, and the garbage-collection protocol (event-log prune +
// peer CkptNotify) that a stable checkpoint triggers.
#include <gtest/gtest.h>

#include "apps/iter_ckpt.hpp"
#include "apps/token_ring.hpp"
#include "common/hash.hpp"
#include "net/network.hpp"
#include "runtime/job.hpp"
#include "services/ckpt_server.hpp"
#include "sim/engine.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;
using services::CkptServer;

// ------------------------------------------------ wire-level delta client

/// Fixture hosting `stripes` checkpoint servers (one per node) plus a
/// scripted client fiber speaking the raw delta protocol.
struct StripeFixture {
  explicit StripeFixture(int stripes) {
    for (int s = 0; s < stripes; ++s) {
      CkptServer::Config cc;
      cc.node = net.add_node("cs" + std::to_string(s));
      cc.stripe_index = s;
      cc.stripe_count = stripes;
      nodes.push_back(cc.node);
      servers.push_back(std::make_unique<CkptServer>(net, cc));
      CkptServer* cs = servers.back().get();
      eng.spawn("cs" + std::to_string(s),
                [cs](sim::Context& ctx) { cs->run(ctx); });
    }
  }

  std::vector<net::Conn*> connect_all(sim::Context& ctx, net::Endpoint& ep) {
    std::vector<net::Conn*> out;
    for (net::NodeId node : nodes) {
      net::Conn* c =
          net.connect_retry(ctx, ep, {node, v2::kCkptServerPort},
                            milliseconds(1), ctx.now() + seconds(5));
      EXPECT_NE(c, nullptr);
      out.push_back(c);
    }
    return out;
  }

  sim::Engine eng;
  net::Network net{eng, net::NetParams{}};
  net::NodeId client_node = net.add_node("client");
  std::vector<net::NodeId> nodes;
  std::vector<std::unique_ptr<CkptServer>> servers;
};

Buffer patterned(std::size_t n, std::uint64_t tag) {
  Buffer b(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull ^ tag;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    b[i] = static_cast<std::byte>(x >> 56);
  }
  return b;
}

/// Upload `image` as a chunked delta against `base` (the previous image's
/// chunk hashes, empty for a first checkpoint), exactly as the daemon
/// does: the table goes to every stripe, data only to the owning stripe
/// and only for chunks whose hash changed. Waits for every StoreOk.
void delta_upload(sim::Context& ctx, net::Endpoint& ep,
                  const std::vector<net::Conn*>& stripes, mpi::Rank rank,
                  std::uint64_t seq, const Buffer& image, std::uint32_t chunk,
                  const std::vector<std::uint64_t>& base = {}) {
  auto hashes = chunk_hashes(image, chunk);
  const auto nstripes = static_cast<std::uint64_t>(stripes.size());
  for (net::Conn* c : stripes) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CsMsg::kDeltaBegin));
    w.i32(rank);
    v2::ChunkTable t;
    t.ckpt_seq = seq;
    t.chunk_size = chunk;
    t.total_bytes = image.size();
    t.hashes = hashes;
    v2::write_chunk_table(w, t);
    c->send(ctx, w.take());
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    if (i < base.size() && base[i] == hashes[i]) continue;
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CsMsg::kDeltaChunk));
    w.u64(seq);
    w.u32(static_cast<std::uint32_t>(i));
    std::size_t len = chunk_len(image.size(), chunk, i);
    w.raw(image.data() + i * chunk, len);
    stripes[hashes[i] % nstripes]->send(ctx, w.take());
  }
  for (net::Conn* c : stripes) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CsMsg::kDeltaEnd));
    w.u64(seq);
    c->send(ctx, w.take());
  }
  for (std::size_t acked = 0; acked < stripes.size();) {
    net::NetEvent ev = ep.wait(ctx);
    Reader r(ev.data);
    ASSERT_EQ(static_cast<v2::CsMsg>(r.u8()), v2::CsMsg::kStoreOk);
    EXPECT_EQ(r.u64(), seq);
    ++acked;
  }
}

TEST(CkptDelta, DedupSharesChunksAcrossCheckpoints) {
  StripeFixture f(1);
  constexpr std::uint32_t kChunk = 1024;
  // Second image changes only chunk 1 of four.
  Buffer img1 = patterned(4 * kChunk, 7);
  Buffer img2 = img1;
  Buffer dirty = patterned(kChunk, 8);
  std::copy(dirty.begin(), dirty.end(), img2.begin() + kChunk);

  Buffer fetched;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    auto conns = f.connect_all(ctx, ep);
    delta_upload(ctx, ep, conns, 3, 1, img1, kChunk);
    delta_upload(ctx, ep, conns, 3, 2, img2, kChunk,
                 chunk_hashes(img1, kChunk));
    // Legacy whole-image fetch reconstructs the newest table (1 stripe).
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CsMsg::kFetch));
    w.i32(3);
    conns[0]->send(ctx, w.take());
    net::NetEvent ev = ep.wait(ctx);
    Reader r(ev.data);
    ASSERT_EQ(static_cast<v2::CsMsg>(r.u8()), v2::CsMsg::kImage);
    ASSERT_TRUE(r.boolean());
    EXPECT_EQ(r.u64(), 2u);
    fetched = r.blob();
  });
  f.eng.run();
  EXPECT_EQ(fetched, img2);
  const CkptServer& cs = *f.servers[0];
  EXPECT_EQ(cs.images_stored(), 2u);
  // Five distinct chunk contents exist; the three unchanged ones were
  // neither re-sent nor re-stored.
  EXPECT_EQ(cs.content_entries(), 5u);
  EXPECT_EQ(cs.chunk_bytes_received(), 5u * kChunk);
  EXPECT_EQ(cs.stored_bytes(), 5u * kChunk);
}

TEST(CkptDelta, TwoNewestTablesPinnedOlderContentEvicted) {
  StripeFixture f(1);
  constexpr std::uint32_t kChunk = 512;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    auto conns = f.connect_all(ctx, ep);
    // Three checkpoints with fully distinct content (2 chunks each).
    for (std::uint64_t seq : {1, 2, 3}) {
      delta_upload(ctx, ep, conns, 0, seq, patterned(2 * kChunk, seq), kChunk);
    }
  });
  f.eng.run();
  // Only the two newest tables stay pinned; seq 1's chunks lost their last
  // reference and were evicted from the content store.
  EXPECT_EQ(f.servers[0]->content_entries(), 4u);
  EXPECT_EQ(f.servers[0]->stored_bytes(), 4u * kChunk);
  EXPECT_EQ(f.servers[0]->images_stored(), 3u);
}

TEST(CkptDelta, AbandonedUploadInstallsNothing) {
  StripeFixture f(1);
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    auto conns = f.connect_all(ctx, ep);
    Buffer img = patterned(2048, 1);
    auto hashes = chunk_hashes(img, 1024);
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CsMsg::kDeltaBegin));
    w.i32(5);
    v2::ChunkTable t;
    t.ckpt_seq = 1;
    t.chunk_size = 1024;
    t.total_bytes = img.size();
    t.hashes = hashes;
    v2::write_chunk_table(w, t);
    conns[0]->send(ctx, w.take());
    Writer cw;
    cw.u8(static_cast<std::uint8_t>(v2::CsMsg::kDeltaChunk));
    cw.u64(1);
    cw.u32(0);
    cw.raw(img.data(), 1024);
    conns[0]->send(ctx, cw.take());
    // Daemon dies before kDeltaEnd: the staged session must not leak into
    // the store.
    ctx.sleep(milliseconds(1));
  });
  f.eng.run();
  EXPECT_FALSE(f.servers[0]->has_image(5));
  EXPECT_EQ(f.servers[0]->content_entries(), 0u);
  EXPECT_EQ(f.servers[0]->images_stored(), 0u);
}

TEST(CkptDelta, StripedUploadQueryAndChunkFetch) {
  StripeFixture f(3);
  constexpr std::uint32_t kChunk = 1024;
  Buffer img = patterned(6 * kChunk + 100, 42);  // short last chunk
  auto hashes = chunk_hashes(img, kChunk);
  Buffer reassembled;
  std::vector<std::uint32_t> tables_seen;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    auto conns = f.connect_all(ctx, ep);
    delta_upload(ctx, ep, conns, 9, 1, img, kChunk);

    // Every stripe must report the (replicated) table as complete for the
    // chunks it owns.
    for (net::Conn* c : conns) {
      Writer q;
      q.u8(static_cast<std::uint8_t>(v2::CsMsg::kChunkQuery));
      q.i32(9);
      c->send(ctx, q.take());
      net::NetEvent ev = ep.wait(ctx);
      Reader r(ev.data);
      ASSERT_EQ(static_cast<v2::CsMsg>(r.u8()), v2::CsMsg::kChunkInfo);
      std::uint32_t n = r.u32();
      tables_seen.push_back(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        v2::ChunkTable t = v2::read_chunk_table(r);
        EXPECT_EQ(t.ckpt_seq, 1u);
        EXPECT_EQ(t.total_bytes, img.size());
        EXPECT_TRUE(r.boolean());
      }
    }

    // Fetch every chunk from its owning stripe and reassemble.
    reassembled.resize(img.size());
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kFetchChunk));
      w.i32(9);
      w.u64(1);
      w.u32(static_cast<std::uint32_t>(i));
      conns[hashes[i] % 3]->send(ctx, w.take());
      net::NetEvent ev = ep.wait(ctx);
      Reader r(ev.data);
      ASSERT_EQ(static_cast<v2::CsMsg>(r.u8()), v2::CsMsg::kChunk);
      std::uint32_t index = r.u32();
      ASSERT_TRUE(r.boolean());
      Buffer bytes = r.blob();
      std::copy(bytes.begin(), bytes.end(),
                reassembled.begin() + index * kChunk);
    }
  });
  f.eng.run();
  EXPECT_EQ(tables_seen, (std::vector<std::uint32_t>{1, 1, 1}));
  EXPECT_EQ(reassembled, img);
  // Chunk data landed only on its owner: stripes partition the bytes.
  std::uint64_t total = 0;
  for (const auto& cs : f.servers) total += cs->chunk_bytes_received();
  EXPECT_EQ(total, img.size());
}

// ------------------------------------------------------- job-level paths

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

runtime::AppFactory iter_factory(const apps::IterCkptApp::Params& p) {
  return [p](mpi::Rank rank, mpi::Rank) {
    return std::make_unique<apps::IterCkptApp>(rank, p);
  };
}

apps::IterCkptApp::Params small_iter_params() {
  apps::IterCkptApp::Params p;
  p.iters = 20;
  p.static_bytes = 96 * 1024;
  p.dynamic_bytes = 16 * 1024;
  p.token_bytes = 2 * 1024;
  p.compute_per_iter = milliseconds(3);
  return p;
}

JobConfig ckpt_cfg(int nprocs, int stripes, bool full_image = false) {
  JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.ckpt_period = milliseconds(2);
  cfg.first_ckpt_after = milliseconds(5);
  cfg.n_ckpt_servers = stripes;
  cfg.v2_full_image_ckpt = full_image;
  cfg.net_params.ckpt_chunk_bytes = 16 * 1024;
  cfg.restart_delay = milliseconds(20);
  cfg.time_limit = seconds(600);
  return cfg;
}

TEST(CkptGc, StableCheckpointShrinksElStoreAndSenderLogs) {
  JobConfig cfg = ckpt_cfg(4, 1);
  JobResult res = run_job(cfg, iter_factory(small_iter_params()));
  ASSERT_TRUE(res.success);
  ASSERT_GT(res.checkpoints_stored, 4u);
  // Peer CkptNotify dropped stable entries from the sender logs...
  EXPECT_GT(res.daemon_stats.gc_pruned_entries, 0u);
  // ...and ElMsg::kPrune removed the pre-checkpoint events from the EL
  // store: what remains is strictly less than everything ever logged.
  EXPECT_LT(res.el_events_stored, res.daemon_stats.events_logged);
  EXPECT_GT(res.el_events_stored, 0u);
}

TEST(CkptGc, CrashNearCheckpointStabilityStillRecovers) {
  JobConfig cfg = ckpt_cfg(4, 1);
  auto factory = iter_factory(small_iter_params());
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  ASSERT_GT(clean.checkpoints_stored, 2u);
  // Sweep kill times across the checkpoint cycle so some land in the
  // window between image stability at the servers and the completion of
  // the prune/notify messages it triggers. Recovery must hold everywhere.
  for (double frac : {0.30, 0.42, 0.54, 0.66, 0.78, 0.90}) {
    JobConfig fcfg = cfg;
    fcfg.fault_plan = faults::FaultPlan::simultaneous(
        static_cast<SimTime>(frac * clean.makespan), {1});
    JobResult res = run_job(fcfg, factory);
    ASSERT_TRUE(res.success) << "kill fraction " << frac;
    EXPECT_GE(res.restarts, 1) << "kill fraction " << frac;
    EXPECT_EQ(outputs(res), outputs(clean)) << "kill fraction " << frac;
  }
}

TEST(CkptStriped, RestartFetchesImageAcrossStripes) {
  JobConfig cfg = ckpt_cfg(4, 3);
  auto factory = iter_factory(small_iter_params());
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  ASSERT_GT(clean.checkpoints_stored, 2u);

  JobConfig fcfg = cfg;
  fcfg.fault_plan = faults::FaultPlan::simultaneous(
      static_cast<SimTime>(0.7 * clean.makespan), {2});
  JobResult res = run_job(fcfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  // The restart pulled a real image chunk-wise from the stripe set.
  EXPECT_GT(res.daemon_stats.ckpt_fetch_bytes, 0u);
  EXPECT_GT(res.daemon_stats.ckpt_fetch_ns, 0u);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(CkptStriped, SurvivesStripeServerCrashMidUploadStorm) {
  // FaultStorm-style: random rank faults layered on top of stripe 0
  // crashing (and rebooting with its stable storage) one third into the
  // run — continuous checkpointing guarantees uploads are in flight then.
  JobConfig cfg = ckpt_cfg(4, 2);
  auto factory = iter_factory(small_iter_params());
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  for (std::uint64_t seed : {1, 2, 3}) {
    JobConfig fcfg = cfg;
    fcfg.ckpt_server_fails_at = clean.makespan / 3;
    fcfg.fault_plan = faults::FaultPlan::random_arrivals(
        to_seconds(clean.makespan) / 2.0, milliseconds(5),
        clean.makespan * 2, 3, seed);
    JobResult res = run_job(fcfg, factory);
    ASSERT_TRUE(res.success) << "seed " << seed;
    EXPECT_EQ(outputs(res), outputs(clean)) << "seed " << seed;
  }
}

TEST(CkptCow, CaptureIsNonBlockingAndChargesOnlyDirtyBytes) {
  JobConfig cfg = ckpt_cfg(4, 1);
  JobResult res = run_job(cfg, iter_factory(small_iter_params()));
  ASSERT_TRUE(res.success);
  ASSERT_GT(res.daemon_stats.checkpoints_taken, 4u);
  std::uint64_t captured = 0, cow = 0;
  for (const auto& rr : res.ranks) {
    captured += rr.copies.ckpt_bytes_captured;
    cow += rr.copies.ckpt_cow_bytes;
  }
  ASSERT_GT(captured, 0u);
  ASSERT_GT(cow, 0u);
  // From the second capture per rank on, only dirty chunks are memcpy'd:
  // the copy-on-write charge stays well under the bytes handed over.
  EXPECT_LT(cow, captured);
  // And the upload deduped unchanged chunks against the stable base.
  EXPECT_GT(res.daemon_stats.ckpt_bytes_deduped, 0u);

  // The full-image ablation blocks the app instead: it never takes the
  // copy-on-write path.
  JobConfig full = ckpt_cfg(4, 1, /*full_image=*/true);
  JobResult fres = run_job(full, iter_factory(small_iter_params()));
  ASSERT_TRUE(fres.success);
  std::uint64_t fcow = 0;
  for (const auto& rr : fres.ranks) fcow += rr.copies.ckpt_cow_bytes;
  EXPECT_EQ(fcow, 0u);
  EXPECT_EQ(outputs(fres), outputs(res));
}

TEST(CkptAblation, FullImageAndDeltaRecoverIdentically) {
  auto factory = iter_factory(small_iter_params());
  JobResult refr = run_job(ckpt_cfg(4, 1), factory);
  ASSERT_TRUE(refr.success);
  for (bool full_image : {false, true}) {
    JobConfig cfg = ckpt_cfg(4, full_image ? 1 : 2, full_image);
    cfg.fault_plan = faults::FaultPlan::simultaneous(
        static_cast<SimTime>(0.6 * refr.makespan), {1, 3});
    JobResult res = run_job(cfg, factory);
    ASSERT_TRUE(res.success) << "full_image=" << full_image;
    EXPECT_GE(res.restarts, 2) << "full_image=" << full_image;
    EXPECT_EQ(outputs(res), outputs(refr)) << "full_image=" << full_image;
  }
}

}  // namespace
}  // namespace mpiv
