// Torture suite for the replicated event loggers (§4.5 extended to 2f+1
// quorum groups): property tests for the restart merge, directed
// replica-kill scenarios, and a randomized fault-schedule sweep mixing
// compute-rank kills with event-logger reboots. Every faulty run must
// produce bit-identical application outputs to the fault-free run and
// leave every replica store ordered and duplicate-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/kernels.hpp"
#include "apps/token_ring.hpp"
#include "common/rng.hpp"
#include "runtime/job.hpp"
#include "trace/audit.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;
using v2::ReceptionEvent;

// ------------------------------------------------------------ merge properties

ReceptionEvent delivery(mpi::Rank sender, v2::Clock sc, v2::Clock rc,
                        std::uint32_t np) {
  ReceptionEvent e;
  e.kind = ReceptionEvent::Kind::kDelivery;
  e.sender = sender;
  e.send_clock = sc;
  e.recv_clock = rc;
  e.nprobes = np;
  return e;
}

ReceptionEvent probe_batch(v2::Clock rc, std::uint32_t np) {
  ReceptionEvent e;
  e.kind = ReceptionEvent::Kind::kProbeBatch;
  e.recv_clock = rc;
  e.nprobes = np;
  return e;
}

/// A random but daemon-shaped event history: deliveries with strictly
/// increasing receiver clocks, interleaved with probe batches stamped with
/// the upcoming delivery clock and strictly growing cumulative counts.
std::vector<ReceptionEvent> random_history(std::size_t n, Rng& rng) {
  std::vector<ReceptionEvent> out;
  v2::Clock clock = 0;
  std::uint32_t probes = 0;
  while (out.size() < n) {
    if (rng.below(4) == 0) {
      probes += 1 + static_cast<std::uint32_t>(rng.below(3));
      out.push_back(probe_batch(clock + 1, probes));
    } else {
      ++clock;
      out.push_back(delivery(static_cast<mpi::Rank>(rng.below(8)),
                             static_cast<v2::Clock>(rng.below(1000)), clock,
                             probes));
      probes = 0;
    }
  }
  return out;
}

/// Merge the given replica prefixes of `truth` and check the contract: the
/// result is exactly the longest contributed prefix — so it is prefix-closed,
/// duplicate-free and strictly ordered.
void check_prefix_merge(const std::vector<ReceptionEvent>& truth,
                        const std::vector<std::size_t>& lens) {
  std::vector<std::vector<ReceptionEvent>> lists;
  std::size_t longest = 0;
  for (std::size_t len : lens) {
    lists.emplace_back(truth.begin(),
                       truth.begin() + static_cast<std::ptrdiff_t>(len));
    longest = std::max(longest, len);
  }
  std::vector<ReceptionEvent> merged = v2::merge_event_logs(lists);
  ASSERT_EQ(merged.size(), longest);
  for (std::size_t k = 0; k < merged.size(); ++k) {
    ASSERT_TRUE(v2::event_equal(merged[k], truth[k])) << "position " << k;
  }
  for (std::size_t k = 1; k < merged.size(); ++k) {
    ASSERT_TRUE(v2::event_before(merged[k - 1], merged[k]))
        << "not strictly ordered at " << k;
  }
}

TEST(QuorumMerge, ArbitraryReplicaPrefixesMergeToTheLongest) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<ReceptionEvent> truth = random_history(60, rng);
    for (int reps : {3, 5}) {
      std::vector<std::size_t> lens;
      for (int i = 0; i < reps; ++i) {
        lens.push_back(rng.below(truth.size() + 1));
      }
      // Every subset of replicas (the reachable set on restart), not just
      // quorum-sized ones: the merge itself is subset-agnostic.
      for (std::uint32_t mask = 1; mask < (1u << reps); ++mask) {
        std::vector<std::size_t> subset_lens;
        for (int i = 0; i < reps; ++i) {
          if (mask & (1u << i)) subset_lens.push_back(lens[i]);
        }
        check_prefix_merge(truth, subset_lens);
      }
    }
  }
}

TEST(QuorumMerge, QuorumSubsetsCoverTheQuorumAckedPrefix) {
  // The WAITLOGGED gate releases a send once `quorum` replicas hold its
  // events, i.e. the quorum-acked prefix is the quorum-th largest replica
  // length. Any subset of at least `quorum` reachable replicas must merge
  // to a list covering that prefix — the pigeonhole argument behind 2f+1.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<ReceptionEvent> truth = random_history(50, rng);
    for (int reps : {3, 5}) {
      std::size_t quorum = v2::el_quorum(static_cast<std::size_t>(reps));
      std::vector<std::size_t> lens;
      for (int i = 0; i < reps; ++i) {
        lens.push_back(rng.below(truth.size() + 1));
      }
      std::vector<std::size_t> sorted = lens;
      std::sort(sorted.rbegin(), sorted.rend());
      std::size_t acked_prefix = sorted[quorum - 1];
      for (std::uint32_t mask = 1; mask < (1u << reps); ++mask) {
        std::vector<std::vector<ReceptionEvent>> lists;
        std::size_t longest = 0;
        for (int i = 0; i < reps; ++i) {
          if (!(mask & (1u << i))) continue;
          lists.emplace_back(
              truth.begin(),
              truth.begin() + static_cast<std::ptrdiff_t>(lens[i]));
          longest = std::max(longest, lens[i]);
        }
        if (lists.size() < quorum) continue;
        EXPECT_GE(longest, acked_prefix);
        EXPECT_GE(v2::merge_event_logs(lists).size(), acked_prefix);
      }
    }
  }
}

TEST(QuorumMerge, StaleIncarnationSuffixLosesTheVote) {
  // A replica that slept through a recovery still holds the dead
  // incarnation's suffix; at equal receiver clock the re-executed history
  // (held by a majority) must win the vote.
  std::vector<ReceptionEvent> fresh = {delivery(0, 1, 1, 0),
                                       delivery(1, 1, 2, 0),
                                       delivery(0, 2, 3, 1)};
  std::vector<ReceptionEvent> stale = {delivery(0, 1, 1, 0),
                                       delivery(1, 1, 2, 0),
                                       delivery(1, 9, 3, 0)};
  std::vector<ReceptionEvent> merged =
      v2::merge_event_logs({fresh, fresh, stale});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(v2::event_equal(merged[2], fresh[2]));
}

TEST(QuorumMerge, EmptyAndSingletonInputs) {
  EXPECT_TRUE(v2::merge_event_logs({}).empty());
  EXPECT_TRUE(v2::merge_event_logs({{}, {}, {}}).empty());
  std::vector<ReceptionEvent> one = {probe_batch(1, 2), delivery(0, 1, 1, 2)};
  std::vector<ReceptionEvent> merged = v2::merge_event_logs({one, {}, one});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_TRUE(v2::event_equal(merged[0], one[0]));
  EXPECT_TRUE(v2::event_equal(merged[1], one[1]));
}

// ------------------------------------------------------------ directed kills

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

runtime::AppFactory ring(int rounds, std::size_t bytes, SimDuration compute) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

TEST(ElReplication, SurvivesPermanentReplicaLoss) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.el_replication = 3;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // One replica of the 2f+1 group dies for good mid-run: the quorum gate
  // keeps accepting on the two survivors and nothing stalls.
  cfg.fault_plan = faults::FaultPlan::service_kill(
      clean.makespan / 3, faults::FaultTarget::kEventLogger, 1,
      /*revive=*/false);
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
  EXPECT_GE(res.daemon_stats.el_replica_retries, 1u);
}

TEST(ElReplication, RestartDownloadsFromSurvivingQuorum) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.el_replication = 3;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // Replica 0 is already dead when rank 2 crashes: the restart must merge
  // its event history from the two surviving replicas alone.
  faults::FaultPlan plan = faults::FaultPlan::service_kill(
      clean.makespan / 4, faults::FaultTarget::kEventLogger, 0,
      /*revive=*/false);
  plan.merge(faults::FaultPlan::simultaneous(clean.makespan / 2, {2}));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_GT(res.daemon_stats.replayed_deliveries, 0u);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
}

TEST(ElReplication, ReplicaDiesMidOverlappedDownload) {
  // The overlapped restart issues its event download concurrently with the
  // checkpoint fetch; a replica that dies *during* that download must not
  // wedge the merge — the first-quorum join proceeds on the survivors (or
  // the download is re-issued if the quorum was lost mid-flight).
  auto factory = ring(60, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.el_replication = 3;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(10);
  cfg.restart_delay = milliseconds(2);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // Rank 2 crashes at mid-run and begins its overlapped restore 2 ms
  // later; replica 1 is killed a beat after that, squarely inside the
  // download/fetch window.
  faults::FaultPlan plan = faults::FaultPlan::simultaneous(
      clean.makespan / 2, {2});
  plan.merge(faults::FaultPlan::service_kill(
      clean.makespan / 2 + milliseconds(2) + microseconds(200),
      faults::FaultTarget::kEventLogger, 1, /*revive=*/false));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  cfg.trace.enabled = true;
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
  if constexpr (trace::kCompiled) {
    ASSERT_NE(res.trace, nullptr);
    trace::AuditReport audit = trace::audit(*res.trace);
    EXPECT_TRUE(audit.pass) << audit.summary();
  }
}

TEST(ElReplication, RebootedReplicaIsResyncedByItsDaemons) {
  // Single-logger deployment: the logger reboots empty mid-run, the
  // daemons resync it from their in-memory logs, and a compute crash
  // *after* the resync still replays correctly from the reborn store.
  auto factory = ring(100, 512, milliseconds(1));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.restart_delay = milliseconds(30);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  ASSERT_GT(clean.makespan, milliseconds(250));

  faults::FaultPlan plan = faults::FaultPlan::service_kill(
      clean.makespan / 4, faults::FaultTarget::kEventLogger, 0,
      /*revive=*/true);
  plan.merge(faults::FaultPlan::simultaneous(clean.makespan / 2, {1}));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
}

TEST(ElReplication, SingleLoggerPermanentLossStallsTheJob) {
  // Negative control: with replication 1 there is no quorum without the
  // lone replica — the WAITLOGGED gate must hold every dependent send
  // forever rather than lose the pessimistic property.
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::service_kill(
      clean.makespan / 3, faults::FaultTarget::kEventLogger, 0,
      /*revive=*/false);
  cfg.time_limit = clean.makespan + seconds(5);
  JobResult res = run_job(cfg, factory);
  EXPECT_FALSE(res.success);
}

// ------------------------------------------------------------ randomized sweep

void torture_run(const runtime::AppFactory& factory, int nprocs,
                 std::uint64_t seed, bool checkpointing) {
  JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = DeviceKind::kV2;
  cfg.el_replication = 3;
  if (checkpointing) {
    cfg.checkpointing = true;
    cfg.first_ckpt_after = milliseconds(5);
    cfg.ckpt_period = milliseconds(10);
  }
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // Mixed plan: compute kills anywhere in the run, EL reboots serialized
  // so at most one replica (f = 1) is down at a time. The spacing must
  // exceed the revive delay or two replicas could overlap in death.
  int compute_kills = 1 + static_cast<int>(seed % 3);
  cfg.fault_plan = faults::FaultPlan::random_mixed(
      compute_kills, /*el_kills=*/2, clean.makespan / 4, clean.makespan,
      nprocs, /*n_event_loggers=*/3, milliseconds(250), seed * 977 + 13);
  cfg.time_limit = seconds(600);
  // Every faulty run is traced and audited post-hoc: beyond bit-identical
  // outputs, the causal event stream itself must satisfy the pessimistic
  // logging invariants (no-orphan, at-most-once, replay order, GC safety).
  cfg.trace.enabled = true;
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success) << "seed " << seed;
  EXPECT_EQ(outputs(res), outputs(clean)) << "seed " << seed;
  EXPECT_TRUE(res.el_stores_consistent) << "seed " << seed;
  if constexpr (trace::kCompiled) {
    ASSERT_NE(res.trace, nullptr) << "seed " << seed;
    trace::AuditReport audit = trace::audit(*res.trace);
    EXPECT_TRUE(audit.pass) << "seed " << seed << "\n" << audit.summary();
  }
}

class TortureSweep : public ::testing::TestWithParam<int> {};

TEST_P(TortureSweep, TokenRing) {
  auto seed = static_cast<std::uint64_t>(GetParam());
  torture_run(ring(60, 512, microseconds(500)), 4, seed,
              /*checkpointing=*/false);
}

TEST_P(TortureSweep, Cg) {
  auto seed = static_cast<std::uint64_t>(GetParam());
  torture_run(apps::kernel_factory("cg", apps::NasClass::kTest), 4, seed,
              /*checkpointing=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace mpiv
