// Unit tests for the V2 protocol building blocks: sender log, wire
// formats, and daemon-level invariants observable through small jobs.
#include <gtest/gtest.h>

#include "apps/token_ring.hpp"
#include "runtime/job.hpp"
#include "v2/sender_log.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

Buffer payload(std::size_t n, std::uint8_t fill) {
  return Buffer(n, std::byte{fill});
}

TEST(SenderLog, RecordsPerDestinationInClockOrder) {
  v2::SenderLog log(3);
  log.record(1, 5, payload(10, 1));
  log.record(2, 6, payload(20, 2));
  log.record(1, 7, payload(30, 3));
  EXPECT_EQ(log.total_bytes(), 60u);
  EXPECT_EQ(log.entry_count(), 3u);
  EXPECT_EQ(log.count_for(1), 2u);

  auto to1 = log.entries_after(1, 0);
  ASSERT_EQ(to1.size(), 2u);
  EXPECT_EQ(to1[0]->clock, 5);
  EXPECT_EQ(to1[1]->clock, 7);

  auto after5 = log.entries_after(1, 5);
  ASSERT_EQ(after5.size(), 1u);
  EXPECT_EQ(after5[0]->clock, 7);
}

TEST(SenderLog, PruneDropsOnlyCoveredEntries) {
  v2::SenderLog log(2);
  for (v2::Clock c = 1; c <= 10; ++c) log.record(1, c, payload(100, 9));
  log.prune(1, 6);
  EXPECT_EQ(log.count_for(1), 4u);
  EXPECT_EQ(log.total_bytes(), 400u);
  log.prune(1, 100);
  EXPECT_EQ(log.count_for(1), 0u);
  EXPECT_EQ(log.total_bytes(), 0u);
  // Pruning a different destination is independent.
  log.record(0, 3, payload(10, 1));
  log.prune(1, 100);
  EXPECT_EQ(log.count_for(0), 1u);
}

TEST(SenderLog, SerializeRestoreRoundTrip) {
  v2::SenderLog log(4);
  log.record(0, 1, payload(11, 1));
  log.record(3, 2, payload(22, 2));
  log.record(3, 9, payload(33, 3));
  Writer w;
  log.serialize(w);
  Buffer b = w.take();

  v2::SenderLog restored(4);
  Reader r(b);
  restored.restore(r);
  EXPECT_EQ(restored.total_bytes(), log.total_bytes());
  EXPECT_EQ(restored.entry_count(), 3u);
  auto e = restored.entries_after(3, 0);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[1]->clock, 9);
  EXPECT_EQ(e[1]->block, payload(33, 3));
}

TEST(SharedBufferAliasing, LogFrameAndCheckpointShareOneAllocation) {
  // The zero-copy invariant: one payload allocation simultaneously backs
  // the sender log (SAVED), an in-flight TX frame and a checkpoint
  // serialization; pruning one alias never invalidates the others. Run
  // under -DMPIV_SANITIZE=address this doubles as a lifetime check.
  SharedBuffer block{payload(4096, 0xab)};
  const std::byte* base = block.data();
  const std::uint64_t sum = fnv1a(block.view());

  v2::SenderLog log(2);
  log.record(1, 7, block);                       // SAVED alias
  v2::MsgRecord in_flight{7, block.slice(0, block.size())};  // TX alias
  Writer w;
  log.serialize(w);                              // checkpoint copy (deliberate)
  Buffer ckpt = w.take();

  EXPECT_EQ(block.use_count(), 3);               // local + SAVED + frame
  auto logged = log.entries_after(1, 0);
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_EQ(logged[0]->block.data(), base);      // same allocation, no copy
  EXPECT_EQ(in_flight.block.data(), base);

  // GC prunes the SAVED alias; the in-flight frame and the checkpoint
  // bytes must stay bit-identical.
  log.prune(1, 7);
  EXPECT_EQ(log.entry_count(), 0u);
  EXPECT_EQ(block.use_count(), 2);
  EXPECT_EQ(fnv1a(in_flight.block.view()), sum);

  v2::SenderLog restored(2);
  Reader r(ckpt);
  restored.restore(r);
  auto e = restored.entries_after(1, 0);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(fnv1a(e[0]->block.view()), sum);

  // Dropping every other alias leaves the frame sole owner of live bytes.
  block = SharedBuffer{};
  EXPECT_EQ(in_flight.block.use_count(), 1);
  EXPECT_EQ(fnv1a(in_flight.block.view()), sum);
}

TEST(SharedBufferAliasing, SlicesAreZeroCopyAndRangeChecked) {
  SharedBuffer whole{payload(100, 0x11)};
  SharedBuffer mid = whole.slice(10, 50);
  EXPECT_EQ(mid.size(), 50u);
  EXPECT_EQ(mid.data(), whole.data() + 10);
  SharedBuffer sub = mid.slice(5, 10);
  EXPECT_EQ(sub.data(), whole.data() + 15);
  EXPECT_TRUE(mid.slice(40, 20).empty());   // out of range -> empty
  EXPECT_TRUE(whole.slice_of(ConstBytes{}).empty());
  SharedBuffer re = whole.slice_of(whole.view().subspan(30, 4));
  EXPECT_EQ(re.data(), whole.data() + 30);
  EXPECT_EQ(re.use_count(), whole.use_count());
}

TEST(Wire, MsgRecordRoundTrip) {
  v2::MsgRecord rec{12345, SharedBuffer(payload(777, 0x5c))};
  SharedBuffer b{v2::encode_msg_record(rec)};
  v2::MsgRecord out = v2::decode_msg_record(b);
  EXPECT_EQ(out.send_clock, 12345);
  EXPECT_EQ(out.block, rec.block);
  // The decoded block aliases the encoded bytes — no copy was made.
  EXPECT_EQ(out.block.data(), b.data() + v2::kMsgRecordHeaderBytes);
}

TEST(Wire, ReceptionEventRoundTrip) {
  v2::ReceptionEvent e{v2::ReceptionEvent::Kind::kProbeBatch, 7,
                       1000000007LL, 2000000011LL, 42};
  Writer w;
  v2::write_event(w, e);
  Buffer b = w.take();
  Reader r(b);
  v2::ReceptionEvent out = v2::read_event(r);
  EXPECT_EQ(out.kind, v2::ReceptionEvent::Kind::kProbeBatch);
  EXPECT_EQ(out.sender, 7);
  EXPECT_EQ(out.send_clock, 1000000007LL);
  EXPECT_EQ(out.recv_clock, 2000000011LL);
  EXPECT_EQ(out.nprobes, 42u);
}

TEST(Wire, DaemonStatusRoundTrip) {
  v2::DaemonStatus s;
  s.rank = 9;
  s.saved_bytes = 1;
  s.sent_bytes = 2;
  s.recv_bytes = 3;
  s.sent_msgs = 4;
  s.recv_msgs = 5;
  Writer w;
  v2::write_status(w, s);
  Buffer b = w.take();
  Reader r(b);
  v2::DaemonStatus out = v2::read_status(r);
  EXPECT_EQ(out.rank, 9);
  EXPECT_EQ(out.saved_bytes, 1u);
  EXPECT_EQ(out.sent_bytes, 2u);
  EXPECT_EQ(out.recv_bytes, 3u);
  EXPECT_EQ(out.sent_msgs, 4u);
  EXPECT_EQ(out.recv_msgs, 5u);
}

TEST(Wire, PipeHeaderCarriesCheckpointFlag) {
  Writer w = v2::pipe_writer(v2::PipeMsg::kDeliver, true);
  w.i32(2);
  Buffer b = w.take();
  Reader r(b);
  v2::PipeHeader h = v2::read_pipe_header(r);
  EXPECT_EQ(h.type, v2::PipeMsg::kDeliver);
  EXPECT_TRUE(h.ckpt_requested);
  EXPECT_EQ(r.i32(), 2);
}

// ------------------------------------------------- daemon-level invariants

runtime::JobResult run_ring(int nprocs, int rounds, std::size_t bytes,
                            faults::FaultPlan plan = {}) {
  runtime::JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.fault_plan = std::move(plan);
  cfg.time_limit = seconds(300);
  return run_job(cfg, [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes,
                                                microseconds(200));
  });
}

TEST(DaemonInvariants, EveryDeliveryIsLogged) {
  runtime::JobResult res = run_ring(4, 15, 256);
  ASSERT_TRUE(res.success);
  // Fault-free run: every accepted message was delivered and logged once
  // (plus probe-batch events for failed probes preceding sends).
  EXPECT_GE(res.daemon_stats.events_logged, res.daemon_stats.recv_msgs);
  EXPECT_EQ(res.daemon_stats.duplicates_dropped, 0u);
  EXPECT_EQ(res.el_events_stored, res.daemon_stats.events_logged);
}

TEST(DaemonInvariants, ReplayedDeliveriesNotRelogged) {
  runtime::JobResult clean = run_ring(4, 15, 256);
  runtime::JobResult res = run_ring(
      4, 15, 256, faults::FaultPlan::simultaneous(clean.makespan / 2, {1}));
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.daemon_stats.replayed_deliveries, 0u);
  // Replayed deliveries must not append fresh events: the event logger's
  // per-rank monotonicity MPIV_CHECK would abort if they did; in aggregate
  // the store never exceeds total deliveries of the final incarnations.
  EXPECT_LE(res.el_events_stored,
            res.daemon_stats.events_logged + res.daemon_stats.replayed_deliveries);
}

TEST(DaemonInvariants, SenderLogsGarbageCollectedByCheckpoints) {
  runtime::JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(10);
  cfg.ckpt_period = milliseconds(2);
  runtime::JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(60, 2048, microseconds(500));
  });
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.checkpoints_stored, 2u);
  EXPECT_GT(res.daemon_stats.gc_pruned_entries, 0u);
}

TEST(DaemonInvariants, DuplicatesDroppedOnRestartNotInFaultFree) {
  runtime::JobResult clean = run_ring(4, 20, 512);
  ASSERT_TRUE(clean.success);
  EXPECT_EQ(clean.daemon_stats.duplicates_dropped, 0u);
  EXPECT_EQ(clean.restarts, 0);
}

}  // namespace
}  // namespace mpiv
