#include <gtest/gtest.h>

#include <cmath>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace mpiv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(45.0);
  EXPECT_NEAR(sum / n, 45.0, 2.0);
}

TEST(Rng, ForkIndependent) {
  Rng r(5);
  Rng child = r.fork();
  EXPECT_NE(r.next(), child.next());
}

TEST(Units, Conversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(seconds(1), 1000000000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(77)), 77.0);
}

TEST(Units, TransferTime) {
  // 1 MB at 1 MB/s = 1 s.
  EXPECT_EQ(transfer_time(1000000, 1e6), kSecond);
  EXPECT_EQ(transfer_time(0, 1e6), 0);
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(1.5)), "1.500 s");
  EXPECT_EQ(format_duration(microseconds(77)), "77.00 us");
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
}

TEST(Stats, TextTableRenders) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(Options, ParsesKeyValuesAndDefaults) {
  const char* argv[] = {"prog", "n=8", "device=v2", "flag", "rate=2.5",
                        "list=1,2,4"};
  Options o(6, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("n", 0), 8);
  EXPECT_EQ(o.get("device", "p4"), "v2");
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_FALSE(o.get_bool("missing", false));
  EXPECT_DOUBLE_EQ(o.get_double("rate", 0), 2.5);
  auto list = o.get_int_list("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 4);
  EXPECT_EQ(o.get_int("absent", -1), -1);
}

}  // namespace
}  // namespace mpiv
