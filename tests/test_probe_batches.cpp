// Probe-batch events (DESIGN.md §7.4): failed probes become durable before
// any dependent send, and the live checkpoint scheduler works under the
// adaptive policy.
#include <gtest/gtest.h>

#include "apps/token_ring.hpp"
#include "runtime/job.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

/// Two ranks; rank 0 polls with iprobe and sends a ping per failed probe
/// burst — guaranteed to create probe-batch events.
class ProbeSender final : public runtime::App {
 public:
  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        // A failed probe followed by a send: the batch path.
        while (!comm.iprobe(ctx, 1, 0).has_value()) {
          comm.send_value<int>(ctx, i, 1, 2);
          ctx.compute(microseconds(200));
        }
        (void)comm.recv_value<int>(ctx, 1, 0);
      }
      comm.send_value<int>(ctx, -1, 1, 2);
    } else {
      int done = 0;
      for (int i = 0; i < 10; ++i) {
        ctx.compute(microseconds(700));
        comm.send_value<int>(ctx, i, 0, 0);
      }
      while (done >= 0) {
        done = comm.recv_value<int>(ctx, 0, 2);
        if (done < 0) break;
      }
    }
  }
};

TEST(ProbeBatches, LoggedAlongsideDeliveries) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<ProbeSender>();
  });
  ASSERT_TRUE(res.success);
  // More events than deliveries == probe batches were appended.
  EXPECT_GT(res.daemon_stats.events_logged, res.daemon_stats.recv_msgs);
  EXPECT_EQ(res.el_events_stored, res.daemon_stats.events_logged);
}

TEST(ProbeBatches, NoBatchesWithoutTrailingProbes) {
  // A blocking-recv workload (token ring) produces exactly one event per
  // delivery: batches are lazy and cost nothing when nothing probes before
  // a send.
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(10, 256);
  });
  ASSERT_TRUE(res.success);
  // The ring itself uses blocking recv; only the final barrier's
  // nonblocking ops can add a handful of batches.
  EXPECT_LE(res.daemon_stats.events_logged,
            res.daemon_stats.recv_msgs + 4 * 4);
}

TEST(LiveScheduler, AdaptivePolicyDrivesCheckpoints) {
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kAdaptive;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(2);
  JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(60, 1024, microseconds(500));
  });
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.checkpoints_stored, 0u);
}

TEST(LiveScheduler, AdaptiveSurvivesFaults) {
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kAdaptive;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(2);
  auto factory = [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(60, 1024, microseconds(500));
  };
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {2});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.ranks[0].output, clean.ranks[0].output);
}

}  // namespace
}  // namespace mpiv
