// End-to-end tests of the MPICH-V2 stack through the job runner: fault-free
// equivalence with P4, transparent recovery under scripted and random fault
// plans, checkpoint/restart, and the paper's adversarial timings (faults
// during checkpointing and during re-execution).
#include <gtest/gtest.h>

#include "apps/token_ring.hpp"
#include "runtime/job.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

runtime::AppFactory ring_factory(int rounds, std::size_t bytes,
                                 SimDuration compute = 0) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

TEST(V2Integration, FaultFreeRunCompletes) {
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult res = run_job(cfg, ring_factory(10, 512));
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_GT(res.daemon_stats.events_logged, 0u);
  // No restart exchange ever ran, so no send can be HS-suppressed.
  EXPECT_EQ(res.daemon_stats.suppressed_sends, 0u);
}

TEST(V2Integration, MatchesP4Results) {
  JobConfig v2cfg;
  v2cfg.nprocs = 5;
  v2cfg.device = DeviceKind::kV2;
  JobResult v2 = run_job(v2cfg, ring_factory(12, 256));
  ASSERT_TRUE(v2.success);

  JobConfig p4cfg;
  p4cfg.nprocs = 5;
  p4cfg.device = DeviceKind::kP4;
  JobResult p4 = run_job(p4cfg, ring_factory(12, 256));
  ASSERT_TRUE(p4.success);

  EXPECT_EQ(outputs(v2), outputs(p4));
}

TEST(V2Integration, MatchesV1Results) {
  JobConfig v1cfg;
  v1cfg.nprocs = 4;
  v1cfg.device = DeviceKind::kV1;
  JobResult v1 = run_job(v1cfg, ring_factory(8, 128));
  ASSERT_TRUE(v1.success);

  JobConfig p4cfg;
  p4cfg.nprocs = 4;
  p4cfg.device = DeviceKind::kP4;
  JobResult p4 = run_job(p4cfg, ring_factory(8, 128));
  ASSERT_TRUE(p4.success);

  EXPECT_EQ(outputs(v1), outputs(p4));
}

TEST(V2Integration, SingleFaultRestartFromScratch) {
  // No checkpointing: the killed rank restarts from the beginning and
  // replays its logged receptions from the sender logs.
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.fault_plan = faults::FaultPlan::simultaneous(milliseconds(30), {2});
  JobResult res = run_job(cfg, ring_factory(40, 512, microseconds(500)));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_GT(res.daemon_stats.replayed_deliveries, 0u);
  // The restarted rank re-executes sends the survivors already hold; the
  // HS bound must suppress their retransmission.
  EXPECT_GT(res.daemon_stats.suppressed_sends, 0u);

  JobConfig ref = cfg;
  ref.fault_plan = faults::FaultPlan::none();
  JobResult clean = run_job(ref, ring_factory(40, 512, microseconds(500)));
  ASSERT_TRUE(clean.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(V2Integration, FaultWithCheckpointingRestartsFromImage) {
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(20);
  cfg.ckpt_period = milliseconds(5);
  cfg.fault_plan = faults::FaultPlan::simultaneous(milliseconds(120), {1});
  JobResult res = run_job(cfg, ring_factory(40, 1024, milliseconds(1)));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_GT(res.checkpoints_stored, 0u);

  JobConfig ref = cfg;
  ref.fault_plan = faults::FaultPlan::none();
  JobResult clean = run_job(ref, ring_factory(40, 1024, milliseconds(1)));
  ASSERT_TRUE(clean.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(V2Integration, TwoConcurrentFaults) {
  JobConfig cfg;
  cfg.nprocs = 6;
  cfg.device = DeviceKind::kV2;
  cfg.fault_plan =
      faults::FaultPlan::simultaneous(milliseconds(50), {1, 4});
  JobResult res = run_job(cfg, ring_factory(40, 256, microseconds(500)));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 2);
  EXPECT_GT(res.daemon_stats.suppressed_sends, 0u);

  JobConfig ref = cfg;
  ref.fault_plan = faults::FaultPlan::none();
  JobResult clean = run_job(ref, ring_factory(40, 256, microseconds(500)));
  EXPECT_EQ(outputs(res), outputs(clean));
}

}  // namespace
}  // namespace mpiv
