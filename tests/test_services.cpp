// Unit tests for the reliable services: event logger, checkpoint server,
// scheduling policies and the §4.6.2 policy simulator.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "services/ckpt_policies.hpp"
#include "services/ckpt_server.hpp"
#include "services/event_logger.hpp"
#include "services/sched_sim.hpp"
#include "sim/engine.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

using services::CkptServer;
using services::EventLoggerServer;

/// Fixture hosting one service plus a scripted client fiber.
struct ServiceFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetParams{}};
  net::NodeId svc_node = net.add_node("svc");
  net::NodeId client_node = net.add_node("client");

  net::Conn* connect(sim::Context& ctx, net::Endpoint& ep, std::int32_t port) {
    net::Conn* c = net.connect_retry(ctx, ep, {svc_node, port},
                                     milliseconds(1), ctx.now() + seconds(5));
    EXPECT_NE(c, nullptr);
    return c;
  }
};

Buffer el_hello(mpi::Rank rank, std::int32_t incarnation = 0) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(v2::ElMsg::kHello));
  w.i32(rank);
  w.i32(incarnation);
  return w.take();
}

v2::ReceptionEvent ev(mpi::Rank sender, v2::Clock sc, v2::Clock rc,
                      std::uint32_t np) {
  v2::ReceptionEvent e;
  e.sender = sender;
  e.send_clock = sc;
  e.recv_clock = rc;
  e.nprobes = np;
  return e;
}

Buffer el_append(std::uint64_t first_seq,
                 const std::vector<v2::ReceptionEvent>& events,
                 bool resync = false) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(v2::ElMsg::kAppend));
  w.u64(first_seq);
  w.boolean(resync);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) v2::write_event(w, e);
  return w.take();
}

std::uint64_t read_ack(const Buffer& data) {
  Reader r(data);
  EXPECT_EQ(static_cast<v2::ElMsg>(r.u8()), v2::ElMsg::kAck);
  return r.u64();
}

TEST(EventLogger, AppendAckDownloadPrune) {
  ServiceFixture f;
  EventLoggerServer el(f.net, {f.svc_node});
  f.eng.spawn("el", [&](sim::Context& ctx) { el.run(ctx); });

  std::vector<v2::ReceptionEvent> downloaded;
  std::uint64_t acked = 0;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kEventLoggerPort);
    c->send(ctx, el_hello(3));
    c->send(ctx, el_append(0, {ev(1, 10, 1, 0), ev(2, 5, 2, 1),
                               ev(1, 11, 3, 0)}));
    // Acks are cumulative: next expected sequence number.
    acked = read_ack(ep.wait(ctx).data);

    // Download everything after clock 1.
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::ElMsg::kDownload));
    w.i64(1);
    c->send(ctx, w.take());
    net::NetEvent evs = ep.wait(ctx);
    Reader r2(evs.data);
    EXPECT_EQ(static_cast<v2::ElMsg>(r2.u8()), v2::ElMsg::kEvents);
    std::uint32_t n = r2.u32();
    for (std::uint32_t i = 0; i < n; ++i) downloaded.push_back(v2::read_event(r2));

    // Prune up to clock 2; only clock-3 remains.
    Writer wp;
    wp.u8(static_cast<std::uint8_t>(v2::ElMsg::kPrune));
    wp.i64(2);
    c->send(ctx, wp.take());
    ctx.sleep(milliseconds(1));
  });
  f.eng.run();
  EXPECT_EQ(acked, 3u);
  ASSERT_EQ(downloaded.size(), 2u);
  EXPECT_EQ(downloaded[0].recv_clock, 2);
  EXPECT_EQ(downloaded[1].recv_clock, 3);
  ASSERT_EQ(el.events_for(3).size(), 1u);
  EXPECT_EQ(el.events_for(3)[0].recv_clock, 3);
  EXPECT_TRUE(el.events_for(99).empty());
}

TEST(EventLogger, PerRankIsolation) {
  ServiceFixture f;
  EventLoggerServer el(f.net, {f.svc_node});
  f.eng.spawn("el", [&](sim::Context& ctx) { el.run(ctx); });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* a = f.connect(ctx, ep, v2::kEventLoggerPort);
    a->send(ctx, el_hello(0));
    a->send(ctx, el_append(0, {ev(1, 1, 1, 0)}));
    ep.wait(ctx);
    net::Conn* b = f.connect(ctx, ep, v2::kEventLoggerPort);
    b->send(ctx, el_hello(1));
    b->send(ctx, el_append(0, {ev(0, 1, 1, 0), ev(0, 2, 2, 0)}));
    ep.wait(ctx);
  });
  f.eng.run();
  EXPECT_EQ(el.events_for(0).size(), 1u);
  EXPECT_EQ(el.events_for(1).size(), 2u);
  EXPECT_EQ(el.total_events_stored(), 3u);
}

// Sequence-numbered appends: duplicate retransmits are idempotent, kQuery
// reports the resume point, and a new incarnation's history supersedes the
// stale suffix left behind by the crashed one.
TEST(EventLogger, SequencedAppendsAndIncarnationTruncate) {
  ServiceFixture f;
  EventLoggerServer el(f.net, {f.svc_node});
  f.eng.spawn("el", [&](sim::Context& ctx) { el.run(ctx); });

  std::uint64_t dup_ack = 0;
  std::uint64_t query_next = 99;
  std::uint64_t merged_ack = 0;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kEventLoggerPort);
    c->send(ctx, el_hello(7, 0));
    c->send(ctx, el_append(0, {ev(1, 1, 1, 0), ev(1, 2, 2, 0),
                               ev(1, 3, 3, 0)}));
    EXPECT_EQ(read_ack(ep.wait(ctx).data), 3u);
    // Retransmit of already-stored seq 1..2: acked, not re-stored.
    c->send(ctx, el_append(1, {ev(1, 2, 2, 0), ev(1, 3, 3, 0)}));
    dup_ack = read_ack(ep.wait(ctx).data);

    // A reconnect of the same incarnation resumes where it left off.
    net::Conn* c2 = f.connect(ctx, ep, v2::kEventLoggerPort);
    c2->send(ctx, el_hello(7, 0));
    Writer wq;
    wq.u8(static_cast<std::uint8_t>(v2::ElMsg::kQuery));
    c2->send(ctx, wq.take());
    net::NetEvent qr = ep.wait(ctx);
    Reader r(qr.data);
    EXPECT_EQ(static_cast<v2::ElMsg>(r.u8()), v2::ElMsg::kQueryR);
    query_next = r.u64();

    // Incarnation 1 re-appends its merged history from seq 0; the first
    // accepted event truncates the stale stored suffix (clocks >= 1 here,
    // i.e. everything), so the store ends up exactly the new history.
    net::Conn* c3 = f.connect(ctx, ep, v2::kEventLoggerPort);
    c3->send(ctx, el_hello(7, 1));
    c3->send(ctx, el_append(0, {ev(1, 1, 1, 0), ev(1, 2, 2, 0)}));
    merged_ack = read_ack(ep.wait(ctx).data);
    // The dead incarnation's straggler append is dropped without an ack.
    c->send(ctx, el_append(3, {ev(1, 4, 4, 0)}));
    ctx.sleep(milliseconds(1));
  });
  f.eng.run();
  EXPECT_EQ(dup_ack, 3u);
  EXPECT_EQ(query_next, 3u);
  EXPECT_EQ(merged_ack, 2u);
  ASSERT_EQ(el.events_for(7).size(), 2u);
  EXPECT_EQ(el.events_for(7)[1].recv_clock, 2);
  EXPECT_TRUE(el.store_consistent());
}

TEST(CkptServer, ChunkedStoreAndFetch) {
  ServiceFixture f;
  CkptServer cs(f.net, {f.svc_node});
  f.eng.spawn("cs", [&](sim::Context& ctx) { cs.run(ctx); });

  Buffer image(50000);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::byte>(i % 253);
  }
  Buffer fetched;
  bool found = false;
  std::uint64_t fetched_seq = 0;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kCkptServerPort);
    Writer b;
    b.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreBegin));
    b.i32(7);
    b.u64(42);
    b.u64(image.size());
    c->send(ctx, b.take());
    for (std::size_t off = 0; off < image.size(); off += 16384) {
      Writer ch;
      ch.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreChunk));
      std::size_t n = std::min<std::size_t>(16384, image.size() - off);
      ch.raw(image.data() + off, n);
      c->send(ctx, ch.take());
    }
    Writer e;
    e.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreEnd));
    c->send(ctx, e.take());
    net::NetEvent ok = ep.wait(ctx);
    Reader r(ok.data);
    EXPECT_EQ(static_cast<v2::CsMsg>(r.u8()), v2::CsMsg::kStoreOk);
    EXPECT_EQ(r.u64(), 42u);

    Writer fw;
    fw.u8(static_cast<std::uint8_t>(v2::CsMsg::kFetch));
    fw.i32(7);
    c->send(ctx, fw.take());
    net::NetEvent img = ep.wait(ctx);
    Reader r2(img.data);
    EXPECT_EQ(static_cast<v2::CsMsg>(r2.u8()), v2::CsMsg::kImage);
    found = r2.boolean();
    fetched_seq = r2.u64();
    fetched = r2.blob();
  });
  f.eng.run();
  EXPECT_TRUE(found);
  EXPECT_EQ(fetched_seq, 42u);
  EXPECT_EQ(fnv1a(fetched), fnv1a(image));
  EXPECT_TRUE(cs.has_image(7));
  EXPECT_FALSE(cs.has_image(8));
  EXPECT_EQ(cs.stored_bytes(), image.size());
}

TEST(CkptServer, FetchMissingReturnsNotFound) {
  ServiceFixture f;
  CkptServer cs(f.net, {f.svc_node});
  f.eng.spawn("cs", [&](sim::Context& ctx) { cs.run(ctx); });
  bool found = true;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kCkptServerPort);
    Writer fw;
    fw.u8(static_cast<std::uint8_t>(v2::CsMsg::kFetch));
    fw.i32(5);
    c->send(ctx, fw.take());
    net::NetEvent img = ep.wait(ctx);
    Reader r(img.data);
    r.u8();
    found = r.boolean();
  });
  f.eng.run();
  EXPECT_FALSE(found);
}

TEST(CkptServer, AbandonedUploadDiscarded) {
  ServiceFixture f;
  CkptServer cs(f.net, {f.svc_node});
  f.eng.spawn("cs", [&](sim::Context& ctx) { cs.run(ctx); });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kCkptServerPort);
    Writer b;
    b.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreBegin));
    b.i32(3);
    b.u64(1);
    b.u64(1000);
    c->send(ctx, b.take());
    // Crash before completing the upload.
    ctx.sleep(milliseconds(1));
  });
  f.eng.run();
  EXPECT_FALSE(cs.has_image(3));
  EXPECT_EQ(cs.images_stored(), 0u);
}

TEST(CkptServer, NewerImageReplacesOlder) {
  ServiceFixture f;
  CkptServer cs(f.net, {f.svc_node});
  f.eng.spawn("cs", [&](sim::Context& ctx) { cs.run(ctx); });
  Buffer fetched;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep, v2::kCkptServerPort);
    for (std::uint64_t seq : {1, 2}) {
      Writer b;
      b.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreBegin));
      b.i32(0);
      b.u64(seq);
      b.u64(1);
      c->send(ctx, b.take());
      Writer ch;
      ch.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreChunk));
      ch.u8(static_cast<std::uint8_t>(seq));
      c->send(ctx, ch.take());
      Writer e;
      e.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreEnd));
      c->send(ctx, e.take());
      ep.wait(ctx);  // StoreOk
    }
    Writer fw;
    fw.u8(static_cast<std::uint8_t>(v2::CsMsg::kFetch));
    fw.i32(0);
    c->send(ctx, fw.take());
    net::NetEvent img = ep.wait(ctx);
    Reader r(img.data);
    r.u8();
    r.boolean();
    EXPECT_EQ(r.u64(), 2u);
    fetched = r.blob();
  });
  f.eng.run();
  ASSERT_EQ(fetched.size(), 1u);
  EXPECT_EQ(fetched[0], std::byte{2});
}

// ---------------------------------------------------------------- policies

std::vector<std::optional<v2::DaemonStatus>> statuses_from(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sent_recv) {
  std::vector<std::optional<v2::DaemonStatus>> out;
  mpi::Rank r = 0;
  for (auto [sent, recv] : sent_recv) {
    v2::DaemonStatus s;
    s.rank = r++;
    s.sent_bytes = sent;
    s.recv_bytes = recv;
    out.push_back(s);
  }
  return out;
}

TEST(Policies, RoundRobinCoversAllRanksInOrder) {
  services::RoundRobinPolicy p;
  auto sweep = p.sweep({}, 5);
  EXPECT_EQ(sweep, (std::vector<mpi::Rank>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(p.needs_status());
}

TEST(Policies, AdaptivePicksHeaviestReceiver) {
  services::AdaptivePolicy p;
  auto st = statuses_from({{100, 10}, {10, 100}, {50, 50}});
  auto pick = p.sweep(st, 3);
  ASSERT_EQ(pick.size(), 1u);
  EXPECT_EQ(pick[0], 1);  // ratio 10 beats 1 and 0.1
  EXPECT_TRUE(p.needs_status());
}

TEST(Policies, AdaptiveTieBreaksRoundRobin) {
  services::AdaptivePolicy p;
  auto st = statuses_from({{10, 10}, {10, 10}, {10, 10}});
  std::vector<mpi::Rank> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(p.sweep(st, 3)[0]);
  // Equal ratios: least-recently-checkpointed ordering cycles all ranks.
  EXPECT_EQ(picks, (std::vector<mpi::Rank>{0, 1, 2, 0, 1, 2}));
}

TEST(Policies, AdaptiveSilentDaemonGoesLast) {
  services::AdaptivePolicy p;
  auto st = statuses_from({{10, 10}, {10, 10}});
  st[0] = std::nullopt;
  EXPECT_EQ(p.sweep(st, 2)[0], 1);
}

TEST(Policies, RandomIsSeedDeterministic) {
  services::RandomPolicy a(5), b(5), c(6);
  std::vector<mpi::Rank> pa, pb, pc;
  for (int i = 0; i < 20; ++i) {
    pa.push_back(a.sweep({}, 8)[0]);
    pb.push_back(b.sweep({}, 8)[0]);
    pc.push_back(c.sweep({}, 8)[0]);
  }
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
  for (mpi::Rank r : pa) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 8);
  }
}

// ---------------------------------------------------------------- sched_sim

TEST(SchedSim, AdaptiveNeverWorseThanRoundRobin) {
  for (auto scheme : {services::scheme_point_to_point(8, 1e6),
                      services::scheme_all_to_all(8, 1e6),
                      services::scheme_broadcast(8, 1e6),
                      services::scheme_reduce(8, 1e6)}) {
    services::SchedSimConfig cfg;
    cfg.nodes = 8;
    cfg.rate = scheme;
    cfg.horizon_s = 100;
    cfg.policy = services::PolicyKind::kRoundRobin;
    auto rr = run_sched_sim(cfg);
    cfg.policy = services::PolicyKind::kAdaptive;
    auto ad = run_sched_sim(cfg);
    EXPECT_LE(ad.ckpt_traffic_bps, rr.ckpt_traffic_bps * 1.001);
  }
}

TEST(SchedSim, BroadcastGainScalesWithNodes) {
  // The paper: "up to n times better ... for asynchronous broadcast".
  for (int n : {4, 8, 16}) {
    services::SchedSimConfig cfg;
    cfg.nodes = n;
    // Log-dominated regime (high rates relative to the base image), as in
    // a long-running communication-heavy application.
    cfg.rate = services::scheme_broadcast(n, 4e6);
    cfg.horizon_s = 200;
    cfg.policy = services::PolicyKind::kRoundRobin;
    auto rr = run_sched_sim(cfg);
    cfg.policy = services::PolicyKind::kAdaptive;
    auto ad = run_sched_sim(cfg);
    double gain = rr.ckpt_traffic_bps / ad.ckpt_traffic_bps;
    EXPECT_GT(gain, n * 0.75) << "n=" << n;
  }
}

TEST(SchedSim, CheckpointsClearReceiverLogs) {
  services::SchedSimConfig cfg;
  cfg.nodes = 2;
  cfg.rate = services::scheme_point_to_point(2, 1e6);
  cfg.horizon_s = 10;
  cfg.ckpt_duration_s = 1.0;
  cfg.policy = services::PolicyKind::kRoundRobin;
  auto res = run_sched_sim(cfg);
  EXPECT_EQ(res.checkpoints, 10);
  // Steady state: each node's log toward the other is cleared every 2 s,
  // so occupancy stays bounded well below rate * horizon.
  EXPECT_LT(res.peak_log_bytes, 5e6);
  EXPECT_GT(res.avg_log_bytes, 0.0);
}

}  // namespace
}  // namespace mpiv
