// Property tests: the paper's central guarantee — an execution with any
// number of faults is equivalent to a fault-free execution — under random
// fault storms, adversarial fault timings (during checkpointing, during
// re-execution), and calibration regression guards for the network model.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "apps/pingpong.hpp"
#include "apps/token_ring.hpp"
#include "runtime/job.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

runtime::AppFactory ring(int rounds, std::size_t bytes, SimDuration compute) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

// ---- random fault storms across seeds, with and without checkpointing ----

class FaultStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultStorm, RingSurvivesStormWithoutCheckpoints) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 5;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::random_arrivals(
      to_seconds(clean.makespan) / 2.5, milliseconds(5),
      clean.makespan * 2, 5, GetParam());
  cfg.restart_delay = milliseconds(20);
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_EQ(outputs(res), outputs(clean)) << "seed " << GetParam();
}

TEST_P(FaultStorm, KernelSurvivesStormWithCheckpoints) {
  auto factory = apps::kernel_factory("mg", apps::NasClass::kTest);
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(2);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::random_arrivals(
      to_seconds(clean.makespan) / 2.0, milliseconds(4),
      clean.makespan * 3, 4, GetParam() + 1000);
  cfg.restart_delay = milliseconds(20);
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_EQ(outputs(res), outputs(clean)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultStorm,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

// ---- adversarial fault timings ----

TEST(AdversarialFaults, KillSameRankRepeatedly) {
  auto factory = ring(50, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  faults::FaultPlan plan;
  // Rank 2 dies every 40 ms, five times; restart delay 20 ms leaves it
  // barely any time to make progress between deaths.
  for (int i = 1; i <= 5; ++i) {
    plan.events.push_back({i * milliseconds(40), 2});
  }
  cfg.fault_plan = plan;
  cfg.restart_delay = milliseconds(20);
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 3);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(AdversarialFaults, KillDuringReplay) {
  auto factory = ring(50, 1024, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // First kill mid-run; second kill lands ~15 ms after the restart, i.e.
  // squarely inside the replay of the first incarnation's log.
  SimTime first = clean.makespan / 2;
  faults::FaultPlan plan;
  plan.events.push_back({first, 1});
  plan.events.push_back({first + milliseconds(100) + milliseconds(15), 1});
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 2);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(AdversarialFaults, KillNeighborOfReplayingRank) {
  auto factory = ring(50, 1024, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  SimTime first = clean.makespan / 2;
  faults::FaultPlan plan;
  plan.events.push_back({first, 1});
  // Its upstream neighbour (the rank whose sender log feeds the replay)
  // dies while serving the resend pass.
  plan.events.push_back({first + milliseconds(100) + milliseconds(10), 0});
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(AdversarialFaults, KillDuringCheckpointUpload) {
  auto factory = apps::kernel_factory("ft", apps::NasClass::kTest);
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(3);
  cfg.ckpt_period = 0;  // continuous: uploads are always in flight
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  ASSERT_GT(clean.checkpoints_stored, 0u);

  // Kill at several phases of the run; with continuous checkpointing the
  // victim is frequently mid-upload.
  for (int phase = 1; phase <= 3; ++phase) {
    JobConfig f = cfg;
    f.fault_plan = faults::FaultPlan::simultaneous(
        clean.makespan * phase / 4, {static_cast<mpi::Rank>(phase % 4)});
    f.time_limit = seconds(600);
    JobResult res = run_job(f, factory);
    ASSERT_TRUE(res.success) << "phase " << phase;
    EXPECT_EQ(outputs(res), outputs(clean)) << "phase " << phase;
  }
}

TEST(AdversarialFaults, KillJustBeforeFinalize) {
  auto factory = ring(30, 512, microseconds(300));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(
      static_cast<SimTime>(0.98 * clean.makespan), {3});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(AdversarialFaults, MassiveSimultaneousFailure) {
  // Grid-partition scenario: all but one node vanish at once.
  auto factory = ring(40, 512, microseconds(300));
  JobConfig cfg;
  cfg.nprocs = 5;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan =
      faults::FaultPlan::simultaneous(clean.makespan / 2, {0, 1, 2, 3});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 4);
  EXPECT_EQ(outputs(res), outputs(clean));
}

// ---- ANY_SOURCE nondeterminism under faults ----

class AnySourceFarm final : public runtime::App {
 public:
  explicit AnySourceFarm(int units) : units_(units) {}
  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() == 0) {
      int out = 0, in = 0;
      for (int w = 1; w < comm.size() && out < units_; ++w) {
        comm.send_value<int>(ctx, out++, w, 1);
      }
      while (in < units_) {
        mpi::Status st;
        std::uint64_t v = 0;
        comm.recv(ctx, std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)),
                  mpi::kAnySource, 2, &st);
        ordered_ = ordered_ * 31 + v;  // sensitive to reception order
        unordered_ += v;               // order-independent total
        ++in;
        comm.send_value<int>(ctx, out < units_ ? out++ : -1, st.source, 1);
      }
    } else {
      for (;;) {
        int unit = comm.recv_value<int>(ctx, 0, 1);
        if (unit < 0) return;
        std::uint64_t v = static_cast<std::uint64_t>(unit) * 2654435761u + 7;
        ctx.compute(microseconds(300 + (unit % 7) * 100));
        comm.send_value<std::uint64_t>(ctx, v, 0, 2);
      }
    }
  }
  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(ordered_);
    w.u64(unordered_);
    return w.take();
  }

 private:
  int units_;
  std::uint64_t ordered_ = 0;
  std::uint64_t unordered_ = 0;
};

std::pair<std::uint64_t, std::uint64_t> farm_sums(const JobResult& r) {
  Reader rd(r.ranks[0].output);
  std::uint64_t ordered = rd.u64();
  std::uint64_t unordered = rd.u64();
  return {ordered, unordered};
}

// With ANY_SOURCE the protocol guarantees equivalence to *a* fault-free
// execution: the order-independent total must match any clean run, every
// unit is processed exactly once, and re-running the same fault plan must
// replay the exact same (logged) reception order — but the order may
// legitimately differ from a particular clean run, since faults change
// arrival timing.
TEST(AnySource, MasterKillIsTransparent) {
  auto factory = [](mpi::Rank, mpi::Rank) {
    return std::make_unique<AnySourceFarm>(30);
  };
  JobConfig cfg;
  cfg.nprocs = 5;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {0});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(farm_sums(res).second, farm_sums(clean).second);

  // Reception-order determinism: the same fault plan replays the same
  // logged ANY_SOURCE order, bit for bit.
  JobResult res2 = run_job(cfg, factory);
  ASSERT_TRUE(res2.success);
  EXPECT_EQ(farm_sums(res2).first, farm_sums(res).first);
}

TEST(AnySource, WorkerChurnIsTransparent) {
  auto factory = [](mpi::Rank, mpi::Rank) {
    return std::make_unique<AnySourceFarm>(30);
  };
  JobConfig cfg;
  cfg.nprocs = 5;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  faults::FaultPlan plan;
  plan.events.push_back({clean.makespan / 4, 2});
  plan.events.push_back({clean.makespan / 2, 3});
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(farm_sums(res).second, farm_sums(clean).second);
  JobResult res2 = run_job(cfg, factory);
  ASSERT_TRUE(res2.success);
  EXPECT_EQ(farm_sums(res2).first, farm_sums(res).first);
}

// ---- calibration regression guards (the paper's measured constants) ----

TEST(Calibration, P4ZeroByteLatencyNear77us) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kP4;
  JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::PingPongApp>(0, 10);
  });
  ASSERT_TRUE(res.success);
  double one_way_us = Reader(res.ranks[0].output).f64() / 2e3;
  EXPECT_NEAR(one_way_us, 77.0, 5.0);
}

TEST(Calibration, V2ZeroByteLatencyNear237us) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::PingPongApp>(0, 10);
  });
  ASSERT_TRUE(res.success);
  double one_way_us = Reader(res.ranks[0].output).f64() / 2e3;
  EXPECT_NEAR(one_way_us, 237.0, 15.0);
}

TEST(Calibration, LargeMessageBandwidthOrdering) {
  // P4 ~11.3 MB/s > V2 ~10.7 MB/s > V1 ~ half of P4.
  std::map<DeviceKind, double> bw;
  for (auto dev : {DeviceKind::kP4, DeviceKind::kV1, DeviceKind::kV2}) {
    JobConfig cfg;
    cfg.nprocs = 2;
    cfg.device = dev;
    if (dev == DeviceKind::kV1) cfg.channel_memories = 2;
    JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::PingPongApp>(1 << 20, 3);
    });
    ASSERT_TRUE(res.success);
    double one_way_s = Reader(res.ranks[0].output).f64() / 2e9;
    bw[dev] = static_cast<double>(1 << 20) / one_way_s / 1e6;
  }
  EXPECT_NEAR(bw[DeviceKind::kP4], 11.3, 0.7);
  EXPECT_NEAR(bw[DeviceKind::kV2], 10.7, 0.7);
  EXPECT_NEAR(bw[DeviceKind::kV1], bw[DeviceKind::kP4] / 2.0, 0.7);
  EXPECT_GT(bw[DeviceKind::kP4], bw[DeviceKind::kV2]);
  EXPECT_GT(bw[DeviceKind::kV2], bw[DeviceKind::kV1]);
}

TEST(Calibration, NonblockingPatternV2BeatsP4At64K) {
  // Fig. 9's headline: V2 about twice P4 for 64 KB batched exchanges.
  std::map<DeviceKind, double> round;
  for (auto dev : {DeviceKind::kP4, DeviceKind::kV2}) {
    JobConfig cfg;
    cfg.nprocs = 2;
    cfg.device = dev;
    JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::NonblockingPatternApp>(65536, 10, 3);
    });
    ASSERT_TRUE(res.success);
    round[dev] = Reader(res.ranks[0].output).f64();
  }
  double ratio = round[DeviceKind::kP4] / round[DeviceKind::kV2];
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.5);
}

}  // namespace
}  // namespace mpiv
