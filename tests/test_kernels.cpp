// NAS-like kernel correctness: fault-free sanity, cross-device result
// equivalence (the kernels are deterministic, so P4 / V1 / V2 must produce
// bit-identical outputs), and fault-transparency sweeps.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "runtime/job.hpp"

namespace mpiv {
namespace {

using apps::NasClass;
using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

JobResult run_kernel(const std::string& name, int nprocs, DeviceKind dev,
                     faults::FaultPlan plan = {}) {
  JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = dev;
  cfg.fault_plan = std::move(plan);
  return run_job(cfg, apps::kernel_factory(name, NasClass::kTest));
}

// ---- per-kernel fault-free sanity at representative proc counts ----

struct KernelCase {
  std::string name;
  int nprocs;
};

class KernelSanity : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelSanity, CompletesOnP4WithFiniteResult) {
  auto [name, np] = GetParam();
  JobResult r = run_kernel(name, np, DeviceKind::kP4);
  ASSERT_TRUE(r.success);
  for (const auto& rr : r.ranks) {
    ASSERT_FALSE(rr.output.empty());
    Reader rd(rr.output);
    double v = rd.f64();
    EXPECT_TRUE(std::isfinite(v)) << name << " produced " << v;
  }
}

TEST_P(KernelSanity, V2MatchesP4Bitwise) {
  auto [name, np] = GetParam();
  JobResult p4 = run_kernel(name, np, DeviceKind::kP4);
  JobResult v2 = run_kernel(name, np, DeviceKind::kV2);
  ASSERT_TRUE(p4.success);
  ASSERT_TRUE(v2.success);
  EXPECT_EQ(outputs(p4), outputs(v2));
}

TEST_P(KernelSanity, V1MatchesP4Bitwise) {
  auto [name, np] = GetParam();
  JobResult p4 = run_kernel(name, np, DeviceKind::kP4);
  JobResult v1 = run_kernel(name, np, DeviceKind::kV1);
  ASSERT_TRUE(p4.success);
  ASSERT_TRUE(v1.success);
  EXPECT_EQ(outputs(p4), outputs(v1));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSanity,
    ::testing::Values(KernelCase{"cg", 4}, KernelCase{"cg", 8},
                      KernelCase{"mg", 4}, KernelCase{"mg", 8},
                      KernelCase{"ft", 4}, KernelCase{"ft", 8},
                      KernelCase{"lu", 4}, KernelCase{"lu", 8},
                      KernelCase{"bt", 4}, KernelCase{"bt", 9},
                      KernelCase{"sp", 4}, KernelCase{"sp", 9}),
    [](const auto& info) {
      return info.param.name + "_" + std::to_string(info.param.nprocs);
    });

// ---- fault transparency: one fault mid-run must not change results ----

class KernelFaults : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelFaults, OneFaultPreservesResults) {
  auto [name, np] = GetParam();
  JobResult clean = run_kernel(name, np, DeviceKind::kV2);
  ASSERT_TRUE(clean.success);
  // Kill a middle rank a third of the way through the clean makespan.
  faults::FaultPlan plan = faults::FaultPlan::simultaneous(
      clean.makespan / 3, {static_cast<mpi::Rank>(np / 2)});
  JobResult faulty = run_kernel(name, np, DeviceKind::kV2, plan);
  ASSERT_TRUE(faulty.success);
  EXPECT_GE(faulty.restarts, 1);
  EXPECT_EQ(outputs(faulty), outputs(clean));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelFaults,
    ::testing::Values(KernelCase{"cg", 4}, KernelCase{"mg", 4},
                      KernelCase{"ft", 4}, KernelCase{"lu", 4},
                      KernelCase{"bt", 4}, KernelCase{"sp", 4}),
    [](const auto& info) {
      return info.param.name + "_" + std::to_string(info.param.nprocs);
    });

TEST(KernelDeterminism, RepeatedRunsIdentical) {
  JobResult a = run_kernel("cg", 4, DeviceKind::kV2);
  JobResult b = run_kernel("cg", 4, DeviceKind::kV2);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(outputs(a), outputs(b));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.daemon_stats.events_logged, b.daemon_stats.events_logged);
}

TEST(KernelDeterminism, FaultyRunsIdenticalForSameSeed) {
  faults::FaultPlan plan =
      faults::FaultPlan::periodic_random(2, milliseconds(5), milliseconds(30),
                                         4, /*seed=*/99);
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.fault_plan = plan;
  JobResult a = run_job(cfg, apps::kernel_factory("mg", NasClass::kTest));
  JobResult b = run_job(cfg, apps::kernel_factory("mg", NasClass::kTest));
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(outputs(a), outputs(b));
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace mpiv
