#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi_test_util.hpp"

namespace mpiv {
namespace {

using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Status;
using testutil::run_p4_job;

TEST(MpiP2p, BlockingSendRecv) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3, 4};
      comm.send<int>(ctx, data, 1, 7);
    } else {
      std::vector<int> buf(4);
      Status st;
      comm.recv<int>(ctx, buf, 0, 7, &st);
      EXPECT_EQ(buf, (std::vector<int>{1, 2, 3, 4}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, 16u);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, TagMatching) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(ctx, 10, 1, /*tag=*/1);
      comm.send_value<int>(ctx, 20, 1, /*tag=*/2);
    } else {
      // Receive tag 2 first even though tag 1 arrived earlier.
      EXPECT_EQ(comm.recv_value<int>(ctx, 0, 2), 20);
      EXPECT_EQ(comm.recv_value<int>(ctx, 0, 1), 10);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, AnySourceReceives) {
  auto res = run_p4_job(3, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value<int>(ctx, comm.rank() * 100, 0, 5);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Status st;
        int v = 0;
        comm.recv(ctx, std::span<int>(&v, 1), kAnySource, 5, &st);
        EXPECT_EQ(v, st.source * 100);
        sum += v;
      }
      EXPECT_EQ(sum, 300);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, AnyTagReceives) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(ctx, 42, 1, 9);
    } else {
      Status st;
      int v = 0;
      comm.recv(ctx, std::span<int>(&v, 1), 0, kAnyTag, &st);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.tag, 9);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, NonOvertakingSameTag) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    const int kN = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send_value<int>(ctx, i, 1, 3);
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(comm.recv_value<int>(ctx, 0, 3), i);
      }
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, IsendIrecvWaitall) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    const int kN = 10;
    std::vector<std::vector<int>> sbufs(kN), rbufs(kN);
    std::vector<mpi::Request> reqs;
    int peer = 1 - comm.rank();
    for (int i = 0; i < kN; ++i) {
      sbufs[i].assign(64, comm.rank() * 1000 + i);
      rbufs[i].assign(64, -1);
      reqs.push_back(comm.irecv<int>(ctx, rbufs[i], peer, i));
    }
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(comm.isend<int>(ctx, sbufs[i], peer, i));
    }
    comm.waitall(ctx, reqs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rbufs[i][0], peer * 1000 + i);
      EXPECT_EQ(rbufs[i][63], peer * 1000 + i);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, TestCompletesEventually) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      ctx.sleep(milliseconds(5));
      comm.send_value<int>(ctx, 1, 1, 0);
    } else {
      int v = 0;
      mpi::Request r = comm.irecv(ctx, std::span<int>(&v, 1), 0, 0);
      int polls = 0;
      while (!comm.test(ctx, r)) {
        ctx.sleep(microseconds(100));
        ++polls;
      }
      EXPECT_GT(polls, 5);
      EXPECT_EQ(v, 1);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, ProbeThenRecv) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> d(17, 3.5);
      comm.send<double>(ctx, d, 1, 4);
    } else {
      Status st = comm.probe(ctx, kAnySource, kAnyTag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 4);
      EXPECT_EQ(st.count, 17 * sizeof(double));
      std::vector<double> buf(17);
      comm.recv<double>(ctx, buf, st.source, st.tag);
      EXPECT_DOUBLE_EQ(buf[16], 3.5);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, IprobeNegativeThenPositive) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      ctx.sleep(milliseconds(2));
      comm.send_value<int>(ctx, 5, 1, 0);
    } else {
      EXPECT_FALSE(comm.iprobe(ctx, 0, 0).has_value());
      while (!comm.iprobe(ctx, 0, 0).has_value()) ctx.sleep(microseconds(50));
      EXPECT_EQ(comm.recv_value<int>(ctx, 0, 0), 5);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, SendrecvExchanges) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    int peer = 1 - comm.rank();
    std::vector<int> out(100, comm.rank() + 1), in(100, 0);
    comm.sendrecv(ctx, std::as_bytes(std::span<const int>(out)), peer, 0,
                  std::as_writable_bytes(std::span<int>(in)), peer, 0);
    EXPECT_EQ(in[0], peer + 1);
    EXPECT_EQ(in[99], peer + 1);
  });
  EXPECT_TRUE(res.all_finished);
}

// Parameterized across payload sizes to cover the short / eager /
// rendezvous protocol switch points (1 KB and 128 KB for P4).
class MpiProtocols : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MpiProtocols, RoundTripPreservesPayload) {
  const std::size_t bytes = GetParam();
  auto res = run_p4_job(2, [bytes](sim::Context& ctx, mpi::Comm& comm) {
    Buffer payload(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      payload[i] = static_cast<std::byte>(i * 31 + 7);
    }
    if (comm.rank() == 0) {
      comm.send(ctx, payload, 1, 0);
      Buffer back(bytes);
      comm.recv(ctx, back, 1, 0);
      EXPECT_EQ(fnv1a(back), fnv1a(payload));
    } else {
      Buffer got(bytes);
      comm.recv(ctx, got, 0, 0);
      EXPECT_EQ(fnv1a(got), fnv1a(payload));
      comm.send(ctx, got, 0, 0);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiProtocols,
                         ::testing::Values(0, 1, 100, 1024, 1025, 4096, 65536,
                                           131072, 131073, 1 << 20));

TEST(MpiP2p, SimultaneousLargeExchangeNoDeadlock) {
  // Both ranks eagerly push 10 x 64KB at each other, then drain: exercises
  // the window-blocked service fallback.
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    const int kN = 10;
    const std::size_t kSize = 64 * 1024;
    int peer = 1 - comm.rank();
    std::vector<Buffer> sbuf(kN, Buffer(kSize, std::byte{9}));
    std::vector<Buffer> rbuf(kN, Buffer(kSize));
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < kN; ++i) reqs.push_back(comm.irecv(ctx, rbuf[i], peer, i));
    for (int i = 0; i < kN; ++i) reqs.push_back(comm.isend(ctx, sbuf[i], peer, i));
    comm.waitall(ctx, reqs);
    for (int i = 0; i < kN; ++i) EXPECT_EQ(rbuf[i][100], std::byte{9});
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(MpiP2p, ProfilerAttributesTime) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      Buffer big(256 * 1024);
      comm.send(ctx, big, 1, 0);
      EXPECT_GT(comm.profiler().total(mpi::MpiFunc::kSend), 0);
      EXPECT_EQ(comm.profiler().entry(mpi::MpiFunc::kSend).calls, 1u);
    } else {
      Buffer big(256 * 1024);
      comm.recv(ctx, big, 0, 0);
      EXPECT_GT(comm.profiler().total(mpi::MpiFunc::kRecv), 0);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

}  // namespace
}  // namespace mpiv
