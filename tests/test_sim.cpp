#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/process.hpp"

namespace mpiv::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakInInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  EventId id = eng.schedule_at(10, [&] { ran = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelFromWithinEventCallback) {
  // Cancelling a pending event from inside another event's callback must
  // tombstone it in place — including events earlier in this tick's pop
  // order on other shards, and self-rescheduled timers.
  Engine eng;
  bool a_ran = false, b_ran = false;
  EventId b = eng.schedule_at(20, [&] { b_ran = true; });
  eng.schedule_at(10, [&] {
    a_ran = true;
    eng.cancel(b);
    // Schedule-then-cancel inside the same callback: never runs either.
    EventId c = eng.schedule_at(15, [&] { b_ran = true; });
    eng.cancel(c);
  });
  eng.run();
  EXPECT_TRUE(a_ran);
  EXPECT_FALSE(b_ran);
  EXPECT_EQ(eng.stats().events_cancelled, 2u);
}

TEST(Engine, StaleCancelIsNoOp) {
  Engine eng;
  int ran = 0;
  EventId a = eng.schedule_at(10, [&] { ++ran; });
  eng.run();
  EXPECT_EQ(ran, 1);
  // After execution the slot is recycled: cancelling the stale id must not
  // touch whatever lives there now (generation check).
  eng.cancel(a);
  EventId b = eng.schedule_at(20, [&] { ++ran; });
  eng.cancel(a);  // still stale, still a no-op
  eng.cancel(b);
  eng.cancel(b);  // double cancel
  eng.cancel(EventId{});  // default id
  eng.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(eng.stats().events_cancelled, 1u);
}

TEST(Engine, CancelledTimerDoesNotAdvanceClock) {
  // Dropping a tombstone must not drag virtual time to the tombstone's
  // timestamp: a cancelled far-future timer is invisible to the clock.
  Engine eng;
  EventId timer = eng.schedule_at(1000000, [] {});
  eng.schedule_at(10, [&] { eng.cancel(timer); });
  eng.run();
  EXPECT_EQ(eng.now(), 10);
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine eng;
  int count = 0;
  eng.schedule_at(10, [&] { ++count; });
  eng.schedule_at(100, [&] { ++count; });
  eng.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(eng.now(), 50);
  eng.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, NestedScheduling) {
  Engine eng;
  std::vector<SimTime> times;
  eng.schedule_at(10, [&] {
    times.push_back(eng.now());
    eng.schedule_in(5, [&] { times.push_back(eng.now()); });
  });
  eng.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Process, BodyRunsAndFinishes) {
  Engine eng;
  bool ran = false;
  Process* p = eng.spawn("worker", [&](Context&) { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(p->finished());
  EXPECT_FALSE(p->was_killed());
}

TEST(Process, SleepAdvancesVirtualTime) {
  Engine eng;
  SimTime woke = -1;
  eng.spawn("sleeper", [&](Context& ctx) {
    ctx.sleep(microseconds(100));
    woke = ctx.now();
  });
  eng.run();
  EXPECT_EQ(woke, microseconds(100));
}

TEST(Process, InterleavedSleepsDeterministic) {
  Engine eng;
  std::vector<std::string> order;
  eng.spawn("a", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.sleep(10);
      order.push_back("a");
    }
  });
  eng.spawn("b", [&](Context& ctx) {
    for (int i = 0; i < 2; ++i) {
      ctx.sleep(15);
      order.push_back("b");
    }
  });
  eng.run();
  // a@10, b@15, a@20, then at t=30 b precedes a because b armed its timer
  // at t=15, before a armed its own at t=20 (insertion-order tie-break).
  EXPECT_EQ(order,
            (std::vector<std::string>{"a", "b", "a", "b", "a"}));
}

TEST(Process, KillUnwindsWithRaii) {
  Engine eng;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  Process* p = eng.spawn("victim", [&](Context& ctx) {
    Sentinel s{&destroyed};
    ctx.sleep(seconds(100));
  });
  eng.schedule_at(seconds(1), [&] { eng.kill(p); });
  eng.run();
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(p->finished());
  EXPECT_TRUE(p->was_killed());
  EXPECT_EQ(eng.now(), seconds(1));
}

TEST(Process, ComputeTimeAccounted) {
  Engine eng;
  SimDuration recorded = 0;
  eng.spawn("worker", [&](Context& ctx) {
    ctx.compute(seconds(1));
    ctx.sleep(seconds(2));
    ctx.compute(seconds(3));
    recorded = ctx.compute_time();
  });
  eng.run();
  EXPECT_EQ(recorded, seconds(4));
}

TEST(Mailbox, SendRecvAcrossProcesses) {
  Engine eng;
  Mailbox<int> box(eng);
  std::vector<int> got;
  eng.spawn("consumer", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) got.push_back(box.recv(ctx));
  });
  eng.spawn("producer", [&](Context& ctx) {
    for (int i = 1; i <= 3; ++i) {
      ctx.sleep(10);
      box.push(i * 100);
    }
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{100, 200, 300}));
}

TEST(Mailbox, RecvBlocksUntilPush) {
  Engine eng;
  SimTime recv_time = -1;
  Mailbox<int> box(eng);
  eng.spawn("consumer", [&](Context& ctx) {
    box.recv(ctx);
    recv_time = ctx.now();
  });
  eng.schedule_at(seconds(5), [&] { box.push(1); });
  eng.run();
  EXPECT_EQ(recv_time, seconds(5));
}

TEST(Mailbox, RecvUntilTimesOut) {
  Engine eng;
  bool got_value = true;
  eng.spawn("consumer", [&](Context& ctx) {
    Mailbox<int> box(eng);
    got_value = box.recv_until(ctx, seconds(1)).has_value();
  });
  eng.run();
  EXPECT_FALSE(got_value);
  EXPECT_EQ(eng.now(), seconds(1));
}

TEST(Mailbox, RecvUntilGetsEarlyValue) {
  Engine eng;
  Mailbox<int> box(eng);
  std::optional<int> got;
  SimTime when = -1;
  eng.spawn("consumer", [&](Context& ctx) {
    got = box.recv_until(ctx, seconds(10));
    when = ctx.now();
  });
  eng.schedule_at(seconds(2), [&] { box.push(7); });
  eng.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(when, seconds(2));
}

TEST(Mailbox, TryRecvNonBlocking) {
  Engine eng;
  Mailbox<int> box(eng);
  eng.spawn("p", [&](Context&) {
    EXPECT_FALSE(box.try_recv().has_value());
    box.push(9);
    auto v = box.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
  });
  eng.run();
}

TEST(Notifier, WakesWaiter) {
  Engine eng;
  SimTime woke = -1;
  Notifier n(eng);
  eng.spawn("waiter", [&](Context& ctx) {
    n.wait(ctx);
    woke = ctx.now();
  });
  eng.schedule_at(seconds(3), [&] { n.notify(); });
  eng.run();
  EXPECT_EQ(woke, seconds(3));
}

TEST(Notifier, WaitUntilTimesOut) {
  Engine eng;
  bool notified = true;
  Notifier n(eng);
  eng.spawn("waiter", [&](Context& ctx) {
    notified = n.wait_until(ctx, seconds(1));
  });
  eng.run();
  EXPECT_FALSE(notified);
}

TEST(Engine, ShutdownUnwindsParkedFibers) {
  Engine eng;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  eng.spawn("stuck", [&](Context& ctx) {
    Sentinel s{&destroyed};
    ctx.sleep(seconds(1000));
  });
  eng.run_until(seconds(1));
  EXPECT_FALSE(destroyed);
  eng.shutdown();
  EXPECT_TRUE(destroyed);
}

TEST(Engine, DeterministicEventCounts) {
  auto run_once = [] {
    Engine eng;
    Mailbox<int> box(eng);
    for (int p = 0; p < 4; ++p) {
      eng.spawn("prod", [&box, p](Context& ctx) {
        for (int i = 0; i < 10; ++i) {
          ctx.sleep(10 + p);
          box.push(p);
        }
      });
    }
    std::vector<int> order;
    eng.spawn("cons", [&](Context& ctx) {
      for (int i = 0; i < 40; ++i) order.push_back(box.recv(ctx));
    });
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mpiv::sim
