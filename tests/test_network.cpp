#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/pipe.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace mpiv::net {
namespace {

Buffer make_payload(std::size_t n, std::uint8_t fill = 0x5a) {
  return Buffer(n, std::byte{fill});
}

struct Fixture {
  sim::Engine eng;
  NetParams params;
  Network net;
  Fixture() : net(eng, NetParams{}) {}
};

TEST(Network, ConnectAndSend) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  std::string got;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(9000);
    NetEvent acc = ep.wait(ctx);
    ASSERT_EQ(acc.type, NetEvent::Type::kAccepted);
    NetEvent data = ep.wait(ctx);
    ASSERT_EQ(data.type, NetEvent::Type::kData);
    got.assign(reinterpret_cast<const char*>(data.data.data()),
               data.data.size());
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));  // let the server start listening
    Conn* c = f.net.connect(ctx, ep, {b, 9000});
    ASSERT_NE(c, nullptr);
    Buffer msg;
    const char* text = "hello";
    msg.resize(5);
    std::memcpy(msg.data(), text, 5);
    EXPECT_TRUE(c->send(ctx, std::move(msg)));
  });
  f.eng.run();
  EXPECT_EQ(got, "hello");
}

TEST(Network, FifoOrderPreserved) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  std::vector<std::uint8_t> got;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);  // accepted
    for (int i = 0; i < 10; ++i) {
      NetEvent ev = ep.wait(ctx);
      ASSERT_EQ(ev.type, NetEvent::Type::kData);
      got.push_back(static_cast<std::uint8_t>(ev.data[0]));
    }
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 1});
    ASSERT_NE(c, nullptr);
    for (std::uint8_t i = 0; i < 10; ++i) {
      c->send(ctx, Buffer{std::byte{i}});
    }
  });
  f.eng.run();
  ASSERT_EQ(got.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(Network, SmallMessageOneWayLatencyMatchesModel) {
  // send_cpu (18us) + wire (40us) + recv_cpu (18us) = 76us for a tiny
  // message — the paper's P4 0-byte latency is 77us.
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  SimTime sent_at = 0, got_at = 0;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);
    ep.wait(ctx);
    got_at = ctx.now();
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 1});
    sent_at = ctx.now();
    c->send(ctx, Buffer{});
  });
  f.eng.run();
  SimDuration one_way = got_at - sent_at;
  EXPECT_NEAR(to_microseconds(one_way), 76.0, 1.0);
}

TEST(Network, LargeMessageBandwidthDominates) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  SimTime start = 0, end = 0;
  const std::size_t kSize = 1 << 20;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);
    NetEvent ev = ep.wait(ctx);
    EXPECT_EQ(ev.data.size(), kSize);
    end = ctx.now();
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 1});
    start = ctx.now();
    c->send(ctx, make_payload(kSize));
  });
  f.eng.run();
  double secs = to_seconds(end - start);
  double bw = static_cast<double>(kSize) / secs;
  EXPECT_NEAR(bw, f.net.params().bandwidth_bps, 0.02 * f.net.params().bandwidth_bps);
}

TEST(Network, NicSerializesConcurrentSenders) {
  // Two processes on one node each send 1MB concurrently: total time is the
  // sum of both transfers, not the max.
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  const std::size_t kSize = 1 << 20;
  SimTime done = 0;
  int received = 0;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    while (received < 2) {
      NetEvent ev = ep.wait(ctx);
      if (ev.type == NetEvent::Type::kData) {
        ++received;
        done = ctx.now();
      }
    }
  });
  for (int i = 0; i < 2; ++i) {
    f.eng.spawn("client", [&](sim::Context& ctx) {
      Endpoint ep(f.net, a);
      ctx.sleep(microseconds(10));
      Conn* c = f.net.connect(ctx, ep, {b, 1});
      c->send(ctx, make_payload(kSize));
    });
  }
  f.eng.run();
  double secs = to_seconds(done);
  double expected = 2.0 * static_cast<double>(kSize) / f.net.params().bandwidth_bps;
  EXPECT_GT(secs, expected * 0.95);
}

TEST(Network, KillNodeNotifiesPeerWithClosed) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  bool saw_closed = false;
  SimTime closed_at = 0;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);  // accepted
    NetEvent ev = ep.wait(ctx);
    saw_closed = (ev.type == NetEvent::Type::kClosed);
    closed_at = ctx.now();
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 1});
    ASSERT_NE(c, nullptr);
    ctx.sleep(seconds(100));  // killed before this elapses
  });
  f.eng.schedule_at(seconds(1), [&] { f.net.kill_node(a); });
  f.eng.run();
  EXPECT_TRUE(saw_closed);
  EXPECT_GE(closed_at, seconds(1));
  EXPECT_FALSE(f.net.node_alive(a));
}

TEST(Network, KillNodeTerminatesRegisteredProcesses) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  bool unwound = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  sim::Process* p = f.eng.spawn("app", [&](sim::Context& ctx) {
    Sentinel s{&unwound};
    ctx.sleep(seconds(100));
  });
  f.net.register_process(a, p);
  f.eng.schedule_at(seconds(2), [&] { f.net.kill_node(a); });
  f.eng.run();
  EXPECT_TRUE(unwound);
  EXPECT_TRUE(p->was_killed());
}

TEST(Network, InFlightMessageToKilledNodeDropped) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  bool server_got_data = false;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);
    NetEvent ev = ep.wait(ctx);
    server_got_data = (ev.type == NetEvent::Type::kData);
  });
  sim::Process* srv = nullptr;
  for (auto& pr : f.eng.processes()) srv = pr.get();
  f.net.register_process(b, srv);
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 1});
    ASSERT_NE(c, nullptr);
    // Kill b right when the message is mid-flight.
    f.eng.schedule_in(microseconds(30), [&] { f.net.kill_node(b); });
    c->send(ctx, make_payload(100));
  });
  f.eng.run();
  EXPECT_FALSE(server_got_data);
}

TEST(Network, ConnectToMissingListenerFails) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  bool connected = true;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    connected = f.net.connect(ctx, ep, {b, 7777}) != nullptr;
  });
  f.eng.run();
  EXPECT_FALSE(connected);
}

TEST(Network, ConnectRetrySucceedsWhenServerAppears) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  bool connected = false;

  f.eng.spawn("late-server", [&](sim::Context& ctx) {
    ctx.sleep(milliseconds(50));
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);          // accepted
    ctx.sleep(seconds(1));  // keep the connection up past the handshake
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    Conn* c = f.net.connect_retry(ctx, ep, {b, 1}, milliseconds(5),
                                  ctx.now() + seconds(1));
    connected = c != nullptr;
  });
  f.eng.run();
  EXPECT_TRUE(connected);
}

TEST(Network, EndpointDestructionClosesConnections) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");
  bool saw_closed = false;

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(1);
    ep.wait(ctx);
    NetEvent ev = ep.wait(ctx);
    saw_closed = (ev.type == NetEvent::Type::kClosed);
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    {
      Endpoint ep(f.net, a);
      ctx.sleep(microseconds(10));
      Conn* c = f.net.connect(ctx, ep, {b, 1});
      ASSERT_NE(c, nullptr);
    }  // endpoint destroyed -> connection closed
    ctx.sleep(seconds(1));
  });
  f.eng.run();
  EXPECT_TRUE(saw_closed);
}

TEST(Network, WireCountersTrackMessagesAndPorts) {
  Fixture f;
  NodeId a = f.net.add_node("a");
  NodeId b = f.net.add_node("b");

  f.eng.spawn("server", [&](sim::Context& ctx) {
    Endpoint ep(f.net, b);
    ep.listen(42);
    ep.wait(ctx);
    ep.wait(ctx);
    ep.wait(ctx);
  });
  f.eng.spawn("client", [&](sim::Context& ctx) {
    Endpoint ep(f.net, a);
    ctx.sleep(microseconds(10));
    Conn* c = f.net.connect(ctx, ep, {b, 42});
    c->send(ctx, make_payload(10));
    c->send(ctx, make_payload(20));
  });
  f.eng.run();
  EXPECT_EQ(f.net.counters().messages, 2u);
  EXPECT_EQ(f.net.counters().bytes, 30u);
  EXPECT_EQ(f.net.counters().messages_by_port.at(42), 2u);
}

TEST(Pipe, TransfersWithLocalCost) {
  sim::Engine eng;
  NetParams params;
  Pipe pipe(eng, params);
  SimTime sent_at = 0, got_at = 0;
  std::size_t got_size = 0;

  eng.spawn("app", [&](sim::Context& ctx) {
    sent_at = ctx.now();
    // Head + shared payload: the modeled cost covers the whole frame.
    pipe.app_end().send(
        ctx, PipeFrame(Buffer(200, std::byte{1}),
                       SharedBuffer(Buffer(800, std::byte{2}))));
  });
  eng.spawn("daemon", [&](sim::Context& ctx) {
    PipeFrame f = pipe.daemon_end().recv(ctx);
    got_at = ctx.now();
    got_size = f.size();
  });
  eng.run();
  EXPECT_EQ(got_size, 1000u);
  SimDuration expected = params.pipe_per_msg +
                         transfer_time(1000, params.pipe_bandwidth_bps) +
                         params.pipe_latency;
  EXPECT_EQ(got_at - sent_at, expected);
}

TEST(Pipe, NotifierIntegration) {
  sim::Engine eng;
  NetParams params;
  Pipe pipe(eng, params);
  bool got = false;

  eng.spawn("daemon", [&](sim::Context& ctx) {
    sim::Notifier n(eng);
    pipe.daemon_end().set_notifier(&n);
    while (!pipe.daemon_end().has_pending()) n.wait(ctx);
    got = pipe.daemon_end().try_recv().has_value();
  });
  eng.spawn("app", [&](sim::Context& ctx) {
    ctx.sleep(seconds(1));
    pipe.app_end().send(ctx, Buffer{std::byte{1}});
  });
  eng.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace mpiv::net
