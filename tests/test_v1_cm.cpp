// MPICH-V1 Channel Memory semantics at the protocol level: remote
// pessimistic logging, ordered cursor-addressed pulls (a restarted process
// re-reads its reception sequence from cursor 0), and deduplication of
// re-executed sends by (sender, seq).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "v1/v1_device.hpp"
#include "v2/wire.hpp"

namespace mpiv::v1 {
namespace {

struct CmFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetParams{}};
  net::NodeId cm_node = net.add_node("cm");
  net::NodeId client_node = net.add_node("client");
  ChannelMemory cm{net, {cm_node, v2::kChannelMemoryPort}};

  CmFixture() {
    eng.spawn("cm", [this](sim::Context& ctx) { cm.run(ctx); });
  }

  net::Conn* connect(sim::Context& ctx, net::Endpoint& ep) {
    return net.connect_retry(ctx, ep, {cm_node, v2::kChannelMemoryPort},
                             milliseconds(1), ctx.now() + seconds(5));
  }

  static Buffer send_msg(mpi::Rank dest, mpi::Rank sender, std::uint64_t seq,
                         std::uint8_t fill) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CmMsg::kSend));
    w.i32(dest);
    w.i32(sender);
    w.u64(seq);
    Buffer payload(8, std::byte{fill});
    w.blob(payload);
    return w.take();
  }

  static Buffer pull_msg(mpi::Rank rank, std::uint64_t cursor) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CmMsg::kPull));
    w.i32(rank);
    w.u64(cursor);
    return w.take();
  }

  /// Reads a kMsg reply: (from, first payload byte).
  static std::pair<mpi::Rank, std::uint8_t> parse_msg(const Buffer& b) {
    Reader r(b);
    EXPECT_EQ(static_cast<CmMsg>(r.u8()), CmMsg::kMsg);
    mpi::Rank from = r.i32();
    Buffer payload = r.blob();
    return {from, static_cast<std::uint8_t>(payload.at(0))};
  }
};

TEST(ChannelMemory, StoresAndServesInArrivalOrder) {
  CmFixture f;
  std::vector<std::uint8_t> got;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep);
    ASSERT_NE(c, nullptr);
    c->send(ctx, CmFixture::send_msg(5, 1, 1, 0xa1));
    c->send(ctx, CmFixture::send_msg(5, 2, 1, 0xb2));
    c->send(ctx, CmFixture::send_msg(5, 1, 2, 0xc3));
    for (std::uint64_t cur = 0; cur < 3; ++cur) {
      c->send(ctx, CmFixture::pull_msg(5, cur));
      net::NetEvent ev = ep.wait(ctx);
      got.push_back(CmFixture::parse_msg(ev.data).second);
    }
  });
  f.eng.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0xa1, 0xb2, 0xc3}));
  EXPECT_EQ(f.cm.messages_stored(), 3u);
}

TEST(ChannelMemory, CursorRereadReplaysReceptionSequence) {
  // A "restarted" V1 process re-pulls from cursor 0 and must see the same
  // sequence again — the basis of V1's uncoordinated restart.
  CmFixture f;
  std::vector<std::uint8_t> first, second;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep);
    for (int i = 0; i < 4; ++i) {
      c->send(ctx, CmFixture::send_msg(0, 1, static_cast<std::uint64_t>(i + 1),
                                       static_cast<std::uint8_t>(i)));
    }
    for (std::uint64_t cur = 0; cur < 4; ++cur) {
      c->send(ctx, CmFixture::pull_msg(0, cur));
      first.push_back(CmFixture::parse_msg(ep.wait(ctx).data).second);
    }
    // Crash + restart: a new pull stream from cursor 0.
    for (std::uint64_t cur = 0; cur < 4; ++cur) {
      c->send(ctx, CmFixture::pull_msg(0, cur));
      second.push_back(CmFixture::parse_msg(ep.wait(ctx).data).second);
    }
  });
  f.eng.run();
  EXPECT_EQ(first, second);
}

TEST(ChannelMemory, DeduplicatesReexecutedSends) {
  // A re-executing sender re-sends (sender, seq) pairs it already sent;
  // the CM must absorb them so receivers never see duplicates.
  CmFixture f;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep);
    c->send(ctx, CmFixture::send_msg(0, 3, 1, 0x11));
    c->send(ctx, CmFixture::send_msg(0, 3, 2, 0x22));
    // Re-execution: same seqs again (possibly different arrival order).
    c->send(ctx, CmFixture::send_msg(0, 3, 2, 0x22));
    c->send(ctx, CmFixture::send_msg(0, 3, 1, 0x11));
    ctx.sleep(milliseconds(1));
  });
  f.eng.run();
  EXPECT_EQ(f.cm.messages_stored(), 2u);
}

TEST(ChannelMemory, ProbeReflectsCursorPosition) {
  CmFixture f;
  bool before = true, at_end = true;
  f.eng.spawn("client", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep);
    c->send(ctx, CmFixture::send_msg(9, 0, 1, 0x1));
    auto probe = [&](std::uint64_t cursor) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(CmMsg::kProbe));
      w.i32(9);
      w.u64(cursor);
      c->send(ctx, w.take());
      net::NetEvent ev = ep.wait(ctx);
      Reader r(ev.data);
      EXPECT_EQ(static_cast<CmMsg>(r.u8()), CmMsg::kProbeR);
      return r.boolean();
    };
    before = probe(0);
    at_end = probe(1);
  });
  f.eng.run();
  EXPECT_TRUE(before);
  EXPECT_FALSE(at_end);
}

TEST(ChannelMemory, PendingPullSatisfiedOnArrival) {
  // Pull posted before the message exists: served the moment it arrives.
  CmFixture f;
  SimTime got_at = -1;
  f.eng.spawn("receiver", [&](sim::Context& ctx) {
    net::Endpoint ep(f.net, f.client_node);
    net::Conn* c = f.connect(ctx, ep);
    c->send(ctx, CmFixture::pull_msg(4, 0));
    net::NetEvent ev = ep.wait(ctx);
    CmFixture::parse_msg(ev.data);
    got_at = ctx.now();
  });
  net::NodeId sender_node = f.net.add_node("sender");
  f.eng.spawn("sender", [&](sim::Context& ctx) {
    ctx.sleep(milliseconds(10));
    net::Endpoint ep(f.net, sender_node);
    net::Conn* c = f.connect(ctx, ep);
    c->send(ctx, CmFixture::send_msg(4, 1, 1, 0x7));
  });
  f.eng.run();
  EXPECT_GE(got_at, milliseconds(10));
}

}  // namespace
}  // namespace mpiv::v1
