// Unit tests for the causal trace recorder (src/trace/): ring semantics,
// JSONL round-trip fidelity, Chrome-trace well-formedness, auditor
// degradation on incomplete traces, and the common counter registry.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "trace/audit.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"
#include "v2/daemon.hpp"

namespace mpiv {
namespace {

using trace::Fields;
using trace::Kind;
using trace::Role;
using trace::TraceBook;
using trace::TraceConfig;
using trace::TraceEvent;
using trace::TraceRecorder;

TraceConfig small_config(std::size_t capacity) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = capacity;
  return cfg;
}

// With -DMPIV_TRACE=OFF every record() folds to a no-op; tests that assert
// on live-recorded streams only make sense compiled in.
#define REQUIRE_TRACE_COMPILED()                                          \
  if (!trace::kCompiled)                                                  \
  GTEST_SKIP() << "tracing compiled out (-DMPIV_TRACE=OFF)"

// ------------------------------------------------------------ recorder/book

TEST(TraceRecorder, RecordsIdentityTimeAndFields) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(16));
  book.set_manual_time(1234);
  TraceRecorder* rec = book.recorder(Role::kDaemon, 3);
  rec->set_incarnation(2);
  rec->record(Kind::kDeliver,
              {.peer = 1, .c1 = 7, .c2 = 8, .c3 = -9, .n = 4, .flag = true});
  auto events = rec->events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.t, 1234);
  EXPECT_EQ(e.role, Role::kDaemon);
  EXPECT_EQ(e.id, 3);
  EXPECT_EQ(e.incarnation, 2);
  EXPECT_EQ(e.kind, Kind::kDeliver);
  EXPECT_EQ(e.peer, 1);
  EXPECT_EQ(e.c1, 7);
  EXPECT_EQ(e.c2, 8);
  EXPECT_EQ(e.c3, -9);
  EXPECT_EQ(e.n, 4u);
  EXPECT_TRUE(e.flag);
  EXPECT_EQ(rec->dropped(), 0u);
  EXPECT_EQ(rec->recorded(), 1u);
}

TEST(TraceRecorder, RecordersAreStablePerRoleAndId) {
  TraceBook book(small_config(16));
  TraceRecorder* a = book.recorder(Role::kDaemon, 0);
  TraceRecorder* b = book.recorder(Role::kEventLogger, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, book.recorder(Role::kDaemon, 0));
}

TEST(TraceBook, MergedIsOrderedByTimeThenSequence) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(16));
  TraceRecorder* r0 = book.recorder(Role::kDaemon, 0);
  TraceRecorder* r1 = book.recorder(Role::kDaemon, 1);
  book.set_manual_time(5);
  r1->record(Kind::kSendIssued, {.peer = 0, .c1 = 1});
  book.set_manual_time(3);
  r0->record(Kind::kSendIssued, {.peer = 1, .c1 = 1});
  book.set_manual_time(5);
  r0->record(Kind::kDeliver, {.peer = 1, .c1 = 1, .c2 = 1});
  auto merged = book.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].t, 3);
  EXPECT_EQ(merged[1].t, 5);
  EXPECT_EQ(merged[2].t, 5);
  EXPECT_LT(merged[1].seq, merged[2].seq);  // same t: record order wins
}

TEST(TraceRecorder, RingOverflowDropsOldestAndCounts) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(4));
  TraceRecorder* rec = book.recorder(Role::kDaemon, 0);
  for (int i = 0; i < 10; ++i) {
    rec->record(Kind::kSendIssued, {.peer = 1, .c1 = i});
  }
  EXPECT_EQ(rec->recorded(), 10u);
  EXPECT_EQ(rec->dropped(), 6u);
  auto events = rec->events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the survivors are the newest four.
  EXPECT_EQ(events.front().c1, 6);
  EXPECT_EQ(events.back().c1, 9);
  EXPECT_EQ(book.total_dropped(), 6u);
  EXPECT_EQ(book.total_recorded(), 10u);
}

TEST(TraceNames, EveryKindAndRoleHasAName) {
  for (int k = 0; k <= static_cast<int>(Kind::kAppCkptImage); ++k) {
    EXPECT_NE(trace::kind_name(static_cast<Kind>(k)), "unknown")
        << "kind " << k;
  }
  for (int r = 0; r <= static_cast<int>(Role::kRuntime); ++r) {
    EXPECT_NE(trace::role_name(static_cast<Role>(r)), "unknown")
        << "role " << r;
  }
}

// ------------------------------------------------------------ JSONL sink

std::vector<TraceEvent> sample_events() {
  TraceBook book(small_config(64));
  book.set_manual_time(10);
  TraceRecorder* d = book.recorder(Role::kDaemon, 0);
  d->set_incarnation(1);
  d->record(Kind::kSendWire,
            {.peer = 2, .c1 = -3, .c2 = 4, .c3 = 5, .n = 6, .flag = true});
  book.set_manual_time(20);
  book.recorder(Role::kEventLogger, 1)->record(
      Kind::kElSrvAppend, {.peer = 0, .c1 = 1, .c2 = 2, .c3 = 3});
  book.set_manual_time(30);
  book.recorder(Role::kScheduler, 0)->record(Kind::kCkptOrder, {.peer = 3});
  book.recorder(Role::kCkptServer, 2)->record(Kind::kCrash);
  book.recorder(Role::kRuntime, 3)->record(Kind::kAppCkptImage,
                                           {.n = 1u << 20});
  return book.merged();
}

TEST(JsonlSink, RoundTripPreservesEveryField) {
  std::vector<TraceEvent> events = sample_events();
  std::ostringstream out;
  trace::write_jsonl(out, events, 7);

  std::istringstream in(out.str());
  trace::LoadedTrace loaded;
  std::string error;
  ASSERT_TRUE(trace::read_jsonl(in, loaded, &error)) << error;
  EXPECT_EQ(loaded.dropped, 7u);
  ASSERT_EQ(loaded.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded.events[i], events[i]) << "event " << i;
  }
}

TEST(JsonlSink, RejectsMalformedLines) {
  std::istringstream in("{\"t\":1,\"seq\":0,\"role\":\"daemon\"\nnot json\n");
  trace::LoadedTrace loaded;
  std::string error;
  EXPECT_FALSE(trace::read_jsonl(in, loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonlSink, RejectsUnknownKind) {
  std::istringstream in(
      "{\"t\":1,\"seq\":0,\"role\":\"daemon\",\"id\":0,\"inc\":0,"
      "\"kind\":\"no_such_kind\",\"peer\":0,\"c1\":0,\"c2\":0,\"c3\":0,"
      "\"n\":0,\"flag\":false}\n");
  trace::LoadedTrace loaded;
  EXPECT_FALSE(trace::read_jsonl(in, loaded));
}

TEST(JsonlSink, HeaderDroppedCountsAccumulateAcrossFiles) {
  std::ostringstream a;
  trace::write_jsonl(a, {}, 3);
  std::ostringstream b;
  trace::write_jsonl(b, {}, 4);
  trace::LoadedTrace loaded;
  std::istringstream ia(a.str());
  ASSERT_TRUE(trace::read_jsonl(ia, loaded));
  std::istringstream ib(b.str());
  ASSERT_TRUE(trace::read_jsonl(ib, loaded));
  EXPECT_EQ(loaded.dropped, 7u);
}

// ------------------------------------------------------------ Chrome sink

TEST(ChromeSink, EmitsBalancedJsonWithSlicesAndInstants) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(64));
  TraceRecorder* d = book.recorder(Role::kDaemon, 0);
  book.set_manual_time(1000);
  d->record(Kind::kStallStart, {.peer = 1, .c1 = 5, .c2 = 0, .n = 3});
  book.set_manual_time(4000);
  d->record(Kind::kStallEnd, {.peer = 1, .c1 = 5});
  book.set_manual_time(5000);
  d->record(Kind::kCrash);
  book.set_manual_time(9000);
  d->record(Kind::kSpawn, {.flag = true});

  std::ostringstream out;
  trace::write_chrome_trace(out, book.merged());
  std::string s = out.str();

  // Structurally balanced JSON (the format has no string escapes).
  int depth = 0;
  int min_depth = 0;
  for (char c : s) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(min_depth, 0);
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  // The stall and the outage became duration slices with the right length.
  EXPECT_NE(s.find("\"name\":\"WAITLOGGED dest=1 clock=5\""),
            std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"outage\""), std::string::npos);
  EXPECT_NE(s.find("\"dur\":3"), std::string::npos);  // 3 us stall
  EXPECT_NE(s.find("\"dur\":4"), std::string::npos);  // 4 us outage
  // Every event also appears as an instant with args.
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"stall_start\""), std::string::npos);
  // Metadata names the daemon track.
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
}

// ------------------------------------------------------------ audit degrade

TEST(Audit, EmptyTraceIsInconclusiveNeverPass) {
  trace::AuditReport rep = trace::audit({}, 0);
  EXPECT_FALSE(rep.pass);
  EXPECT_TRUE(rep.inconclusive);
  EXPECT_NE(rep.summary().find("INCONCLUSIVE"), std::string::npos);
}

TEST(Audit, DroppedEventsAreInconclusiveNeverPass) {
  REQUIRE_TRACE_COMPILED();
  // A ring that wrapped: the surviving suffix looks perfectly legal, but
  // the verdict must degrade rather than claim the invariants hold.
  TraceBook book(small_config(2));
  TraceRecorder* rec = book.recorder(Role::kDaemon, 0);
  for (int i = 1; i <= 8; ++i) {
    book.set_manual_time(i * 100);
    rec->record(Kind::kDeliver, {.peer = 1, .c1 = i, .c2 = i});
  }
  ASSERT_GT(book.total_dropped(), 0u);
  trace::AuditReport rep = trace::audit(book);
  EXPECT_FALSE(rep.pass);
  EXPECT_TRUE(rep.inconclusive);
  EXPECT_EQ(rep.dropped, book.total_dropped());
}

TEST(Audit, CleanSyntheticExchangePasses) {
  REQUIRE_TRACE_COMPILED();
  // Rank 0 delivers two messages from rank 1 after their events are
  // quorum-acked; rank 1's sends leave fully logged.
  TraceBook book(small_config(64));
  TraceRecorder* d0 = book.recorder(Role::kDaemon, 0);
  TraceRecorder* d1 = book.recorder(Role::kDaemon, 1);
  book.set_manual_time(100);
  d1->record(Kind::kSendIssued, {.peer = 0, .c1 = 1, .n = 0});
  d1->record(Kind::kSendWire, {.peer = 0, .c1 = 1, .c2 = 0, .n = 0});
  book.set_manual_time(200);
  d0->record(Kind::kDeliver, {.peer = 1, .c1 = 1, .c2 = 1});
  d0->record(Kind::kElAppend, {.peer = 1, .c1 = 1, .c2 = 1, .c3 = 0});
  book.set_manual_time(300);
  d0->record(Kind::kElQuorum, {.n = 1});
  d0->record(Kind::kSendIssued, {.peer = 1, .c1 = 1, .n = 1});
  d0->record(Kind::kSendWire, {.peer = 1, .c1 = 1, .c2 = 1, .n = 1});
  book.set_manual_time(400);
  d1->record(Kind::kDeliver, {.peer = 0, .c1 = 1, .c2 = 1});
  trace::AuditReport rep = trace::audit(book);
  EXPECT_TRUE(rep.pass) << rep.summary();
  EXPECT_EQ(rep.events_checked, 8u);
}

TEST(Audit, SyntheticOrphanIsFlagged) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(64));
  TraceRecorder* d = book.recorder(Role::kDaemon, 0);
  book.set_manual_time(100);
  d->record(Kind::kSendWire, {.peer = 1, .c1 = 1, .c2 = 2, .n = 5});
  trace::AuditReport rep = trace::audit(book);
  EXPECT_FALSE(rep.pass);
  ASSERT_TRUE(rep.has(trace::Invariant::kNoOrphan));
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_FALSE(rep.violations[0].evidence.empty());
  EXPECT_NE(rep.summary().find("no-orphan"), std::string::npos);
}

TEST(Audit, SyntheticDoubleDeliveryIsFlagged) {
  REQUIRE_TRACE_COMPILED();
  TraceBook book(small_config(64));
  TraceRecorder* d = book.recorder(Role::kDaemon, 0);
  book.set_manual_time(100);
  d->record(Kind::kDeliver, {.peer = 1, .c1 = 1, .c2 = 1});
  book.set_manual_time(200);
  d->record(Kind::kDeliver, {.peer = 1, .c1 = 1, .c2 = 2});
  trace::AuditReport rep = trace::audit(book);
  EXPECT_FALSE(rep.pass);
  EXPECT_TRUE(rep.has(trace::Invariant::kAtMostOnce));
}

// ------------------------------------------------------------ counters

TEST(CounterRegistry, SumAndMaxMerge) {
  CounterRegistry a;
  a.add("msgs", 10);
  a.add("msgs", 5);
  a.add("lag", 3, MergeKind::kMax);
  CounterRegistry b;
  b.add("msgs", 7);
  b.add("lag", 9, MergeKind::kMax);
  b.add("extra", 1);
  a.merge(b);
  EXPECT_EQ(a.get("msgs"), 22);
  EXPECT_EQ(a.get("lag"), 9);
  EXPECT_EQ(a.get("extra"), 1);
  EXPECT_EQ(a.get("absent"), 0);
  EXPECT_TRUE(a.contains("msgs"));
  EXPECT_FALSE(a.contains("absent"));
}

TEST(CounterRegistry, JsonObjectKeepsInsertionOrder) {
  CounterRegistry reg;
  reg.add("b", 2);
  reg.add("a", 1);
  reg.add("b", 1);
  EXPECT_EQ(reg.json_object(), "{\"b\":3,\"a\":1}");
  EXPECT_EQ(CounterRegistry{}.json_object(), "{}");
}

TEST(DaemonStatsRegistry, RoundTripsAndMergesLikeCollect) {
  v2::DaemonStats s1;
  s1.sent_msgs = 11;
  s1.events_logged = 5;
  s1.el_replica_max_lag = {4, 9};
  v2::DaemonStats s2;
  s2.sent_msgs = 7;
  s2.ckpt_fetch_ns = 1234;
  s2.el_replica_max_lag = {6, 2, 1};

  CounterRegistry merged = s1.registry();
  merged.merge(s2.registry());
  v2::DaemonStats back = v2::DaemonStats::from_registry(merged);
  EXPECT_EQ(back.sent_msgs, 18u);
  EXPECT_EQ(back.events_logged, 5u);
  EXPECT_EQ(back.ckpt_fetch_ns, 1234u);
  ASSERT_EQ(back.el_replica_max_lag.size(), 3u);
  EXPECT_EQ(back.el_replica_max_lag[0], 6u);  // max-merge, not sum
  EXPECT_EQ(back.el_replica_max_lag[1], 9u);
  EXPECT_EQ(back.el_replica_max_lag[2], 1u);

  v2::DaemonStats zero = v2::DaemonStats::from_registry(CounterRegistry{});
  EXPECT_EQ(zero.sent_msgs, 0u);
  EXPECT_TRUE(zero.el_replica_max_lag.empty());
}

}  // namespace
}  // namespace mpiv
