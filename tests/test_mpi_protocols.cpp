// Protocol-layer and ADI internals: envelope framing, the short / eager /
// rendezvous switch points, rendezvous interleaving, request lifecycle,
// unexpected-queue serialization, and profiler attribution rules.
#include <gtest/gtest.h>

#include "mpi/envelope.hpp"
#include "mpi/profiler.hpp"
#include "mpi_test_util.hpp"

namespace mpiv {
namespace {

using testutil::run_p4_job;

TEST(Envelope, RoundTripAllFields) {
  mpi::Envelope e;
  e.kind = mpi::PacketKind::kRndvRts;
  e.src = 13;
  e.tag = -1;
  e.payload_size = 0xffffffff;
  e.seq = 0x123456789abcull;
  Writer w;
  mpi::write_envelope(w, e);
  Buffer b = w.take();
  EXPECT_EQ(b.size(), mpi::kEnvelopeBytes);
  Reader r(b);
  mpi::Envelope out = mpi::read_envelope(r);
  EXPECT_EQ(out.kind, mpi::PacketKind::kRndvRts);
  EXPECT_EQ(out.src, 13);
  EXPECT_EQ(out.tag, -1);
  EXPECT_EQ(out.payload_size, 0xffffffffu);
  EXPECT_EQ(out.seq, 0x123456789abcull);
}

TEST(Envelope, MakeBlockPrependsHeader) {
  mpi::Envelope e;
  e.payload_size = 3;
  Buffer payload{std::byte{1}, std::byte{2}, std::byte{3}};
  Buffer block = mpi::make_block(e, payload);
  EXPECT_EQ(block.size(), mpi::kEnvelopeBytes + 3);
  EXPECT_EQ(block[mpi::kEnvelopeBytes], std::byte{1});
}

// The wire footprint changes at the protocol switch points: short and
// eager ship one unsolicited block; rendezvous adds an RTS/CTS handshake.
TEST(Protocols, RendezvousAddsHandshakeMessages) {
  std::map<std::size_t, std::uint64_t> msgs;
  for (std::size_t size : {std::size_t{1024}, std::size_t{200 * 1024}}) {
    auto res = run_p4_job(2, [size](sim::Context& ctx, mpi::Comm& comm) {
      Buffer buf(size);
      if (comm.rank() == 0) {
        comm.send(ctx, buf, 1, 0);
      } else {
        comm.recv(ctx, buf, 0, 0);
      }
    });
    ASSERT_TRUE(res.all_finished);
    msgs[size] = res.net_messages;
  }
  // 1 KB: hello x2 + 1 data block. 200 KB (above P4's 128 KB eager limit):
  // hello x2 + RTS + CTS + data.
  EXPECT_EQ(msgs[200 * 1024], msgs[1024] + 2);
}

TEST(Protocols, RendezvousCompletesOnlyInWait) {
  // For payloads above the eager threshold, Isend returns after the RTS;
  // the payload moves during Wait (where the CTS is serviced).
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    const std::size_t kSize = 512 * 1024;
    if (comm.rank() == 0) {
      Buffer buf(kSize);
      SimTime t0 = ctx.now();
      mpi::Request rq = comm.isend(ctx, buf, 1, 0);
      SimDuration isend_time = ctx.now() - t0;
      comm.wait(ctx, rq);
      SimDuration total = ctx.now() - t0;
      // The RTS is a few dozen bytes; the payload is half a megabyte.
      EXPECT_LT(isend_time, total / 10);
    } else {
      ctx.sleep(milliseconds(1));
      Buffer buf(kSize);
      comm.recv(ctx, buf, 0, 0);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(Protocols, ManyConcurrentRendezvousInterleave) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    const int kN = 6;
    const std::size_t kSize = 300 * 1024;
    int peer = 1 - comm.rank();
    std::vector<Buffer> sb(kN), rb(kN);
    std::vector<mpi::Request> reqs;
    for (int i = 0; i < kN; ++i) {
      sb[static_cast<std::size_t>(i)] =
          Buffer(kSize, std::byte{static_cast<unsigned char>(i + 1)});
      rb[static_cast<std::size_t>(i)] = Buffer(kSize);
      reqs.push_back(comm.irecv(ctx, rb[static_cast<std::size_t>(i)], peer, i));
    }
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(comm.isend(ctx, sb[static_cast<std::size_t>(i)], peer, i));
    }
    comm.waitall(ctx, reqs);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(rb[static_cast<std::size_t>(i)][kSize - 1],
                std::byte{static_cast<unsigned char>(i + 1)});
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(Protocols, EagerAndRendezvousSameTagStayOrdered) {
  // A small (eager) and a large (rendezvous) message with the same tag must
  // match posted receives in send order.
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      Buffer small(64, std::byte{1});
      Buffer large(300 * 1024, std::byte{2});
      mpi::Request a = comm.isend(ctx, small, 1, 5);
      mpi::Request b = comm.isend(ctx, large, 1, 5);
      comm.wait(ctx, a);
      comm.wait(ctx, b);
    } else {
      Buffer first(300 * 1024);
      Buffer second(300 * 1024);
      mpi::Status st1, st2;
      comm.recv(ctx, first, 0, 5, &st1);
      comm.recv(ctx, second, 0, 5, &st2);
      EXPECT_EQ(st1.count, 64u);
      EXPECT_EQ(first[0], std::byte{1});
      EXPECT_EQ(st2.count, 300u * 1024);
      EXPECT_EQ(second[0], std::byte{2});
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(Requests, WaitRecyclesAndInvalidatesHandle) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(ctx, 7, 1, 0);
    } else {
      int v = 0;
      mpi::Request r = comm.irecv(ctx, std::span<int>(&v, 1), 0, 0);
      EXPECT_TRUE(r.valid());
      comm.wait(ctx, r);
      EXPECT_FALSE(r.valid());
      EXPECT_EQ(v, 7);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(Requests, WaitallToleratesAlreadyCompletedEntries) {
  auto res = run_p4_job(2, [](sim::Context& ctx, mpi::Comm& comm) {
    int peer = 1 - comm.rank();
    std::vector<int> in(4), out{1, 2, 3, 4};
    std::vector<mpi::Request> reqs;
    reqs.push_back(comm.irecv<int>(ctx, in, peer, 0));
    reqs.push_back(comm.isend<int>(ctx, out, peer, 0));
    // Complete one by hand, then waitall over the mixed set.
    comm.wait(ctx, reqs[1]);
    comm.waitall(ctx, reqs);
    EXPECT_EQ(in[3], 4);
  });
  EXPECT_TRUE(res.all_finished);
}

TEST(Profiler, OutermostAttributionOnly) {
  mpi::Profiler p;
  {
    mpi::Profiler::Scope outer(p, mpi::MpiFunc::kAllreduce, 0);
    {
      mpi::Profiler::Scope inner(p, mpi::MpiFunc::kIsend, 10);
      inner.finish(20);
    }
    outer.finish(100);
  }
  EXPECT_EQ(p.total(mpi::MpiFunc::kAllreduce), 100);
  EXPECT_EQ(p.total(mpi::MpiFunc::kIsend), 0);
  EXPECT_EQ(p.entry(mpi::MpiFunc::kAllreduce).calls, 1u);
  EXPECT_EQ(p.total_mpi_time(), 100);
}

TEST(Profiler, SequentialCallsAccumulate) {
  mpi::Profiler p;
  for (int i = 0; i < 3; ++i) {
    mpi::Profiler::Scope s(p, mpi::MpiFunc::kSend, i * 100);
    s.finish(i * 100 + 10);
  }
  EXPECT_EQ(p.total(mpi::MpiFunc::kSend), 30);
  EXPECT_EQ(p.entry(mpi::MpiFunc::kSend).calls, 3u);
}

TEST(Profiler, NamesCoverAllFunctions) {
  for (int f = 0; f < static_cast<int>(mpi::MpiFunc::kCount); ++f) {
    EXPECT_NE(mpi::mpi_func_name(static_cast<mpi::MpiFunc>(f)), "?");
  }
}

}  // namespace
}  // namespace mpiv
