// Tests for the deployment-shape extensions: spare-node restarts, multiple
// event loggers, and tolerance of checkpoint-server failure (§4.3: only
// the dispatcher/event-logger node must be reliable).
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "apps/token_ring.hpp"
#include "runtime/job.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

std::vector<Buffer> outputs(const JobResult& r) {
  std::vector<Buffer> out;
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

runtime::AppFactory ring(int rounds, std::size_t bytes, SimDuration compute) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

TEST(SpareNodes, RankRestartsOnDifferentNode) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.spare_nodes = 2;
  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {1});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(SpareNodes, RepeatedMigrationsAcrossSpares) {
  auto factory = ring(50, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.spare_nodes = 1;
  faults::FaultPlan plan;
  plan.events.push_back({clean.makespan / 4, 1});
  plan.events.push_back({clean.makespan / 2, 2});
  plan.events.push_back({clean.makespan * 3 / 4, 1});
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 2);  // a kill can land on an already-down node
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(SpareNodes, MigrationWithCheckpointRestore) {
  auto factory = apps::kernel_factory("mg", apps::NasClass::kTest);
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(2);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.spare_nodes = 2;
  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {0, 2});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(MultipleEventLoggers, EventsPartitionAcrossLoggers) {
  auto factory = ring(20, 256, microseconds(200));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.n_event_loggers = 2;
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  // All deliveries logged, across both loggers in aggregate.
  EXPECT_EQ(res.el_events_stored, res.daemon_stats.events_logged);
}

TEST(MultipleEventLoggers, RecoveryWorksWithTwoLoggers) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 5;
  cfg.device = DeviceKind::kV2;
  cfg.n_event_loggers = 2;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan =
      faults::FaultPlan::simultaneous(clean.makespan / 2, {1, 3});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(UnreliableCkptServer, JobSurvivesCkptServerDeath) {
  auto factory = ring(50, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(5);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // The checkpoint server dies a third of the way in; the job must still
  // finish (checkpointing just stops).
  cfg.ckpt_server_fails_at = clean.makespan / 3;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(UnreliableCkptServer, PermanentDeathBeforeFirstCheckpoint) {
  // The CS dies for good before any checkpoint completed: no event-log
  // pruning or sender-log GC has happened, so a later computing-node crash
  // restarts from scratch and replays everything — "at worst".
  auto factory = ring(50, 512, microseconds(500));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(30);
  cfg.ckpt_period = milliseconds(5);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.ckpt_server_fails_at = milliseconds(10);  // before the first order
  cfg.ckpt_server_recovers = false;
  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {2});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_EQ(res.checkpoints_stored, 0u);
  EXPECT_EQ(outputs(res), outputs(clean));
}

TEST(UnreliableCkptServer, RebootWithDurableImages) {
  // The CS crashes mid-run and reboots with its stored images (stable
  // storage); a rank killed afterwards restores from a pre-crash image.
  auto factory = ring(120, 512, milliseconds(1));
  JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(5);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);
  ASSERT_GT(clean.checkpoints_stored, 0u);

  cfg.ckpt_server_fails_at = clean.makespan / 3;
  cfg.ckpt_server_recovers = true;
  // Fault lands after the reboot (restart_delay) but well inside the run.
  cfg.fault_plan = faults::FaultPlan::simultaneous(
      clean.makespan * 2 / 3, {2});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  EXPECT_EQ(outputs(res), outputs(clean));
}

}  // namespace
}  // namespace mpiv
