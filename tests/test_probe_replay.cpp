// Probe-count replay: the fourth field of the reception event.
//
// An application whose control flow depends on Iprobe outcomes is
// nondeterministic in exactly the way §4.5 describes ("the number of
// probes made since the last reception influences the next reception").
// The daemon counts failed probes per event and forces the same sequence
// of probe answers during replay — so a crashed polling application
// re-executes the same interleaving of work and receptions.
#include <gtest/gtest.h>

#include "runtime/job.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;

/// Rank 0 polls with Iprobe, doing a unit of local work per failed probe;
/// its fingerprint interleaves work units and received values, so it
/// depends on the exact probe-outcome sequence. Rank 1 sends values with
/// data-dependent pacing.
class PollingApp final : public runtime::App {
 public:
  explicit PollingApp(int messages) : messages_(messages) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() == 0) {
      int received = 0;
      while (received < messages_) {
        if (comm.iprobe(ctx, 1, 0).has_value()) {
          std::uint64_t v = comm.recv_value<std::uint64_t>(ctx, 1, 0);
          fp_ = fp_ * 31 + v;
          ++received;
          // Acknowledge so the sender's pacing depends on us.
          comm.send_value<std::uint64_t>(ctx, fp_, 1, 1);
        } else {
          fp_ = fp_ * 7 + 1;  // a unit of local work per failed probe
          ctx.compute(microseconds(50));
        }
      }
    } else if (comm.rank() == 1) {
      std::uint64_t state = 12345;
      for (int i = 0; i < messages_; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        ctx.compute(microseconds(100 + (state % 400)));
        comm.send_value<std::uint64_t>(ctx, state, 0, 0);
        std::uint64_t ack = comm.recv_value<std::uint64_t>(ctx, 0, 1);
        fp_ = fp_ * 31 + ack;
      }
    }
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(fp_);
    return w.take();
  }

 private:
  int messages_;
  std::uint64_t fp_ = 0;
};

runtime::AppFactory polling(int messages) {
  return [messages](mpi::Rank, mpi::Rank) {
    return std::make_unique<PollingApp>(messages);
  };
}

// NOTE on the contract: probe outcomes *after* a rank's last logged
// reception are nondeterministic events the crash erased before they could
// be bundled into a reception event — the protocol's guarantee is
// equivalence to *some* fault-free execution, so a poller's local
// fingerprint may legitimately differ from one particular clean run.
// What must hold: completion (no duplicate/lost message may wedge the
// pacing loop), replay determinism, and consistency of everything the
// pre-crash execution externalized (covered by the sends that follow
// logged receptions — see the reporter variant below).

TEST(ProbeReplay, PollerKilledMidRunCompletesDeterministically) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, polling(40));
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {0});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, polling(40));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  JobResult res2 = run_job(cfg, polling(40));
  ASSERT_TRUE(res2.success);
  EXPECT_EQ(res2.ranks[0].output, res.ranks[0].output);
  EXPECT_EQ(res2.ranks[1].output, res.ranks[1].output);
}

TEST(ProbeReplay, SenderKilledMidRun) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, polling(40));
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 3, {1});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, polling(40));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
  // Ack *contents* incorporate the poller's free post-log probe counts, so
  // neither side's fingerprint is pinned to the clean run; determinism
  // across identical plans is the testable contract.
  JobResult res2 = run_job(cfg, polling(40));
  ASSERT_TRUE(res2.success);
  EXPECT_EQ(res2.ranks[0].output, res.ranks[0].output);
  EXPECT_EQ(res2.ranks[1].output, res.ranks[1].output);
}

/// Harder variant: every *failed* probe is externalized as a report
/// message. The bundled probe count of the next reception event is then
/// load-bearing for send-identifier alignment — if replay reconstructed a
/// different number of failed probes before a logged reception, the
/// re-executed report sends would shift clocks, duplicate-suppression
/// would misfire and the consumer would hang or miscount.
class ReportingPoller final : public runtime::App {
 public:
  explicit ReportingPoller(int messages) : messages_(messages) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() == 0) {
      int received = 0;
      while (received < messages_) {
        if (comm.iprobe(ctx, 1, 0).has_value()) {
          std::uint64_t v = comm.recv_value<std::uint64_t>(ctx, 1, 0);
          fp_ = fp_ * 31 + v;
          ++received;
          comm.send_value<std::uint64_t>(ctx, fp_, 1, 1);  // ack
        } else {
          // Externalize the failed probe.
          comm.send_value<std::uint64_t>(ctx, ++idles_, 1, 2);
          ctx.compute(microseconds(80));
        }
      }
      comm.send_value<std::uint64_t>(ctx, ~0ull, 1, 2);  // stop marker
    } else if (comm.rank() == 1) {
      std::uint64_t state = 999;
      int sent = 0;
      bool stop = false;
      // Kick off the exchange with the first value.
      comm.send_value<std::uint64_t>(ctx, state, 0, 0);
      ++sent;
      while (sent < messages_ || !stop) {
        mpi::Status st;
        std::uint64_t v = 0;
        comm.recv(ctx, std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)),
                  0, mpi::kAnyTag, &st);
        if (st.tag == 1) {
          fp_ = fp_ * 31 + v;  // ack: fold and send the next value
          if (sent < messages_) {
            state = state * 2862933555777941757ull + 3037000493ull;
            comm.send_value<std::uint64_t>(ctx, state, 0, 0);
            ++sent;
          }
        } else if (v == ~0ull) {
          stop = true;
        } else {
          reports_ += 1;  // idle report
        }
      }
    }
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(fp_);
    w.u64(reports_);
    return w.take();
  }

 private:
  int messages_;
  std::uint64_t fp_ = 0;
  std::uint64_t idles_ = 0;
  std::uint64_t reports_ = 0;
};

TEST(ProbeReplay, BothKilledConcurrently) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, polling(30));
  ASSERT_TRUE(clean.success);

  cfg.fault_plan =
      faults::FaultPlan::simultaneous(clean.makespan / 2, {0, 1});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, polling(30));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 2);
  JobResult res2 = run_job(cfg, polling(30));
  ASSERT_TRUE(res2.success);
  EXPECT_EQ(res2.ranks[0].output, res.ranks[0].output);
  EXPECT_EQ(res2.ranks[1].output, res.ranks[1].output);
}

runtime::AppFactory reporting(int messages) {
  return [messages](mpi::Rank, mpi::Rank) {
    return std::make_unique<ReportingPoller>(messages);
  };
}

TEST(ProbeReplay, ExternalizedProbesSurvivePollerKill) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, reporting(25));
  ASSERT_TRUE(clean.success);

  for (int phase = 1; phase <= 3; ++phase) {
    JobConfig f = cfg;
    f.fault_plan = faults::FaultPlan::simultaneous(
        clean.makespan * phase / 4, {0});
    f.time_limit = seconds(600);
    JobResult res = run_job(f, reporting(25));
    // Completion is the load-bearing assertion: a probe-count replay bug
    // shifts the report-send clocks and wedges or corrupts the exchange.
    ASSERT_TRUE(res.success) << "phase " << phase;
    EXPECT_GE(res.restarts, 1);
  }
}

TEST(ProbeReplay, ExternalizedProbesSurviveResponderKill) {
  JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = DeviceKind::kV2;
  JobResult clean = run_job(cfg, reporting(25));
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {1});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, reporting(25));
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 1);
}

}  // namespace
}  // namespace mpiv
