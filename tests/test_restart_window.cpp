// Regression test for the restart accept-window: a ResendDone marker from
// a peer's *new* incarnation merges into the watermark and must not clear
// window entries above it. If it did, a straggler message accepted from the
// previous incarnation would be re-delivered when the new incarnation
// re-executes the same send — a duplicate delivery.
//
// The scenario is driven against a real daemon with a scripted peer:
//   1. daemon rank 1 restarts (incarnation 1) and issues Restart1;
//   2. peer rank 0 (incarnation 0) sends clock 5, then dies mid-pass —
//      the message is accepted into the out-of-order window;
//   3. rank 0's next incarnation answers the re-issued Restart1 with an
//      empty resend pass and ResendDone marker 0;
//   4. the re-executed send of clock 5 arrives and must be dropped as a
//      window duplicate, while the stashed copy is delivered exactly once.
#include <gtest/gtest.h>

#include <memory>

#include "apps/token_ring.hpp"
#include "faults/plan.hpp"
#include "net/network.hpp"
#include "net/pipe.hpp"
#include "runtime/job.hpp"
#include "services/event_logger.hpp"
#include "sim/engine.hpp"
#include "trace/audit.hpp"
#include "v2/daemon.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

Buffer peer_hello(mpi::Rank rank, std::int32_t incarnation) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(v2::PeerMsg::kHello));
  w.i32(rank);
  w.i32(incarnation);
  return w.take();
}

Buffer peer_ctl(v2::PeerMsg type, v2::Clock clock) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.i64(clock);
  return w.take();
}

/// A whole MsgRecord in one kMsgPart frame (last = true).
Buffer peer_record(v2::Clock clock, const Buffer& payload) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(v2::PeerMsg::kMsgPart));
  w.boolean(true);
  w.i64(clock);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  return w.take();
}

/// Blocks until a control frame of `want` arrives on the endpoint.
void await_peer_msg(sim::Context& ctx, net::Endpoint& ep, v2::PeerMsg want) {
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    if (ev.type != net::NetEvent::Type::kData) continue;
    Reader r(ev.data);
    if (static_cast<v2::PeerMsg>(r.u8()) == want) return;
  }
}

TEST(RestartWindow, NewIncarnationMarkerKeepsWindowEntries) {
  sim::Engine eng;
  net::Network net(eng, net::NetParams{});
  net::NodeId el_node = net.add_node("el");
  net::NodeId d_node = net.add_node("daemon1");
  net::NodeId p_node = net.add_node("peer0");

  services::EventLoggerServer el(net, {el_node});
  eng.spawn("el", [&](sim::Context& ctx) { el.run(ctx); });

  net::Pipe pipe(eng, net::NetParams{});
  v2::DaemonConfig dcfg;
  dcfg.rank = 1;
  dcfg.size = 2;
  dcfg.incarnation = 1;  // restarting: Restart1 goes out on every Hello
  dcfg.node = d_node;
  dcfg.peer_addrs = {{p_node, v2::kDaemonPortBase + 0},
                     {d_node, v2::kDaemonPortBase + 1}};
  dcfg.event_loggers = {{el_node, v2::kEventLoggerPort}};
  v2::Daemon daemon(net, pipe, dcfg);
  eng.spawn("daemon", [&](sim::Context& ctx) { daemon.run(ctx); });

  Buffer payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i);
  }

  int deliveries = 0;
  bool probe_pending = true;
  eng.spawn("app", [&](sim::Context& ctx) {
    auto& ap = pipe.app_end();
    ap.send(ctx, v2::pipe_writer(v2::PipeMsg::kInit).take());
    ap.recv(ctx);  // kInitOk
    ap.send(ctx, v2::pipe_writer(v2::PipeMsg::kBrecv).take());
    ap.recv(ctx);  // kDeliver — held until the restart exchange closes
    ++deliveries;
    // Give the re-executed duplicate time to land, then probe: a leaked
    // duplicate would sit in arrivals_ and report a pending message.
    ctx.sleep(milliseconds(100));
    ap.send(ctx, v2::pipe_writer(v2::PipeMsg::kNprobe).take());
    net::PipeFrame f = ap.recv(ctx);  // kProbeR
    Reader r(f.head);
    (void)v2::read_pipe_header(r);
    probe_pending = r.boolean();
    ap.send(ctx, v2::pipe_writer(v2::PipeMsg::kFinish).take());
    ap.recv(ctx);  // kFinishOk
  });

  eng.spawn("peer", [&](sim::Context& ctx) {
    net::Endpoint ep(net, p_node);
    net::Address daddr{d_node, v2::kDaemonPortBase + 1};
    net::Conn* c = net.connect_retry(ctx, ep, daddr, milliseconds(1),
                                     ctx.now() + seconds(5));
    ASSERT_NE(c, nullptr);
    c->send(ctx, peer_hello(0, 0));
    await_peer_msg(ctx, ep, v2::PeerMsg::kRestart1);
    // Straggler from the doomed incarnation: clock 5, far above the
    // daemon's watermark (0) — it lands in the out-of-order window.
    c->send(ctx, peer_record(5, payload));
    ctx.sleep(milliseconds(5));
    c->close();  // die mid-resend-pass

    ctx.sleep(milliseconds(10));
    net::Conn* c2 = net.connect_retry(ctx, ep, daddr, milliseconds(1),
                                      ctx.now() + seconds(5));
    ASSERT_NE(c2, nullptr);
    c2->send(ctx, peer_hello(0, 1));
    await_peer_msg(ctx, ep, v2::PeerMsg::kRestart1);
    // The reborn rank 0 lost everything: empty resend pass, marker 0.
    c2->send(ctx, peer_ctl(v2::PeerMsg::kRestart2, 0));
    c2->send(ctx, peer_ctl(v2::PeerMsg::kResendDone, 0));
    ctx.sleep(milliseconds(5));
    // Re-execution reaches the same send again: same clock, same bytes.
    // The window entry above the marker must still identify it.
    c2->send(ctx, peer_record(5, payload));
  });

  eng.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_FALSE(probe_pending);
  EXPECT_GE(daemon.stats().duplicates_dropped, 1u);
  EXPECT_TRUE(daemon.finished());
}

// --------------------------------------------- overlapped-restart regressions

std::vector<Buffer> outputs(const runtime::JobResult& r) {
  std::vector<Buffer> out;
  out.reserve(r.ranks.size());
  for (const auto& rr : r.ranks) out.push_back(rr.output);
  return out;
}

runtime::AppFactory ring(int rounds, std::size_t bytes, SimDuration compute) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

void expect_audit_pass(const runtime::JobResult& res) {
  if constexpr (trace::kCompiled) {
    ASSERT_NE(res.trace, nullptr);
    trace::AuditReport audit = trace::audit(*res.trace);
    EXPECT_TRUE(audit.pass) << audit.summary();
  }
}

// A resending peer dies in the middle of answering the overlapped restart's
// Restart1 pass: the restarted rank re-issues Restart1 to the peer's next
// incarnation and the accept-window/ResendDone invariants must still hold —
// pipelined replay may already have consumed part of the first, truncated
// pass.
TEST(RecoveryFastPath, PeerCrashMidResendPass) {
  auto factory = ring(80, 4096, microseconds(200));
  runtime::JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.el_replication = 3;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(10);
  cfg.restart_delay = milliseconds(2);
  runtime::JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // Rank 1 crashes mid-run; rank 0 — the neighbor whose SAVED log feeds
  // rank 1's replay — crashes right after rank 1's restart begins, i.e.
  // while its resend pass toward rank 1 is in flight.
  faults::FaultPlan plan =
      faults::FaultPlan::simultaneous(clean.makespan / 2, {1});
  plan.merge(faults::FaultPlan::simultaneous(
      clean.makespan / 2 + milliseconds(2) + microseconds(300), {0}));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  cfg.trace.enabled = true;
  runtime::JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 2);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
  expect_audit_pass(res);
}

// Several ranks restart from scratch at the same instant (no checkpoint):
// the eager restart fan-out makes both ends of a pair dial each other, so
// the crossed connections must converge on one link (lower rank's dial
// wins) instead of closing each other's pick on every retry, and the
// duplicate Restart1 a crossed reconnect produces must not let a stale
// queued ResendDone overtake the payloads it covers — either failure
// deadlocked this exact scenario before the fix.
TEST(RecoveryFastPath, SimultaneousScratchRestartsConverge) {
  auto factory = ring(40, 2048, microseconds(200));
  runtime::JobConfig cfg;
  cfg.nprocs = 4;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.el_replication = 3;
  runtime::JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(
      static_cast<SimTime>(0.6 * clean.makespan), {0, 1, 2});
  cfg.restart_delay = milliseconds(1);
  cfg.time_limit = seconds(600);
  cfg.trace.enabled = true;
  runtime::JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  EXPECT_GE(res.restarts, 3);
  EXPECT_EQ(outputs(res), outputs(clean));
  EXPECT_TRUE(res.el_stores_consistent);
  expect_audit_pass(res);
}

}  // namespace
}  // namespace mpiv
