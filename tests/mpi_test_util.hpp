// Shared scaffolding for MPI-layer tests: runs an N-rank job over P4
// devices on a fresh simulated cluster and returns per-rank wall time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "net/network.hpp"
#include "p4/p4_device.hpp"
#include "sim/engine.hpp"

namespace mpiv::testutil {

using RankFn = std::function<void(sim::Context&, mpi::Comm&)>;

struct JobResult {
  std::vector<SimDuration> rank_time;
  SimTime makespan = 0;
  bool all_finished = false;
  std::uint64_t net_messages = 0;
};

/// Runs `fn` on `n` ranks (one simulated node each) over P4 devices.
inline JobResult run_p4_job(int n, const RankFn& fn,
                            net::NetParams params = net::NetParams{}) {
  sim::Engine eng;
  net::Network net(eng, params);
  std::vector<net::Address> directory;
  for (int i = 0; i < n; ++i) {
    net::NodeId node = net.add_node("node" + std::to_string(i));
    directory.push_back({node, p4::kPortBase + i});
  }
  JobResult result;
  result.rank_time.resize(static_cast<std::size_t>(n), -1);
  int finished = 0;
  for (int r = 0; r < n; ++r) {
    sim::Process* p = eng.spawn(
        "rank" + std::to_string(r), [&, r](sim::Context& ctx) {
          p4::P4Config cfg;
          cfg.node = directory[static_cast<std::size_t>(r)].node;
          cfg.rank = r;
          cfg.size = n;
          cfg.directory = directory;
          p4::P4Device dev(net, cfg);
          mpi::Comm comm(dev);
          comm.init(ctx);
          fn(ctx, comm);
          comm.finalize(ctx);
          result.rank_time[static_cast<std::size_t>(r)] = ctx.now();
          ++finished;
        });
    net.register_process(directory[static_cast<std::size_t>(r)].node, p);
  }
  eng.run();
  result.makespan = eng.now();
  result.all_finished = (finished == n);
  result.net_messages = net.counters().messages;
  return result;
}

}  // namespace mpiv::testutil
