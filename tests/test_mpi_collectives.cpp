#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "mpi_test_util.hpp"

namespace mpiv {
namespace {

using testutil::run_p4_job;

// Collectives are validated across a sweep of communicator sizes including
// non-powers-of-two.
class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BarrierSynchronizes) {
  const int n = GetParam();
  std::vector<SimTime> after(static_cast<std::size_t>(n));
  auto res = run_p4_job(n, [&](sim::Context& ctx, mpi::Comm& comm) {
    // Stagger arrival; everyone must leave after the last arriver.
    ctx.sleep(milliseconds(comm.rank()));
    comm.barrier(ctx);
    after[static_cast<std::size_t>(comm.rank())] = ctx.now();
  });
  EXPECT_TRUE(res.all_finished);
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], milliseconds(n - 1));
  }
}

TEST_P(Collectives, BcastFromEachRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; root += (n > 4 ? 3 : 1)) {
    auto res = run_p4_job(n, [root](sim::Context& ctx, mpi::Comm& comm) {
      std::vector<int> data(33, comm.rank() == root ? 777 : 0);
      comm.bcast(ctx, std::as_writable_bytes(std::span<int>(data)), root);
      EXPECT_EQ(data[0], 777);
      EXPECT_EQ(data[32], 777);
    });
    EXPECT_TRUE(res.all_finished);
  }
}

TEST_P(Collectives, ReduceSumAtRoot) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    std::vector<double> in(5, comm.rank() + 1.0);
    std::vector<double> out(5, -1.0);
    comm.reduce(ctx, in, out, mpi::ReduceOp::kSum, 0);
    if (comm.rank() == 0) {
      double expect = n * (n + 1) / 2.0;
      for (double v : out) EXPECT_DOUBLE_EQ(v, expect);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST_P(Collectives, AllreduceOps) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    double r = comm.rank();
    EXPECT_DOUBLE_EQ(comm.allreduce(ctx, r, mpi::ReduceOp::kSum),
                     n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(ctx, r, mpi::ReduceOp::kMin), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(ctx, r, mpi::ReduceOp::kMax), n - 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(ctx, r + 1.0, mpi::ReduceOp::kProd),
                     std::tgamma(n + 1.0));
  });
  EXPECT_TRUE(res.all_finished);
}

TEST_P(Collectives, AlltoallPermutes) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    std::vector<std::int32_t> send(static_cast<std::size_t>(n) * 2);
    std::vector<std::int32_t> recv(static_cast<std::size_t>(n) * 2, -1);
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d) * 2] = comm.rank() * 100 + d;
      send[static_cast<std::size_t>(d) * 2 + 1] = comm.rank();
    }
    comm.alltoall(ctx, std::as_bytes(std::span<const std::int32_t>(send)),
                  std::as_writable_bytes(std::span<std::int32_t>(recv)),
                  2 * sizeof(std::int32_t));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s) * 2], s * 100 + comm.rank());
      EXPECT_EQ(recv[static_cast<std::size_t>(s) * 2 + 1], s);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST_P(Collectives, AllgatherCollectsInRankOrder) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    std::int64_t mine = comm.rank() * 7 + 1;
    std::vector<std::int64_t> all(static_cast<std::size_t>(n), -1);
    comm.allgather(ctx, as_bytes_of(mine),
                   std::as_writable_bytes(std::span<std::int64_t>(all)));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 7 + 1);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

TEST_P(Collectives, GatherScatterRoundTrip) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    const int root = n - 1;
    double mine = comm.rank() + 0.5;
    std::vector<double> gathered(static_cast<std::size_t>(n), 0);
    comm.gather(ctx, as_bytes_of(mine),
                std::as_writable_bytes(std::span<double>(gathered)), root);
    if (comm.rank() == root) {
      for (int r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], r + 0.5);
        gathered[static_cast<std::size_t>(r)] *= 2.0;
      }
    }
    double back = 0;
    comm.scatter(ctx, std::as_bytes(std::span<const double>(gathered)),
                 std::as_writable_bytes(std::span<double>(&back, 1)), root);
    EXPECT_DOUBLE_EQ(back, (comm.rank() + 0.5) * 2.0);
  });
  EXPECT_TRUE(res.all_finished);
}

TEST_P(Collectives, BackToBackCollectivesDoNotCrossTalk) {
  const int n = GetParam();
  auto res = run_p4_job(n, [n](sim::Context& ctx, mpi::Comm& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      double s = comm.allreduce(ctx, 1.0, mpi::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(s, n);
      std::vector<int> v(3, comm.rank() == 0 ? iter : -1);
      comm.bcast(ctx, std::as_writable_bytes(std::span<int>(v)), 0);
      EXPECT_EQ(v[2], iter);
      comm.barrier(ctx);
    }
  });
  EXPECT_TRUE(res.all_finished);
}

INSTANTIATE_TEST_SUITE_P(CommSizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16));

TEST(CollectivesLarge, BcastLargePayload) {
  auto res = run_p4_job(4, [](sim::Context& ctx, mpi::Comm& comm) {
    Buffer data(300 * 1024);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i % 251);
      }
    }
    comm.bcast(ctx, data, 0);
    EXPECT_EQ(data[250], std::byte{250});
    EXPECT_EQ(data[300 * 1024 - 1], std::byte{(300 * 1024 - 1) % 251});
  });
  EXPECT_TRUE(res.all_finished);
}

}  // namespace
}  // namespace mpiv
