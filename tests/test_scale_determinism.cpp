// Bit-reproducibility at scale, under both execution backends.
//
// The engine's contract is that a job is a pure function of (config, seed):
// the sharded calendar pops events in global (time, seq) order, and the
// fiber/thread backends both run exactly one process body at a time, so the
// same seed must give the same simulation bit for bit. This test runs a
// 128-rank token_ring with Poisson crash/restart churn twice per backend —
// and once across backends — and asserts identical counters, identical
// merged trace total order, and identical final clocks.
//
// MPIV_SCALE_RANKS shrinks the job (the ASan smoke sets it to 32 so the
// instrumented run stays fast).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/token_ring.hpp"
#include "faults/plan.hpp"
#include "runtime/job.hpp"
#include "trace/trace.hpp"

namespace mpiv {
namespace {

int scale_ranks() {
  const char* env = std::getenv("MPIV_SCALE_RANKS");
  if (env != nullptr && env[0] != '\0') return std::atoi(env);
  return 128;
}

struct RunSnapshot {
  bool success = false;
  int restarts = 0;
  SimTime makespan = 0;
  std::vector<SimTime> finish_times;
  std::vector<CounterRegistry::Entry> counters;
  std::vector<trace::TraceEvent> trace;
};

/// True for counters that depend on wall-clock speed or on which backend
/// executed the run — excluded from every comparison ("host_*") or from the
/// cross-backend one ("sim_fiber_*": the thread backend has no fibers).
bool excluded(const std::string& name, bool cross_backend) {
  if (name.rfind("host_", 0) == 0) return true;
  if (cross_backend && name.rfind("sim_fiber_", 0) == 0) return true;
  return false;
}

runtime::AppFactory ring_factory() {
  return [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(/*rounds=*/3,
                                                /*payload_bytes=*/512);
  };
}

runtime::JobConfig base_config() {
  runtime::JobConfig cfg;
  cfg.nprocs = scale_ranks();
  cfg.device = runtime::DeviceKind::kV2;
  cfg.seed = 42;
  cfg.time_limit = seconds(36000);
  return cfg;
}

/// Churn-free makespan of the workload, used to size the Poisson fault
/// window so the kills really land mid-run at every MPIV_SCALE_RANKS.
SimTime reference_makespan() {
  static SimTime memo = 0;
  if (memo == 0) {
    runtime::JobResult ref = run_job(base_config(), ring_factory());
    EXPECT_TRUE(ref.success);
    memo = ref.makespan;
  }
  return memo;
}

RunSnapshot run_once(bool thread_backend) {
  SimTime ref = reference_makespan();
  runtime::JobConfig cfg = base_config();
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kRandom;
  cfg.ckpt_period = 0;
  cfg.first_ckpt_after = ref / 8;
  cfg.restart_delay = milliseconds(100);
  // ~3 expected Poisson-arrival kills while the ring is busy. The plan is a
  // pure function of (ref, seed), so every run in this process gets the
  // same one.
  cfg.fault_plan = faults::FaultPlan::random_arrivals(
      /*mean_interarrival_s=*/to_seconds(ref) / 4, ref / 4, ref, cfg.nprocs,
      /*seed=*/cfg.seed + 17);
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = std::size_t{1} << 20;

  if (thread_backend) ::setenv("MPIV_SIM_THREADS", "1", 1);
  runtime::JobResult res = run_job(cfg, ring_factory());
  if (thread_backend) ::unsetenv("MPIV_SIM_THREADS");

  RunSnapshot snap;
  snap.success = res.success;
  snap.restarts = res.restarts;
  snap.makespan = res.makespan;
  for (const runtime::RankResult& r : res.ranks) {
    snap.finish_times.push_back(r.finish_time);
  }
  snap.counters = res.counters.entries();
  if (res.trace != nullptr) snap.trace = res.trace->merged();
  return snap;
}

void expect_identical(const RunSnapshot& a, const RunSnapshot& b,
                      bool cross_backend) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan) << "virtual makespan diverged";
  EXPECT_EQ(a.finish_times, b.finish_times) << "per-rank final clocks diverged";

  // Counter registries must match entry for entry (same names, same order,
  // same values), modulo the wall-clock/backend exclusions.
  auto filtered = [cross_backend](const RunSnapshot& s) {
    std::vector<CounterRegistry::Entry> out;
    for (const auto& e : s.counters) {
      if (!excluded(e.name, cross_backend)) out.push_back(e);
    }
    return out;
  };
  std::vector<CounterRegistry::Entry> ca = filtered(a), cb = filtered(b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].name, cb[i].name);
    EXPECT_EQ(ca[i].value, cb[i].value) << "counter diverged: " << ca[i].name;
  }

  // The merged trace is the protocol's total order of record: it must be
  // identical event for event.
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "trace length diverged";
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_TRUE(a.trace[i] == b.trace[i]) << "trace diverged at event " << i;
  }
}

TEST(ScaleDeterminism, FiberBackendSameSeedSameRun) {
  RunSnapshot a = run_once(/*thread_backend=*/false);
  RunSnapshot b = run_once(/*thread_backend=*/false);
  EXPECT_TRUE(a.success);
  EXPECT_GT(a.trace.size(), 0u);
  // The fault window is sized off the churn-free makespan, so the kills
  // really land mid-run: this is determinism *under churn*, not vacuously.
  EXPECT_GT(a.restarts, 0);
  expect_identical(a, b, /*cross_backend=*/false);
}

TEST(ScaleDeterminism, ThreadBackendSameSeedSameRun) {
  RunSnapshot a = run_once(/*thread_backend=*/true);
  RunSnapshot b = run_once(/*thread_backend=*/true);
  EXPECT_TRUE(a.success);
  expect_identical(a, b, /*cross_backend=*/false);
}

TEST(ScaleDeterminism, BackendsProduceIdenticalSimulations) {
  RunSnapshot fibers = run_once(/*thread_backend=*/false);
  RunSnapshot threads = run_once(/*thread_backend=*/true);
  expect_identical(fibers, threads, /*cross_backend=*/true);
}

}  // namespace
}  // namespace mpiv
