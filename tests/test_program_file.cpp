// Program-file parsing (§4.7): format, validation, JobConfig mapping.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "services/program_file.hpp"

namespace mpiv::services {
namespace {

constexpr const char* kGood = R"(
# a typical deployment
frontend   dispatcher,event_logger,ckpt_scheduler  policy=adaptive
storage0   ckpt_server
el1        event_logger
node0      compute
node1      compute
node2      compute rank=2
standby0   spare
standby1   spare
)";

TEST(ProgramFile, ParsesRolesOptionsAndRanks) {
  ProgramFile pf = ProgramFile::parse(kGood);
  EXPECT_EQ(pf.count(Role::kCompute), 3);
  EXPECT_EQ(pf.count(Role::kEventLogger), 2);
  EXPECT_EQ(pf.count(Role::kSpare), 2);
  EXPECT_EQ(pf.count(Role::kDispatcher), 1);
  ASSERT_NE(pf.machine_of_rank(0), nullptr);
  EXPECT_EQ(pf.machine_of_rank(0)->name, "node0");
  EXPECT_EQ(pf.machine_of_rank(2)->name, "node2");
  EXPECT_EQ(pf.machines()[0].options.at("policy"), "adaptive");
}

TEST(ProgramFile, ToJobConfig) {
  runtime::JobConfig cfg = ProgramFile::parse(kGood).to_job_config();
  EXPECT_EQ(cfg.nprocs, 3);
  EXPECT_EQ(cfg.n_event_loggers, 2);
  EXPECT_EQ(cfg.spare_nodes, 2);
  EXPECT_TRUE(cfg.checkpointing);
  EXPECT_EQ(cfg.ckpt_policy, PolicyKind::kAdaptive);
  EXPECT_EQ(cfg.device, runtime::DeviceKind::kV2);
}

TEST(ProgramFile, ImplicitRankAssignmentIsFileOrder) {
  ProgramFile pf = ProgramFile::parse(R"(
frontend dispatcher,event_logger
a compute
b compute
c compute
)");
  EXPECT_EQ(pf.machine_of_rank(0)->name, "a");
  EXPECT_EQ(pf.machine_of_rank(1)->name, "b");
  EXPECT_EQ(pf.machine_of_rank(2)->name, "c");
}

TEST(ProgramFile, CommentsAndBlankLinesIgnored)
{
  ProgramFile pf = ProgramFile::parse(
      "# only comments\n\nfrontend dispatcher,event_logger\nn0 compute\n");
  EXPECT_EQ(pf.count(Role::kCompute), 1);
}

TEST(ProgramFile, RejectsMissingDispatcher) {
  EXPECT_THROW(ProgramFile::parse("n0 compute\nel event_logger\n"),
               ConfigError);
}

TEST(ProgramFile, RejectsTwoDispatchers) {
  EXPECT_THROW(ProgramFile::parse(
                   "f1 dispatcher,event_logger\nf2 dispatcher\nn0 compute\n"),
               ConfigError);
}

TEST(ProgramFile, RejectsMissingEventLogger) {
  EXPECT_THROW(ProgramFile::parse("f dispatcher\nn0 compute\n"), ConfigError);
}

TEST(ProgramFile, RejectsNoComputeNodes) {
  EXPECT_THROW(ProgramFile::parse("f dispatcher,event_logger\n"), ConfigError);
}

TEST(ProgramFile, RejectsDuplicateRanks) {
  EXPECT_THROW(ProgramFile::parse(R"(
f dispatcher,event_logger
a compute rank=0
b compute rank=0
)"),
               ConfigError);
}

TEST(ProgramFile, RejectsUnknownRole) {
  EXPECT_THROW(ProgramFile::parse("f dispatcher,event_logger\nn0 computee\n"),
               ConfigError);
}

TEST(ProgramFile, RejectsMachineWithoutRole) {
  EXPECT_THROW(ProgramFile::parse("f dispatcher,event_logger\nlonely\n"),
               ConfigError);
}

TEST(ProgramFile, DescribeRendersEveryMachine) {
  std::string desc = ProgramFile::parse(kGood).describe();
  for (const char* name :
       {"frontend", "storage0", "el1", "node0", "standby1"}) {
    EXPECT_NE(desc.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace mpiv::services
