// End-to-end tests for the offline protocol auditor: real traced jobs —
// clean, crash-recovery, replica-kill and stripe-crash — must pass every
// pessimistic-logging invariant, and each trace_mutation mode must be
// caught with the right invariant name and a causal counterexample.
#include <gtest/gtest.h>

#include <string>

#include "apps/token_ring.hpp"
#include "runtime/job.hpp"
#include "trace/audit.hpp"
#include "trace/sinks.hpp"

namespace mpiv {
namespace {

using runtime::DeviceKind;
using runtime::JobConfig;
using runtime::JobResult;
using trace::Invariant;

runtime::AppFactory ring(int rounds, std::size_t bytes, SimDuration compute) {
  return [=](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, bytes, compute);
  };
}

JobConfig traced_config(int nprocs) {
  JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = DeviceKind::kV2;
  cfg.trace.enabled = true;
  return cfg;
}

// Traced end-to-end runs are meaningless with the recorder compiled out
// (-DMPIV_TRACE=OFF): run_job never allocates a TraceBook.
class TraceAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::kCompiled) {
      GTEST_SKIP() << "tracing compiled out (-DMPIV_TRACE=OFF)";
    }
  }
};

trace::AuditReport audit_of(const JobResult& res) {
  EXPECT_NE(res.trace, nullptr);
  return trace::audit(*res.trace);
}

// ------------------------------------------------------------ passing runs

TEST_F(TraceAudit, CleanRunPasses) {
  JobConfig cfg = traced_config(4);
  JobResult res = run_job(cfg, ring(40, 512, microseconds(500)));
  ASSERT_TRUE(res.success);
  trace::AuditReport rep = audit_of(res);
  EXPECT_TRUE(rep.pass) << rep.summary();
  EXPECT_GT(rep.events_checked, 0u);
  EXPECT_EQ(res.counters.get("trace_events_dropped"), 0);
  EXPECT_GT(res.counters.get("trace_events_recorded"), 0);
}

TEST_F(TraceAudit, CrashRecoveryRunPasses) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg = traced_config(4);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {1});
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  ASSERT_GE(res.restarts, 1);
  ASSERT_GT(res.daemon_stats.replayed_deliveries, 0u);
  trace::AuditReport rep = audit_of(res);
  EXPECT_TRUE(rep.pass) << rep.summary();
}

TEST_F(TraceAudit, ElReplicaKillRunPasses) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg = traced_config(4);
  cfg.el_replication = 3;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // One replica dies for good, and a rank crashes later: the restart must
  // merge from the surviving quorum — and the trace must still audit clean.
  faults::FaultPlan plan = faults::FaultPlan::service_kill(
      clean.makespan / 4, faults::FaultTarget::kEventLogger, 0,
      /*revive=*/false);
  plan.merge(faults::FaultPlan::simultaneous(clean.makespan / 2, {2}));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  trace::AuditReport rep = audit_of(res);
  EXPECT_TRUE(rep.pass) << rep.summary();
}

TEST_F(TraceAudit, StripeCrashRunPasses) {
  auto factory = ring(100, 512, milliseconds(1));
  JobConfig cfg = traced_config(4);
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.ckpt_period = milliseconds(10);
  cfg.n_ckpt_servers = 3;
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // A checkpoint strip server reboots (stable storage) mid-run and a rank
  // crashes afterwards, restoring through the revived stripe.
  faults::FaultPlan plan = faults::FaultPlan::service_kill(
      clean.makespan / 4, faults::FaultTarget::kCkptServer, 1,
      /*revive=*/true);
  plan.merge(faults::FaultPlan::simultaneous(clean.makespan / 2, {1}));
  cfg.fault_plan = plan;
  cfg.time_limit = seconds(600);
  JobResult res = run_job(cfg, factory);
  ASSERT_TRUE(res.success);
  trace::AuditReport rep = audit_of(res);
  EXPECT_TRUE(rep.pass) << rep.summary();
}

TEST_F(TraceAudit, JsonlSinkRoundTripsThroughTheJob) {
  JobConfig cfg = traced_config(3);
  std::string path = testing::TempDir() + "trace_audit_roundtrip.jsonl";
  cfg.trace.jsonl_path = path;
  JobResult res = run_job(cfg, ring(20, 256, microseconds(500)));
  ASSERT_TRUE(res.success);

  trace::LoadedTrace loaded;
  std::string error;
  ASSERT_TRUE(trace::read_jsonl_file(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.events.size(), res.trace->merged().size());
  trace::AuditReport from_file = trace::audit(loaded.events, loaded.dropped);
  trace::AuditReport in_process = audit_of(res);
  EXPECT_TRUE(from_file.pass) << from_file.summary();
  EXPECT_EQ(from_file.events_checked, in_process.events_checked);
}

// ------------------------------------------------------------ mutations

// Each trace_mutation breaks exactly one invariant; the auditor must name
// it and attach a causal counterexample. The jobs are not asserted
// successful — a protocol violation may corrupt the run, and that is fine.

TEST_F(TraceAudit, MutationSkipWaitLoggedIsCaughtAsNoOrphan) {
  JobConfig cfg = traced_config(4);
  cfg.trace_mutation = trace::Mutation::kSkipWaitLogged;
  JobResult res = run_job(cfg, ring(40, 512, microseconds(500)));
  trace::AuditReport rep = audit_of(res);
  EXPECT_FALSE(rep.pass);
  ASSERT_TRUE(rep.has(Invariant::kNoOrphan)) << rep.summary();
  for (const trace::Violation& v : rep.violations) {
    if (v.invariant != Invariant::kNoOrphan) continue;
    EXPECT_FALSE(v.evidence.empty());
    EXPECT_NE(v.detail.find("WAITLOGGED"), std::string::npos);
    break;
  }
}

TEST_F(TraceAudit, MutationReplayOutOfOrderIsCaughtAsReplayOrder) {
  auto factory = ring(40, 512, microseconds(500));
  JobConfig cfg = traced_config(4);
  JobResult clean = run_job(cfg, factory);
  ASSERT_TRUE(clean.success);

  // The mutation only bites on a restart's replay pass, so crash a rank.
  cfg.trace_mutation = trace::Mutation::kReplayOutOfOrder;
  cfg.fault_plan = faults::FaultPlan::simultaneous(clean.makespan / 2, {1});
  cfg.time_limit = clean.makespan * 4;
  JobResult res = run_job(cfg, factory);
  trace::AuditReport rep = audit_of(res);
  EXPECT_FALSE(rep.pass);
  ASSERT_TRUE(rep.has(Invariant::kReplayOrder)) << rep.summary();
  for (const trace::Violation& v : rep.violations) {
    if (v.invariant != Invariant::kReplayOrder) continue;
    EXPECT_FALSE(v.evidence.empty());
    break;
  }
}

TEST_F(TraceAudit, MutationPruneSavedEarlyIsCaughtAsGcSafety) {
  JobConfig cfg = traced_config(4);
  cfg.trace_mutation = trace::Mutation::kPruneSavedEarly;
  JobResult res = run_job(cfg, ring(40, 512, microseconds(500)));
  trace::AuditReport rep = audit_of(res);
  EXPECT_FALSE(rep.pass);
  ASSERT_TRUE(rep.has(Invariant::kGcSafety)) << rep.summary();
  for (const trace::Violation& v : rep.violations) {
    if (v.invariant != Invariant::kGcSafety) continue;
    EXPECT_FALSE(v.evidence.empty());
    EXPECT_NE(v.detail.find("pruned"), std::string::npos);
    break;
  }
}

}  // namespace
}  // namespace mpiv
