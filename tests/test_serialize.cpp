#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace mpiv {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);
  Buffer buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  Buffer payload{std::byte{1}, std::byte{2}, std::byte{3}};
  w.blob(payload);
  w.blob({});
  Buffer buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), payload);
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorHelper) {
  Writer w;
  std::vector<std::uint32_t> vals{1, 2, 3, 500000};
  w.vec(vals, [](Writer& ww, std::uint32_t v) { ww.u32(v); });
  Buffer buf = w.take();

  Reader r(buf);
  auto out = r.vec<std::uint32_t>([](Reader& rr) { return rr.u32(); });
  EXPECT_EQ(out, vals);
}

TEST(Serialize, TruncatedInputThrows) {
  Writer w;
  w.u64(7);
  Buffer buf = w.take();
  buf.resize(4);
  Reader r(buf);
  EXPECT_THROW(r.u64(), SerializeError);
}

TEST(Serialize, MalformedBlobLengthThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes, provides none
  Buffer buf = w.take();
  Reader r(buf);
  EXPECT_THROW(r.blob(), SerializeError);
}

TEST(Serialize, TakeAndRest) {
  Writer w;
  w.u32(5);
  w.raw("abcde", 5);
  Buffer buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_EQ(r.remaining(), 5u);
  ConstBytes v = r.take(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, RandomizedRoundTrip) {
  Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint64_t> vals;
    Writer w;
    int n = static_cast<int>(rng.below(50));
    for (int i = 0; i < n; ++i) {
      vals.push_back(rng.next());
      w.u64(vals.back());
    }
    Buffer buf = w.take();
    Reader r(buf);
    for (std::uint64_t v : vals) EXPECT_EQ(r.u64(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, Fnv1aStableAndSensitive) {
  Buffer a{std::byte{1}, std::byte{2}};
  Buffer b{std::byte{2}, std::byte{1}};
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_NE(fnv1a(a), fnv1a({}));
}

TEST(Bytes, ToBufferOfTrivialValue) {
  std::uint32_t v = 0x01020304;
  Buffer b = to_buffer(v);
  ASSERT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace mpiv
