// mpirun_v2: the §4.7 front end — "the user just runs a parallel program
// using the standard mpirun command". Takes a program file describing the
// machines and their roles, prints the run plan, then executes one of the
// NAS-like kernels on the described deployment (with optional fault
// injection, since our cluster is simulated).
//
//   ./mpirun_v2 pgfile=deploy.pg kernel=bt class=T faults=2
//
// Without pgfile= a default 8-node deployment is used.
// --trace <path> records the run's causal protocol trace as JSONL (feed it
// to ./trace_audit to check the pessimistic-logging invariants);
// --trace-chrome <path> additionally writes a chrome://tracing timeline.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/kernels.hpp"
#include "common/options.hpp"
#include "runtime/job.hpp"
#include "services/program_file.hpp"
#include "trace/trace.hpp"

using namespace mpiv;

namespace {
const char* kDefaultProgramFile = R"(# default MPICH-V2 deployment
frontend   dispatcher,event_logger,ckpt_scheduler  policy=round_robin
storage0   ckpt_server
node0      compute
node1      compute
node2      compute
node3      compute
node4      compute
node5      compute
node6      compute
node7      compute
standby0   spare
)";
}  // namespace

int main(int argc, char** argv) try {
  Options opts(argc, argv);
  std::string text;
  if (opts.has("pgfile")) {
    std::ifstream in(opts.get("pgfile"));
    if (!in) {
      std::fprintf(stderr, "cannot open program file %s\n",
                   opts.get("pgfile").c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    text = kDefaultProgramFile;
  }

  services::ProgramFile pf = services::ProgramFile::parse(text);
  std::printf("run plan:\n%s\n", pf.describe().c_str());

  runtime::JobConfig cfg = pf.to_job_config();
  std::string kernel = opts.get("kernel", "bt");
  std::string cls_s = opts.get("class", "T");
  apps::NasClass cls = cls_s == "A"   ? apps::NasClass::kA
                       : cls_s == "B" ? apps::NasClass::kB
                                      : apps::NasClass::kTest;
  // BT/SP need square process counts; fall back to the largest square.
  if (kernel == "bt" || kernel == "sp") {
    int q = 1;
    while ((q + 1) * (q + 1) <= cfg.nprocs) ++q;
    cfg.nprocs = q * q;
  }

  if (opts.has("trace")) {
    cfg.trace.enabled = true;
    cfg.trace.jsonl_path = opts.get("trace");
  }
  if (opts.has("trace-chrome")) {
    cfg.trace.enabled = true;
    cfg.trace.chrome_path = opts.get("trace-chrome");
  }
  if (cfg.trace.enabled && !trace::kCompiled) {
    std::fprintf(stderr,
                 "warning: tracing requested but compiled out "
                 "(-DMPIV_TRACE=OFF); no trace will be written\n");
  }

  int nfaults = static_cast<int>(opts.get_int("faults", 0));
  std::printf("running %s class %s on %d ranks (%d fault%s injected)\n\n",
              kernel.c_str(), cls_s.c_str(), cfg.nprocs, nfaults,
              nfaults == 1 ? "" : "s");

  auto factory = apps::kernel_factory(kernel, cls);
  if (nfaults > 0 || cfg.checkpointing) {
    // Probe the fault-free makespan to scale fault spacing and the
    // checkpoint cadence to the run length.
    runtime::JobConfig probe_cfg = cfg;
    probe_cfg.checkpointing = false;
    runtime::JobResult probe = run_job(probe_cfg, factory);
    if (!probe.success) {
      std::printf("probe run FAILED\n");
      return 1;
    }
    if (cfg.checkpointing) {
      cfg.first_ckpt_after = probe.makespan / 10;
      cfg.ckpt_period = probe.makespan / 20;
    }
    if (nfaults > 0) {
      cfg.fault_plan = faults::FaultPlan::periodic_random(
          nfaults, probe.makespan / (nfaults + 1),
          probe.makespan / (nfaults + 1), cfg.nprocs,
          static_cast<std::uint64_t>(opts.get_int("seed", 7)));
    }
    cfg.time_limit = seconds(3600);
  }
  runtime::JobResult res = run_job(cfg, factory);
  if (!res.success) {
    std::printf("run FAILED\n");
    return 1;
  }
  std::printf("completed in %.3f s (virtual)\n", to_seconds(res.makespan));
  std::printf("restarts: %d   checkpoints stored: %llu   "
              "events logged: %llu   replayed: %llu\n",
              res.restarts,
              static_cast<unsigned long long>(res.checkpoints_stored),
              static_cast<unsigned long long>(res.daemon_stats.events_logged),
              static_cast<unsigned long long>(
                  res.daemon_stats.replayed_deliveries));
  if (trace::kCompiled && !cfg.trace.jsonl_path.empty()) {
    std::printf("trace written to %s (%lld events; audit with trace_audit)\n",
                cfg.trace.jsonl_path.c_str(),
                static_cast<long long>(
                    res.counters.get("trace_events_recorded")));
  }
  if (trace::kCompiled && !cfg.trace.chrome_path.empty()) {
    std::printf("chrome trace written to %s\n",
                cfg.trace.chrome_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "mpirun_v2: %s\n", e.what());
  return 1;
}
