// Quickstart: a 4-process MPI job on the MPICH-V2 fault-tolerant runtime.
//
// A token ring runs while one node is killed mid-execution; the dispatcher
// detects the disconnect, restarts the rank, its daemon replays the logged
// receptions, and the job finishes with exactly the result of the
// fault-free run — the application code never learns a fault happened.
//
//   ./quickstart            # with a fault
//   ./quickstart faults=0   # fault-free reference
#include <cstdio>
#include <memory>

#include "apps/token_ring.hpp"
#include "common/options.hpp"
#include "runtime/job.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int nprocs = 4;
  const int rounds = 30;

  auto factory = [&](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, 1024,
                                                microseconds(500));
  };

  // Fault-free reference run.
  runtime::JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = runtime::DeviceKind::kV2;
  runtime::JobResult reference = run_job(cfg, factory);
  std::printf("reference run:  %.3f s, fingerprint[0] = %s\n",
              to_seconds(reference.makespan),
              std::to_string(fnv1a(reference.ranks[0].output)).c_str());

  if (opts.get_int("faults", 1) > 0) {
    // Kill rank 2 a third of the way in; restart after 100 ms "reboot".
    cfg.fault_plan =
        faults::FaultPlan::simultaneous(reference.makespan / 3, {2});
    cfg.restart_delay = milliseconds(100);
  }
  runtime::JobResult res = run_job(cfg, factory);
  if (!res.success) {
    std::printf("job FAILED\n");
    return 1;
  }
  std::printf("faulty run:     %.3f s, fingerprint[0] = %s\n",
              to_seconds(res.makespan),
              std::to_string(fnv1a(res.ranks[0].output)).c_str());
  std::printf("restarts: %d, replayed deliveries: %llu, "
              "events logged: %llu\n",
              res.restarts,
              static_cast<unsigned long long>(
                  res.daemon_stats.replayed_deliveries),
              static_cast<unsigned long long>(res.daemon_stats.events_logged));
  bool same = true;
  for (std::size_t r = 0; r < res.ranks.size(); ++r) {
    same = same && res.ranks[r].output == reference.ranks[r].output;
  }
  std::printf("results identical to fault-free run: %s\n",
              same ? "YES" : "NO");
  return same ? 0 : 1;
}
