// heat2d: a long-running domain-decomposition solver under checkpointing —
// the workload class MPICH-V2 targets (long executions, large messages).
//
// A 2-D heat diffusion grid is partitioned in row slabs across the ranks;
// every Jacobi step exchanges halo rows with both neighbours; every few
// steps the solver computes the global residual and offers the runtime a
// checkpoint point. Faults strike twice during the run; the killed ranks
// restart from their last checkpoint image and replay forward.
//
//   ./heat2d n=256 steps=400 nprocs=8 faults=2
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/compute_model.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/serialize.hpp"
#include "runtime/job.hpp"

using namespace mpiv;

namespace {

class Heat2dApp final : public runtime::App {
 public:
  Heat2dApp(int n, int steps) : n_(n), steps_(steps) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (!init_) {
      if (n_ % comm.size() != 0) {
        throw ConfigError("heat2d: nprocs must divide n");
      }
      rows_ = n_ / comm.size();
      // Two extra halo rows; hot stripe in the middle of the domain.
      grid_.assign(static_cast<std::size_t>(rows_ + 2) * n_, 0.0);
      int r0 = comm.rank() * rows_;
      for (int i = 0; i < rows_; ++i) {
        if ((r0 + i) >= n_ / 2 - 2 && (r0 + i) <= n_ / 2 + 2) {
          for (int j = 0; j < n_; ++j) at(i, j) = 100.0;
        }
      }
      init_ = true;
    }
    const mpi::Rank up = comm.rank() - 1;
    const mpi::Rank down = comm.rank() + 1;
    std::vector<double> next(grid_.size());

    for (; step_ < steps_; ++step_) {
      if (step_ % 10 == 0) checkpoint_point(ctx, comm);
      // Halo exchange with both neighbours (large messages: n_ doubles).
      if (up >= 0) {
        comm.sendrecv(ctx, std::as_bytes(row_span(0)), up, 1,
                      std::as_writable_bytes(row_span(-1)), up, 2);
      }
      if (down < comm.size()) {
        comm.sendrecv(ctx, std::as_bytes(row_span(rows_ - 1)), down, 2,
                      std::as_writable_bytes(row_span(rows_)), down, 1);
      }
      for (int i = 0; i < rows_; ++i) {
        bool top_edge = up < 0 && i == 0;
        bool bottom_edge = down >= comm.size() && i == rows_ - 1;
        for (int j = 0; j < n_; ++j) {
          if (top_edge || bottom_edge || j == 0 || j == n_ - 1) {
            next[idx(i, j)] = at(i, j);
            continue;
          }
          next[idx(i, j)] = at(i, j) + 0.2 * (at(i - 1, j) + at(i + 1, j) +
                                              at(i, j - 1) + at(i, j + 1) -
                                              4.0 * at(i, j));
        }
      }
      std::swap(grid_, next);
      ctx.compute(apps::flops_time(8.0 * rows_ * n_));
      if (step_ % 50 == 49) {
        double local = 0;
        for (int i = 0; i < rows_; ++i) {
          for (int j = 0; j < n_; ++j) local += at(i, j);
        }
        heat_ = comm.allreduce(ctx, local, mpi::ReduceOp::kSum);
      }
    }
  }

  Buffer snapshot() override {
    Writer w;
    w.i32(step_);
    w.boolean(init_);
    w.i32(rows_);
    w.f64(heat_);
    w.u32(static_cast<std::uint32_t>(grid_.size()));
    for (double v : grid_) w.f64(v);
    return w.take();
  }

  void restore(ConstBytes image) override {
    Reader r(image);
    step_ = r.i32();
    init_ = r.boolean();
    rows_ = r.i32();
    heat_ = r.f64();
    grid_.resize(r.u32());
    for (double& v : grid_) v = r.f64();
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.f64(heat_);
    return w.take();
  }

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i + 1) * n_ + j;
  }
  double& at(int i, int j) { return grid_[idx(i, j)]; }
  std::span<double> row_span(int i) {
    return {grid_.data() + idx(i, 0), static_cast<std::size_t>(n_)};
  }

  int n_;
  int steps_;
  int step_ = 0;
  int rows_ = 0;
  bool init_ = false;
  double heat_ = 0;
  std::vector<double> grid_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int n = static_cast<int>(opts.get_int("n", 256));
  int steps = static_cast<int>(opts.get_int("steps", 400));
  int nprocs = static_cast<int>(opts.get_int("nprocs", 8));
  int nfaults = static_cast<int>(opts.get_int("faults", 2));

  auto factory = [&](mpi::Rank, mpi::Rank) {
    return std::make_unique<Heat2dApp>(n, steps);
  };

  runtime::JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kRoundRobin;
  cfg.first_ckpt_after = milliseconds(50);
  runtime::JobResult clean = run_job(cfg, factory);
  if (!clean.success) {
    std::printf("clean run FAILED\n");
    return 1;
  }
  std::printf("clean run: %.3f s  total heat %.6f\n",
              to_seconds(clean.makespan),
              Reader(clean.ranks[0].output).f64());

  if (nfaults > 0) {
    cfg.fault_plan = faults::FaultPlan::periodic_random(
        nfaults, clean.makespan / 4, clean.makespan / 4, nprocs, 42);
    cfg.time_limit = seconds(3600);
  }
  runtime::JobResult res = run_job(cfg, factory);
  if (!res.success) {
    std::printf("faulty run FAILED\n");
    return 1;
  }
  std::printf("with %d faults: %.3f s  total heat %.6f  "
              "(restarts %d, checkpoints %llu)\n",
              nfaults, to_seconds(res.makespan),
              Reader(res.ranks[0].output).f64(), res.restarts,
              static_cast<unsigned long long>(res.checkpoints_stored));
  bool same = res.ranks[0].output == clean.ranks[0].output;
  std::printf("answer matches clean run: %s\n", same ? "YES" : "NO");
  return same ? 0 : 1;
}
