// compare_devices: run one workload across the three channel devices
// (MPICH-P4, MPICH-V1, MPICH-V2) and contrast time, traffic and the
// fault-tolerance bookkeeping — a miniature of the paper's evaluation.
//
//   ./compare_devices kernel=ft nprocs=8
#include <cstdio>

#include "apps/kernels.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "runtime/job.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  std::string kernel = opts.get("kernel", "ft");
  int nprocs = static_cast<int>(opts.get_int("nprocs", 8));

  auto factory = apps::kernel_factory(kernel, apps::NasClass::kTest);

  std::printf("kernel %s on %d ranks (reduced problem size)\n\n",
              kernel.c_str(), nprocs);
  TextTable table({"device", "time", "MPI time (max rank)", "wire msgs",
                   "wire MB", "events logged", "reliable nodes"});
  Buffer reference_output;
  bool all_match = true;
  for (auto dev : {runtime::DeviceKind::kP4, runtime::DeviceKind::kV1,
                   runtime::DeviceKind::kV2}) {
    runtime::JobConfig cfg;
    cfg.nprocs = nprocs;
    cfg.device = dev;
    runtime::JobResult res = run_job(cfg, factory);
    if (!res.success) {
      std::printf("%s FAILED\n", device_name(dev));
      continue;
    }
    if (reference_output.empty()) {
      reference_output = res.ranks[0].output;
    } else {
      all_match = all_match && res.ranks[0].output == reference_output;
    }
    // Reliable nodes: P4 none; V1 needs one Channel Memory per 4 ranks;
    // V2 needs the frontend (dispatcher+EL) and the checkpoint server.
    int reliable = dev == runtime::DeviceKind::kP4   ? 0
                   : dev == runtime::DeviceKind::kV1 ? (nprocs + 3) / 4 + 1
                                                     : 2;
    table.add_row(
        {device_name(dev), format_duration(res.makespan),
         format_duration(res.max_mpi_time()),
         std::to_string(res.wire.messages),
         format_double(static_cast<double>(res.wire.bytes) / 1e6, 1),
         std::to_string(res.daemon_stats.events_logged),
         std::to_string(reliable)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nall devices computed bit-identical results: %s\n",
              all_match ? "YES" : "NO");
  return all_match ? 0 : 1;
}
