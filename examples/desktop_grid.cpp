// desktop_grid: a master/worker task farm on volatile nodes — the
// "campus-wide desktop grid" deployment the paper motivates, where any
// machine (including the master) can vanish at any time.
//
// The master (rank 0) hands out work units and collects results with
// MPI_ANY_SOURCE — a genuinely nondeterministic reception order, which is
// exactly what the event logger records and replays. Workers compute a
// checksum over their unit. Nodes churn throughout the run (Poisson fault
// arrivals); every kill is recovered transparently and the final result
// equals the churn-free run.
//
//   ./desktop_grid workers=7 units=60 churn=6
#include <cstdio>
#include <memory>

#include "apps/compute_model.hpp"
#include "common/options.hpp"
#include "common/serialize.hpp"
#include "runtime/job.hpp"

using namespace mpiv;

namespace {

constexpr mpi::Tag kTask = 1;
constexpr mpi::Tag kResult = 2;
constexpr mpi::Tag kStop = 3;

std::uint64_t work_unit(std::int64_t unit) {
  // Deterministic "work": iterated mixing.
  std::uint64_t x = static_cast<std::uint64_t>(unit) * 0x9e3779b97f4a7c15ull + 1;
  for (int i = 0; i < 1000; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
  }
  return x;
}

class FarmApp final : public runtime::App {
 public:
  explicit FarmApp(int units) : units_(units) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() == 0) {
      master(ctx, comm);
    } else {
      worker(ctx, comm);
    }
  }

  Buffer snapshot() override {
    Writer w;
    w.i32(next_unit_);
    w.i32(done_);
    w.u64(checksum_);
    return w.take();
  }
  void restore(ConstBytes image) override {
    Reader r(image);
    next_unit_ = r.i32();
    done_ = r.i32();
    checksum_ = r.u64();
  }
  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(checksum_);
    return w.take();
  }

 private:
  void master(sim::Context& ctx, mpi::Comm& comm) {
    const int workers = comm.size() - 1;
    // Seed every worker with one unit (skipped on checkpoint resume: the
    // unit counter is part of the snapshot).
    while (next_unit_ < std::min(units_, workers)) {
      checkpoint_point(ctx, comm);
      std::int64_t u = next_unit_++;
      comm.send_value<std::int64_t>(ctx, u, static_cast<int>(u % workers) + 1,
                                    kTask);
    }
    while (done_ < units_) {
      checkpoint_point(ctx, comm);
      // ANY_SOURCE: whichever worker finishes first.
      mpi::Status st;
      std::uint64_t result = 0;
      comm.recv(ctx, std::as_writable_bytes(std::span<std::uint64_t>(&result, 1)),
                mpi::kAnySource, kResult, &st);
      checksum_ = checksum_ * 31 + result;
      ++done_;
      if (next_unit_ < units_) {
        comm.send_value<std::int64_t>(ctx, next_unit_++, st.source, kTask);
      } else {
        comm.send_value<std::int64_t>(ctx, -1, st.source, kStop);
      }
    }
  }

  void worker(sim::Context& ctx, mpi::Comm& comm) {
    for (;;) {
      checkpoint_point(ctx, comm);
      mpi::Status st;
      std::int64_t unit = 0;
      comm.recv(ctx, std::as_writable_bytes(std::span<std::int64_t>(&unit, 1)),
                0, mpi::kAnyTag, &st);
      if (st.tag == kStop) return;
      std::uint64_t r = work_unit(unit);
      ctx.compute(apps::flops_time(2e6));  // ~2 MFlop per unit
      comm.send_value<std::uint64_t>(ctx, r, 0, kResult);
    }
  }

  int units_;
  int next_unit_ = 0;
  int done_ = 0;
  std::uint64_t checksum_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int workers = static_cast<int>(opts.get_int("workers", 7));
  int units = static_cast<int>(opts.get_int("units", 60));
  int churn = static_cast<int>(opts.get_int("churn", 6));

  auto factory = [&](mpi::Rank, mpi::Rank) {
    return std::make_unique<FarmApp>(units);
  };

  runtime::JobConfig cfg;
  cfg.nprocs = workers + 1;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.first_ckpt_after = milliseconds(20);
  runtime::JobResult clean = run_job(cfg, factory);
  if (!clean.success) {
    std::printf("clean run FAILED\n");
    return 1;
  }
  std::printf("churn-free: %.3f s, checksum %llu\n", to_seconds(clean.makespan),
              static_cast<unsigned long long>(
                  Reader(clean.ranks[0].output).u64()));

  if (churn > 0) {
    // Node churn across the whole run, master included.
    cfg.fault_plan = faults::FaultPlan::periodic_random(
        churn, clean.makespan / 4, clean.makespan / 4, cfg.nprocs, 1234);
    cfg.restart_delay = milliseconds(50);
    cfg.time_limit = seconds(3600);
  }
  runtime::JobResult res = run_job(cfg, factory);
  if (!res.success) {
    std::printf("churn run FAILED\n");
    return 1;
  }
  std::printf("with churn:  %.3f s, checksum %llu "
              "(kills %d, replayed %llu)\n",
              to_seconds(res.makespan),
              static_cast<unsigned long long>(Reader(res.ranks[0].output).u64()),
              res.restarts,
              static_cast<unsigned long long>(
                  res.daemon_stats.replayed_deliveries));
  bool same = res.ranks[0].output == clean.ranks[0].output;
  std::printf("checksum matches churn-free run: %s\n", same ? "YES" : "NO");
  return same ? 0 : 1;
}
