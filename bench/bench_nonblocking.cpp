// Figure 9: the synthetic BT/SP communication pattern — each round both
// ranks post 10 non-blocking receives and 10 non-blocking sends, then
// Waitall. Expected shape: P4 wins on small messages (lower latency); V2
// approaches twice the P4 bandwidth for 64 KB messages because its daemon
// interleaves send and receive chunks (full duplex) while P4's inline
// pushes stall on the TCP window when the peer is not draining.
#include <memory>

#include "apps/pingpong.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto sizes = opts.get_int_list(
      "sizes", {256, 1024, 4096, 16384, 65536, 131072, 262144});
  int batch = static_cast<int>(opts.get_int("batch", 10));
  int reps = static_cast<int>(opts.get_int("reps", 5));
  auto devices = bench::devices_from_options(opts, "p4,v2");
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header(
        "Non-blocking batch exchange (10x Isend + 10x Irecv + Waitall)",
        "Figure 9 (paper: V2 reaches ~2x the P4 bandwidth at 64 KB)");
  }

  TextTable table({"size", "device", "round time", "agg bandwidth MB/s"});
  std::map<std::int64_t, double> p4_bw;
  std::string json_rows;
  for (std::int64_t size : sizes) {
    for (const std::string& dev : devices) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = bench::device_from_name(dev);
      auto bytes = static_cast<std::size_t>(size);
      runtime::JobResult res = run_job(cfg, [=](mpi::Rank, mpi::Rank) {
        return std::make_unique<apps::NonblockingPatternApp>(bytes, batch, reps);
      });
      if (!res.success) {
        std::printf("  %s size=%lld FAILED\n", dev.c_str(),
                    static_cast<long long>(size));
        continue;
      }
      double round_ns = bench::result_f64(res);
      // Both directions move batch*size bytes per round.
      double bw = 2.0 * batch * static_cast<double>(size) / (round_ns / 1e9) / 1e6;
      if (dev == "p4") p4_bw[size] = bw;
      table.add_row({std::to_string(size), dev,
                     format_duration(static_cast<SimDuration>(round_ns)),
                     format_double(bw, 2)});
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"size\": %lld, \"device\": \"%s\", "
                    "\"round_us\": %.2f, \"agg_bandwidth_mbps\": %.2f}",
                    json_rows.empty() ? "" : ",\n", static_cast<long long>(size),
                    dev.c_str(), round_ns / 1e3, bw);
      json_rows += buf;
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"nonblocking\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
