// Weak-scaling bench for the simulation substrate itself.
//
// The paper validates MPICH-V2 at 32 nodes; everything past that rides on
// the simulator scaling, so this bench measures the engine rather than the
// protocol: token_ring and CG jobs at 32 -> 128 -> 512 -> 1024 ranks,
// with and without Poisson crash/restart churn, reporting host-side
// events/sec and peak RSS. The fiber-vs-thread backend A/B at a small rank
// count records the speedup of the coroutine engine over the legacy
// thread-per-process backend. Every churn run records a causal trace and is
// audited in-process; an audit violation fails the bench.
//
//   bench_scale [ranks=32,128,512,1024] [cg_ranks=32,128,512]
//               [churn_ranks=32,128] [ab_ranks=32] [rounds=4] [ab_rounds=50]
//               [ab_trials=3] [payload=1024] [cg_iters=4] [seed=1]
//               [--json <path>]
//
// The A/B uses its own (longer) round count and best-of-N trials: at
// rounds=4 the wall time is dominated by job setup/teardown, which both
// backends share, and single-shot walls on a busy host jitter by 2x — the
// per-event backend gap disappears into noise. Best-of-N per backend is the
// standard way to measure the machine, not the scheduler.
//
// The CG sweep stops at 512 ranks by default: its ring allgather is
// O(ranks^2) messages per iteration, which measures the app, not the
// engine, past that point (the cap is logged, not silent).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/cg.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "common/units.hpp"
#include "faults/plan.hpp"
#include "trace/audit.hpp"

using namespace mpiv;

namespace {

struct RunStats {
  bool ok = false;
  double wall_s = 0;
  double makespan_s = 0;
  long long events = 0;
  double events_per_sec = 0;
  long long restarts = 0;
  long long fiber_stack_peak = 0;
  std::uint64_t peak_rss = 0;
  bool audited = false;
  bool audit_pass = false;
  std::string audit_summary;
};

std::vector<int> int_list(const Options& opts, const std::string& key,
                          const std::string& def) {
  std::string s = opts.get(key, def);
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(std::stoi(tok));
    pos = comma + 1;
  }
  return out;
}

struct Spec {
  std::string workload;  // "token_ring" | "cg"
  int ranks = 32;
  bool churn = false;
  bool thread_backend = false;
  int rounds = 4;
  std::size_t payload = 1024;
  int cg_iters = 4;
  std::uint64_t seed = 1;
  /// Churn window/rate come from a prior churn-free run of the same shape.
  double ref_makespan_s = 0;
};

runtime::AppFactory make_factory(const Spec& sp) {
  if (sp.workload == "cg") {
    apps::CgApp::Params p;
    p.n = sp.ranks * 8;  // weak scaling: constant unknowns per rank
    p.nonzeros_per_row = 8;
    p.iters = sp.cg_iters;
    return [p](mpi::Rank, mpi::Rank) { return std::make_unique<apps::CgApp>(p); };
  }
  int rounds = sp.rounds;
  std::size_t payload = sp.payload;
  return [rounds, payload](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::TokenRingApp>(rounds, payload);
  };
}

RunStats run_one(const Spec& sp) {
  runtime::JobConfig cfg;
  cfg.nprocs = sp.ranks;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.seed = sp.seed;
  cfg.time_limit = seconds(36000);
  if (sp.churn) {
    cfg.checkpointing = true;
    cfg.ckpt_policy = services::PolicyKind::kRandom;
    cfg.ckpt_period = 0;  // continuous, as in the paper's fault runs
    cfg.first_ckpt_after = seconds(sp.ref_makespan_s / 8);
    cfg.restart_delay = milliseconds(100);
    // ~3 expected Poisson kills inside [ref/4, ref] of the churn-free
    // makespan, so the failures land while the ring is busy at any scale.
    cfg.fault_plan = faults::FaultPlan::random_arrivals(
        sp.ref_makespan_s / 4, seconds(sp.ref_makespan_s / 4),
        seconds(sp.ref_makespan_s), sp.ranks, sp.seed + 17);
    cfg.trace.enabled = true;
    cfg.trace.ring_capacity = std::size_t{1} << 20;
  }
  if (sp.thread_backend) ::setenv("MPIV_SIM_THREADS", "1", 1);
  auto t0 = std::chrono::steady_clock::now();
  runtime::JobResult res = run_job(cfg, make_factory(sp));
  auto t1 = std::chrono::steady_clock::now();
  if (sp.thread_backend) ::unsetenv("MPIV_SIM_THREADS");

  RunStats out;
  out.ok = res.success;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.makespan_s = to_seconds(res.makespan);
  out.events = res.counters.get("sim_events_executed");
  out.events_per_sec =
      out.wall_s > 0 ? static_cast<double>(out.events) / out.wall_s : 0;
  out.restarts = res.counters.get("restarts");
  out.fiber_stack_peak = res.counters.get("sim_fiber_stack_peak_bytes");
  out.peak_rss = bench::peak_rss_bytes();
  if (sp.churn) {
    out.audited = true;
    if (res.trace != nullptr) {
      trace::AuditReport report = trace::audit(*res.trace);
      out.audit_pass = report.pass;
      out.audit_summary = report.summary();
    } else {
      out.audit_summary = "no trace recorded";
    }
  }
  return out;
}

std::string row_json(const Spec& sp, const RunStats& r, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s    {\"workload\": \"%s\", \"ranks\": %d, \"churn\": %s, "
      "\"backend\": \"%s\", \"ok\": %s, \"wall_s\": %.3f, "
      "\"makespan_s\": %.4f, \"events\": %lld, \"events_per_sec\": %.0f, "
      "\"restarts\": %lld, \"fiber_stack_peak_bytes\": %lld, "
      "\"peak_rss_bytes\": %llu%s%s}",
      first ? "" : ",\n", sp.workload.c_str(), sp.ranks,
      sp.churn ? "true" : "false", sp.thread_backend ? "threads" : "fibers",
      r.ok ? "true" : "false", r.wall_s, r.makespan_s, r.events,
      r.events_per_sec, r.restarts, r.fiber_stack_peak,
      static_cast<unsigned long long>(r.peak_rss),
      r.audited ? (r.audit_pass ? ", \"audit\": \"pass\"" : ", \"audit\": \"FAIL\"")
                : "",
      "");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  std::vector<int> tr_ranks = int_list(opts, "ranks", "32,128,512,1024");
  std::vector<int> cg_ranks = int_list(opts, "cg_ranks", "32,128,512");
  std::vector<int> churn_ranks = int_list(opts, "churn_ranks", "32,128");
  int ab_ranks = static_cast<int>(opts.get_int("ab_ranks", 32));
  int ab_rounds = static_cast<int>(opts.get_int("ab_rounds", 50));
  int ab_trials = static_cast<int>(opts.get_int("ab_trials", 3));
  Spec base;
  base.rounds = static_cast<int>(opts.get_int("rounds", 4));
  base.payload = static_cast<std::size_t>(opts.get_int("payload", 1024));
  base.cg_iters = static_cast<int>(opts.get_int("cg_iters", 4));
  base.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header(
        "Simulation substrate weak scaling (fibers + sharded calendar + "
        "pooled buffers)",
        "scale-out substrate for all >32-rank roadmap experiments");
  }

  TextTable table({"workload", "ranks", "churn", "backend", "wall s",
                   "events", "events/s", "restarts", "peak RSS", "audit"});
  std::string rows_json;
  bool all_ok = true;
  bool all_audits_pass = true;
  // Reference makespans per (workload, ranks), consumed by churn runs.
  auto remember = [](std::vector<std::pair<int, double>>& v, int r, double m) {
    v.emplace_back(r, m);
  };
  auto lookup = [](const std::vector<std::pair<int, double>>& v, int r) {
    for (const auto& [ranks, m] : v)
      if (ranks == r) return m;
    return 0.0;  // no reference yet — caller runs one
  };
  std::vector<std::pair<int, double>> tr_makespans;

  auto report = [&](const Spec& sp, const RunStats& r) {
    all_ok = all_ok && r.ok;
    if (r.audited) all_audits_pass = all_audits_pass && r.audit_pass;
    table.add_row({sp.workload, std::to_string(sp.ranks),
                   sp.churn ? "poisson" : "-",
                   sp.thread_backend ? "threads" : "fibers",
                   format_double(r.wall_s, 2), std::to_string(r.events),
                   format_double(r.events_per_sec, 0),
                   std::to_string(r.restarts), format_bytes(r.peak_rss),
                   r.audited ? (r.audit_pass ? "pass" : "FAIL") : "-"});
    rows_json += row_json(sp, r, rows_json.empty());
    if (!json.active()) {
      std::printf("%-10s ranks=%-5d churn=%d backend=%s: wall %.2fs, %lld "
                  "events (%.0f/s), rss %s%s\n",
                  sp.workload.c_str(), sp.ranks, sp.churn ? 1 : 0,
                  sp.thread_backend ? "threads" : "fibers", r.wall_s, r.events,
                  r.events_per_sec, format_bytes(r.peak_rss).c_str(),
                  r.audited ? (r.audit_pass ? ", audit pass" : ", AUDIT FAIL")
                            : "");
      if (r.audited && !r.audit_pass) {
        std::printf("  audit: %s\n", r.audit_summary.c_str());
      }
    }
  };
  auto run_and_report = [&](const Spec& sp) {
    RunStats r = run_one(sp);
    report(sp, r);
    return r;
  };
  // Best throughput over N identical runs (every run must still pass).
  auto run_best_of = [&](const Spec& sp, int trials) {
    RunStats best = run_one(sp);
    for (int i = 1; i < trials; ++i) {
      RunStats r = run_one(sp);
      all_ok = all_ok && r.ok;
      if (r.ok && r.events_per_sec > best.events_per_sec) best = r;
    }
    report(sp, best);
    return best;
  };

  // Backend A/B at a small rank count (the thread backend need not scale).
  double fiber_eps = 0, thread_eps = 0;
  if (ab_ranks > 0) {
    Spec sp = base;
    sp.workload = "token_ring";
    sp.ranks = ab_ranks;
    sp.rounds = ab_rounds;
    RunStats fiber = run_best_of(sp, ab_trials);
    fiber_eps = fiber.events_per_sec;
    sp.thread_backend = true;
    RunStats threads = run_best_of(sp, ab_trials);
    thread_eps = threads.events_per_sec;
  }

  // Weak scaling, no churn.
  for (int ranks : tr_ranks) {
    Spec sp = base;
    sp.workload = "token_ring";
    sp.ranks = ranks;
    RunStats r = run_and_report(sp);
    remember(tr_makespans, ranks, r.makespan_s);
  }
  for (int ranks : cg_ranks) {
    Spec sp = base;
    sp.workload = "cg";
    sp.ranks = ranks;
    run_and_report(sp);
  }

  // Churn runs: Poisson kills sized off the churn-free makespan, traced and
  // audited in-process.
  for (int ranks : churn_ranks) {
    Spec sp = base;
    sp.workload = "token_ring";
    sp.ranks = ranks;
    double ref = lookup(tr_makespans, ranks);
    if (ref <= 0) {
      // This rank count wasn't in the scaling sweep: run the churn-free
      // reference now so the fault window actually lands mid-run.
      RunStats r = run_and_report(sp);
      remember(tr_makespans, ranks, r.makespan_s);
      ref = r.makespan_s;
    }
    sp.churn = true;
    sp.ref_makespan_s = ref;
    run_and_report(sp);
  }

  double ab_speedup = thread_eps > 0 ? fiber_eps / thread_eps : 0;
  if (json.active()) {
    json.printf(
        "{\n  \"sim\": %s,\n"
        "  \"backend_ab\": {\"ranks\": %d, \"fiber_events_per_sec\": %.0f, "
        "\"thread_events_per_sec\": %.0f, \"speedup\": %.2f},\n"
        "  \"all_ok\": %s,\n  \"audits_pass\": %s,\n"
        "  \"scenarios\": [\n%s\n  ]\n}\n",
        bench::sim_json_object().c_str(), ab_ranks, fiber_eps, thread_eps,
        ab_speedup, all_ok ? "true" : "false",
        all_audits_pass ? "true" : "false", rows_json.c_str());
  } else {
    std::printf("%s", table.render().c_str());
    if (ab_speedup > 0) {
      std::printf("\nfiber backend speedup over threads at %d ranks: %.2fx "
                  "(target >= 3x)\n",
                  ab_ranks, ab_speedup);
    }
  }
  if (!all_ok || !all_audits_pass) {
    std::fprintf(stderr, "bench_scale: %s\n",
                 !all_ok ? "a scenario failed" : "a churn audit failed");
    return 1;
  }
  return 0;
}
