// Ablations of the design choices DESIGN.md calls out: what each V2
// mechanism and each network-model parameter contributes.
//
//   1. The WAITLOGGED gate (no send before the event logger acknowledged
//      pending reception events): the paper attributes V2's 0-byte latency
//      (237 vs 77 us) mostly to this synchronization. Running without the
//      gate is NOT fault-safe; it isolates the latency cost.
//   2. Daemon chunk size: chunk-level TX/RX interleaving is what gives V2
//      full duplex on the fig. 9 pattern; huge chunks degenerate to P4-like
//      whole-message blocking.
//   3. TCP window: the flow-control depth behind P4's fig. 9 stall.
//   4. Local pipe bandwidth: the app<->daemon copy cost that separates V2's
//      large-message bandwidth from P4's.
#include <memory>

#include "apps/kernels.hpp"
#include "apps/pingpong.hpp"
#include "bench_util.hpp"

using namespace mpiv;

namespace {

double pingpong_rtt_us(runtime::JobConfig cfg, std::size_t bytes) {
  runtime::JobResult res = run_job(cfg, [bytes](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::PingPongApp>(bytes, 10);
  });
  return res.success ? bench::result_f64(res) / 1e3 : -1;
}

double nonblocking_bw(runtime::JobConfig cfg, std::size_t bytes) {
  runtime::JobResult res = run_job(cfg, [bytes](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::NonblockingPatternApp>(bytes, 10, 5);
  });
  if (!res.success) return -1;
  return 20.0 * static_cast<double>(bytes) /
         (bench::result_f64(res) / 1e9) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  (void)opts;
  bench::print_header("Design-choice ablations",
                      "attribution of V2's costs and advantages");

  // ---- 1. WAITLOGGED gate ----
  {
    runtime::JobConfig v2;
    v2.nprocs = 2;
    v2.device = runtime::DeviceKind::kV2;
    runtime::JobConfig nogate = v2;
    nogate.v2_gate_sends = false;

    TextTable t({"config", "0-byte RTT us", "CG-A-8 time"});
    auto cg_time = [](runtime::JobConfig cfg) {
      cfg.nprocs = 8;
      runtime::JobResult r =
          run_job(cfg, apps::kernel_factory("cg", apps::NasClass::kA));
      return r.success ? format_duration(r.makespan) : std::string("FAILED");
    };
    t.add_row({"V2 (gated, fault-safe)",
               format_double(pingpong_rtt_us(v2, 0), 1), cg_time(v2)});
    t.add_row({"V2 without WAITLOGGED (unsafe)",
               format_double(pingpong_rtt_us(nogate, 0), 1), cg_time(nogate)});
    runtime::JobConfig p4 = v2;
    p4.device = runtime::DeviceKind::kP4;
    t.add_row({"P4 (reference)", format_double(pingpong_rtt_us(p4, 0), 1),
               cg_time(p4)});
    std::printf("\n[1] event-logger acknowledgement gate\n%s", t.render().c_str());
  }

  // ---- 2. daemon chunk size on the fig. 9 pattern ----
  {
    TextTable t({"daemon chunk", "V2 agg bandwidth MB/s @64KB"});
    for (std::uint32_t chunk : {4u * 1024, 16u * 1024, 64u * 1024,
                                256u * 1024}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kV2;
      cfg.net_params.daemon_chunk_bytes = chunk;
      t.add_row({format_bytes(chunk),
                 format_double(nonblocking_bw(cfg, 65536), 2)});
    }
    std::printf("\n[2] chunk-level duplex (fig. 9 pattern)\n%s",
                t.render().c_str());
  }

  // ---- 3. TCP window on P4's fig. 9 behaviour ----
  {
    TextTable t({"tcp window", "P4 agg bandwidth MB/s @64KB"});
    for (std::uint32_t w : {16u * 1024, 64u * 1024, 256u * 1024,
                            1024u * 1024}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kP4;
      cfg.net_params.tcp_window_bytes = w;
      t.add_row({format_bytes(w), format_double(nonblocking_bw(cfg, 65536), 2)});
    }
    std::printf("\n[3] flow-control window (P4 inline sends)\n%s",
                t.render().c_str());
  }

  // ---- 4. pipe bandwidth on V2 large-message bandwidth ----
  {
    TextTable t({"pipe bandwidth", "V2 1MB ping-pong MB/s"});
    for (double bw : {100e6, 300e6, 1000e6}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kV2;
      cfg.net_params.pipe_bandwidth_bps = bw;
      double rtt_us = pingpong_rtt_us(cfg, 1 << 20);
      t.add_row({format_double(bw / 1e6, 0) + " MB/s",
                 format_double((1 << 20) / (rtt_us / 2.0), 2)});
    }
    std::printf("\n[4] app<->daemon copy bandwidth\n%s", t.render().c_str());
  }
  return 0;
}
