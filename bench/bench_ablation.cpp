// Ablations of the design choices DESIGN.md calls out: what each V2
// mechanism and each network-model parameter contributes.
//
//   1. The WAITLOGGED gate (no send before the event logger acknowledged
//      pending reception events): the paper attributes V2's 0-byte latency
//      (237 vs 77 us) mostly to this synchronization. Running without the
//      gate is NOT fault-safe; it isolates the latency cost.
//   2. Daemon chunk size: chunk-level TX/RX interleaving is what gives V2
//      full duplex on the fig. 9 pattern; huge chunks degenerate to P4-like
//      whole-message blocking.
//   3. TCP window: the flow-control depth behind P4's fig. 9 stall.
//   4. Local pipe bandwidth: the app<->daemon copy cost that separates V2's
//      large-message bandwidth from P4's.
#include <memory>

#include "apps/kernels.hpp"
#include "apps/pingpong.hpp"
#include "bench_util.hpp"

using namespace mpiv;

namespace {

double pingpong_rtt_us(runtime::JobConfig cfg, std::size_t bytes) {
  runtime::JobResult res = run_job(cfg, [bytes](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::PingPongApp>(bytes, 10);
  });
  return res.success ? bench::result_f64(res) / 1e3 : -1;
}

double nonblocking_bw(runtime::JobConfig cfg, std::size_t bytes) {
  runtime::JobResult res = run_job(cfg, [bytes](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::NonblockingPatternApp>(bytes, 10, 5);
  });
  if (!res.success) return -1;
  return 20.0 * static_cast<double>(bytes) /
         (bench::result_f64(res) / 1e9) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  bench::JsonSink json(opts);
  if (!json.active()) {
    bench::print_header("Design-choice ablations",
                        "attribution of V2's costs and advantages");
  }
  std::string json_gate, json_chunk, json_window, json_pipe;

  // ---- 1. WAITLOGGED gate ----
  {
    runtime::JobConfig v2;
    v2.nprocs = 2;
    v2.device = runtime::DeviceKind::kV2;
    runtime::JobConfig nogate = v2;
    nogate.v2_gate_sends = false;
    runtime::JobConfig p4 = v2;
    p4.device = runtime::DeviceKind::kP4;

    TextTable t({"config", "0-byte RTT us", "CG-A-8 time"});
    auto cg_secs = [](runtime::JobConfig cfg) {
      cfg.nprocs = 8;
      runtime::JobResult r =
          run_job(cfg, apps::kernel_factory("cg", apps::NasClass::kA));
      return r.success ? to_seconds(r.makespan) : -1.0;
    };
    struct GateRow {
      const char* name;
      runtime::JobConfig cfg;
    };
    const GateRow grows[] = {{"V2 (gated, fault-safe)", v2},
                             {"V2 without WAITLOGGED (unsafe)", nogate},
                             {"P4 (reference)", p4}};
    for (const GateRow& g : grows) {
      double rtt = pingpong_rtt_us(g.cfg, 0);
      double cg = cg_secs(g.cfg);
      t.add_row({g.name, format_double(rtt, 1),
                 cg >= 0 ? format_double(cg, 3) + " s" : "FAILED"});
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"config\": \"%s\", \"rtt_0b_us\": %.2f, "
                    "\"cg_a8_s\": %.4f}",
                    json_gate.empty() ? "" : ",\n", g.name, rtt, cg);
      json_gate += buf;
    }
    if (!json.active()) {
      std::printf("\n[1] event-logger acknowledgement gate\n%s",
                  t.render().c_str());
    }
  }

  // ---- 2. daemon chunk size on the fig. 9 pattern ----
  {
    TextTable t({"daemon chunk", "V2 agg bandwidth MB/s @64KB"});
    for (std::uint32_t chunk : {4u * 1024, 16u * 1024, 64u * 1024,
                                256u * 1024}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kV2;
      cfg.net_params.daemon_chunk_bytes = chunk;
      double bw = nonblocking_bw(cfg, 65536);
      t.add_row({format_bytes(chunk), format_double(bw, 2)});
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"chunk_bytes\": %u, \"bandwidth_mbps\": %.2f}",
                    json_chunk.empty() ? "" : ",\n", chunk, bw);
      json_chunk += buf;
    }
    if (!json.active()) {
      std::printf("\n[2] chunk-level duplex (fig. 9 pattern)\n%s",
                  t.render().c_str());
    }
  }

  // ---- 3. TCP window on P4's fig. 9 behaviour ----
  {
    TextTable t({"tcp window", "P4 agg bandwidth MB/s @64KB"});
    for (std::uint32_t w : {16u * 1024, 64u * 1024, 256u * 1024,
                            1024u * 1024}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kP4;
      cfg.net_params.tcp_window_bytes = w;
      double bw = nonblocking_bw(cfg, 65536);
      t.add_row({format_bytes(w), format_double(bw, 2)});
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"window_bytes\": %u, \"bandwidth_mbps\": %.2f}",
                    json_window.empty() ? "" : ",\n", w, bw);
      json_window += buf;
    }
    if (!json.active()) {
      std::printf("\n[3] flow-control window (P4 inline sends)\n%s",
                  t.render().c_str());
    }
  }

  // ---- 4. pipe bandwidth on V2 large-message bandwidth ----
  {
    TextTable t({"pipe bandwidth", "V2 1MB ping-pong MB/s"});
    for (double bw : {100e6, 300e6, 1000e6}) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = runtime::DeviceKind::kV2;
      cfg.net_params.pipe_bandwidth_bps = bw;
      double rtt_us = pingpong_rtt_us(cfg, 1 << 20);
      double mbps = (1 << 20) / (rtt_us / 2.0);
      t.add_row({format_double(bw / 1e6, 0) + " MB/s",
                 format_double(mbps, 2)});
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"pipe_bw_mbps\": %.0f, \"bandwidth_mbps\": %.2f}",
                    json_pipe.empty() ? "" : ",\n", bw / 1e6, mbps);
      json_pipe += buf;
    }
    if (!json.active()) {
      std::printf("\n[4] app<->daemon copy bandwidth\n%s", t.render().c_str());
    }
  }

  if (json.active()) {
    json.printf(
        "{\n  \"sim\": %s,\n  \"waitlogged_gate\": [\n%s\n  ],\n"
        "  \"daemon_chunk\": [\n%s\n  ],\n"
        "  \"tcp_window\": [\n%s\n  ],\n"
        "  \"pipe_bandwidth\": [\n%s\n  ]\n}\n",
        bench::sim_json_object().c_str(), json_gate.c_str(), json_chunk.c_str(), json_window.c_str(),
        json_pipe.c_str());
  }
  return 0;
}
