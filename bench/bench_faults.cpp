// Figure 11: BT-A on 4 computing nodes (plus one reliable node for the
// Event Logger / Checkpoint Server / Scheduler) with continuous
// checkpointing under a random-node policy, as the number of faults
// injected during the execution grows from 0 to 9.
//
// Expected shape: negligible checkpoint overhead at 0 faults, smooth
// degradation with the fault count, and an execution time below 2x the
// fault-free reference even at 9 faults. Fault spacing is scaled to the
// run length (the paper used ~1 fault / 45 s over a ~7 min run).
#include "apps/kernels.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int nprocs = static_cast<int>(opts.get_int("nprocs", 4));
  auto fault_counts = opts.get_int_list("faults", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));
  // The paper's BT-A-4 runs ~7 minutes; our scaled BT-A runs seconds, which
  // would make each checkpoint image disproportionally expensive. Extra
  // iterations restore a paper-like ratio of work to image size.
  int iters = static_cast<int>(opts.get_int("iters", 24));
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("BT-A under faults with continuous checkpointing",
                        "Figure 11 (execution time vs number of faults)");
  }

  apps::AdiApp::Params params = apps::AdiApp::Params::bt_for_class(apps::NasClass::kA);
  params.iters = iters;
  runtime::AppFactory factory = [params](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::AdiApp>(apps::AdiApp::Variant::kBT, params);
  };

  // Plain reference without any fault-tolerance activity.
  runtime::JobConfig base;
  base.nprocs = nprocs;
  base.device = runtime::DeviceKind::kV2;
  runtime::JobResult ref = run_job(base, factory);
  if (!ref.success) {
    std::printf("reference FAILED\n");
    return 1;
  }
  double ref_s = to_seconds(ref.makespan);
  if (!json.active()) {
    std::printf("reference (no checkpoints, no faults): %.3f s\n", ref_s);
  }

  SimDuration fault_interval = ref.makespan / 10;

  TextTable table({"faults", "time", "vs reference", "ckpts stored",
                   "replayed msgs", "restarts"});
  std::string json_rows;
  for (std::int64_t nf : fault_counts) {
    runtime::JobConfig cfg = base;
    cfg.checkpointing = true;
    cfg.ckpt_policy = services::PolicyKind::kRandom;
    cfg.ckpt_period = 0;  // "the system is always checkpointing a node"
    cfg.first_ckpt_after = fault_interval / 2;
    cfg.restart_delay = milliseconds(100);
    cfg.seed = seed;
    cfg.time_limit = seconds(3600);
    if (nf > 0) {
      cfg.fault_plan = faults::FaultPlan::periodic_random(
          static_cast<int>(nf), fault_interval, fault_interval, nprocs, seed + nf);
    }
    runtime::JobResult res = run_job(cfg, factory);
    if (!res.success) {
      std::printf("faults=%lld FAILED\n", static_cast<long long>(nf));
      continue;
    }
    double secs = to_seconds(res.makespan);
    table.add_row({std::to_string(nf), format_double(secs, 3) + " s",
                   format_double(secs / ref_s, 2),
                   std::to_string(res.checkpoints_stored),
                   std::to_string(res.daemon_stats.replayed_deliveries),
                   std::to_string(res.restarts)});
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s    {\"faults\": %lld, \"time_s\": %.4f, "
                  "\"vs_reference\": %.3f, \"ckpts_stored\": %llu, "
                  "\"replayed_msgs\": %llu, \"restarts\": %d}",
                  json_rows.empty() ? "" : ",\n", static_cast<long long>(nf),
                  secs, secs / ref_s,
                  static_cast<unsigned long long>(res.checkpoints_stored),
                  static_cast<unsigned long long>(
                      res.daemon_stats.replayed_deliveries),
                  res.restarts);
    json_rows += buf;
  }
  // Event-logger replication: the cost of quorum-acked logging (a 2f+1
  // replica group instead of a single logger) and the behaviour when one
  // replica is killed mid-run and never revived.
  runtime::JobConfig q3 = base;
  q3.el_replication = 3;
  runtime::JobResult quorum3 = run_job(q3, factory);
  double quorum3_s = quorum3.success ? to_seconds(quorum3.makespan) : -1.0;

  q3.fault_plan = faults::FaultPlan::service_kill(
      ref.makespan / 3, faults::FaultTarget::kEventLogger, 1,
      /*revive=*/false);
  q3.time_limit = seconds(3600);
  runtime::JobResult elkill = run_job(q3, factory);
  double elkill_s = elkill.success ? to_seconds(elkill.makespan) : -1.0;

  if (json.active()) {
    json.printf(
        "{\n  \"sim\": %s,\n  \"reference_s\": %.4f,\n  \"faults\": [\n%s\n  ],\n"
        "  \"el\": {\"replication\": 3, \"single_el_s\": %.4f, "
        "\"quorum3_s\": %.4f, \"quorum_overhead\": %.3f, "
        "\"el_kill_s\": %.4f, \"el_kill_ok\": %s, "
        "\"quorum_waits\": %llu, \"replica_retries\": %llu}\n}\n",
        bench::sim_json_object().c_str(), ref_s, json_rows.c_str(), ref_s, quorum3_s, quorum3_s / ref_s,
        elkill_s, elkill.success ? "true" : "false",
        static_cast<unsigned long long>(elkill.daemon_stats.el_quorum_waits),
        static_cast<unsigned long long>(
            elkill.daemon_stats.el_replica_retries));
    return 0;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper: <2x the reference time at 9 faults; smooth degradation.\n");
  std::printf(
      "\nEvent-logger replication (no checkpoints, no compute faults):\n"
      "  single logger          : %.3f s\n"
      "  2f+1 quorum (r=3)      : %.3f s  (%.2fx)\n"
      "  r=3, one replica killed: %.3f s  (%s; quorum waits %llu, "
      "replica retries %llu)\n",
      ref_s, quorum3_s, quorum3_s / ref_s, elkill_s,
      elkill.success ? "completed" : "FAILED",
      static_cast<unsigned long long>(elkill.daemon_stats.el_quorum_waits),
      static_cast<unsigned long long>(elkill.daemon_stats.el_replica_retries));
  return 0;
}
