// Figures 5 & 6: ping-pong bandwidth and latency for MPICH-P4, MPICH-V1
// and MPICH-V2, plus the per-message wire-message counts behind the
// paper's "six TCP messages with V2, two with P4" observation (§5.1).
//
// Expected shape: V2 bandwidth close to P4 for large messages; V1 about
// half of P4 (every payload crosses two serialized streams); V2 0-byte
// latency about 3x P4 (two local pipe hops plus the event-logger
// round-trip gating each send).
#include <algorithm>
#include <memory>

#include "apps/pingpong.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto sizes = opts.get_int_list(
      "sizes", {0, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});
  int reps = static_cast<int>(opts.get_int("reps", 10));
  auto devices = bench::devices_from_options(opts, "p4,v1,v2");
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("Ping-pong latency / bandwidth",
                        "Figures 5 and 6 (paper: P4 77us / 11.3 MB/s, "
                        "V2 237us / 10.7 MB/s, V1 ~2x slower than P4)");
  }

  TextTable table({"size", "device", "one-way latency", "bandwidth MB/s",
                   "wire msgs/rt", "copied B/msg"});
  std::string json_rows;
  for (std::int64_t size : sizes) {
    for (const std::string& dev : devices) {
      runtime::JobConfig cfg;
      cfg.nprocs = 2;
      cfg.device = bench::device_from_name(dev);
      if (cfg.device == runtime::DeviceKind::kV1) cfg.channel_memories = 2;
      auto bytes = static_cast<std::size_t>(size);
      runtime::JobResult res =
          run_job(cfg, [bytes, reps](mpi::Rank, mpi::Rank) {
            return std::make_unique<apps::PingPongApp>(bytes, reps);
          });
      if (!res.success) {
        std::printf("  %s size=%lld FAILED\n", dev.c_str(),
                    static_cast<long long>(size));
        continue;
      }
      double rtt_ns = bench::result_f64(res);
      double one_way_s = rtt_ns / 2e9;
      double bw = one_way_s > 0
                      ? static_cast<double>(size) / one_way_s / 1e6
                      : 0.0;
      // Messages attributable to the measured ping-pongs (total divided by
      // warmup+measured rounds gives a fair per-round figure).
      double msgs_per_rt =
          static_cast<double>(res.wire.messages) / (reps + 2);
      // Datapath copy discipline: payload bytes memcpy'd anywhere in the
      // stack (devices + V2 daemons) per channel block sent. P4 pushes
      // blocks straight onto the wire (~0); V1 pays the remote-log blob
      // copies; V2's zero-copy path leaves only the wire gather and the
      // deliberate Packet materialization.
      std::uint64_t copied = res.daemon_stats.bytes_copied;
      std::uint64_t blocks = 0;
      for (const runtime::RankResult& rr : res.ranks) {
        copied += rr.copies.bytes_copied;
        blocks += rr.copies.blocks_sent;
      }
      double copied_per_msg =
          static_cast<double>(copied) / static_cast<double>(std::max<std::uint64_t>(1, blocks));
      table.add_row({std::to_string(size), dev,
                     format_duration(static_cast<SimDuration>(rtt_ns / 2)),
                     format_double(bw, 2), format_double(msgs_per_rt, 1),
                     format_double(copied_per_msg, 0)});
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"size\": %lld, \"device\": \"%s\", "
                    "\"one_way_us\": %.2f, \"bandwidth_mbps\": %.2f, "
                    "\"wire_msgs_per_rt\": %.1f, \"copied_bytes_per_msg\": %.0f}",
                    json_rows.empty() ? "" : ",\n", static_cast<long long>(size),
                    dev.c_str(), rtt_ns / 2e3, bw, msgs_per_rt, copied_per_msg);
      json_rows += buf;
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"pingpong\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nNote: wire msgs/round-trip includes protocol-layer framing; the\n"
      "paper counts 2 for P4 and 6 for V2 per 0-byte round trip (data x2,\n"
      "event x2, ack x2 — local pipe messages are not TCP).\n");
  return 0;
}
