// Tracing-overhead A/B bench: the same V2 jobs with the causal trace
// recorder disabled versus enabled, measured in host wall-clock time (the
// recorder costs real cycles, not simulated ones — virtual results are
// bit-identical by construction). Reports, per workload:
//   * host ms per run for both configurations and the % slowdown,
//   * events recorded and the recorder's ring footprint (bytes/event),
//   * recording rate (events per host second) with tracing on.
// The acceptance target is <= 5% slowdown on the ping-pong fast-wire
// profile; compiled out (-DMPIV_TRACE=OFF) the overhead is exactly zero
// because every MPIV_TRACE site folds to nothing.
//
// `json` emits a machine-readable summary for CI tracking.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/pingpong.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "trace/trace.hpp"

using namespace mpiv;

namespace {

/// The fast-wire profile from bench_datapath: per-event CPU costs dominate,
/// so recorder overhead has nowhere to hide.
net::NetParams fast_profile() {
  net::NetParams p;
  p.wire_latency = microseconds(5);
  p.bandwidth_bps = 1.25e9;
  p.per_msg_send_cpu = microseconds(3);
  p.per_msg_recv_cpu = microseconds(3);
  p.connect_rtt = microseconds(40);
  p.pipe_latency = microseconds(1);
  p.pipe_per_msg = microseconds(2);
  p.pipe_bandwidth_bps = 2e9;
  p.memcpy_bandwidth_bps = 2e9;
  p.daemon_chunk_bytes = 64 * 1024;
  p.tcp_window_bytes = 256 * 1024;
  return p;
}

struct Workload {
  std::string name;
  runtime::JobConfig cfg;
  runtime::AppFactory factory;
};

struct Measurement {
  double best_ms = 0;       // fastest of `iters` runs (noise floor)
  std::uint64_t events = 0; // trace events recorded (0 with tracing off)
};

Measurement measure(const Workload& w, bool traced, int iters) {
  Measurement m;
  m.best_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    runtime::JobConfig cfg = w.cfg;
    cfg.trace.enabled = traced;
    auto start = std::chrono::steady_clock::now();
    runtime::JobResult res = run_job(cfg, w.factory);
    auto stop = std::chrono::steady_clock::now();
    if (!res.success) return {};
    double ms = std::chrono::duration<double, std::milli>(stop - start).count();
    m.best_ms = std::min(m.best_ms, ms);
    m.events = static_cast<std::uint64_t>(
        res.counters.get("trace_events_recorded"));
  }
  return m;
}

struct Row {
  std::string name;
  Measurement off, on;
  double slowdown_pct = 0;
  double events_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int iters = static_cast<int>(opts.get_int("iters", 5));
  int pingpong_reps = static_cast<int>(opts.get_int("pingpong_reps", 200));
  int ring_rounds = static_cast<int>(opts.get_int("ring_rounds", 150));
  bench::JsonSink json(opts);

  std::vector<Workload> workloads;
  {
    Workload w;
    w.name = "pingpong";
    w.cfg.nprocs = 2;
    w.cfg.device = runtime::DeviceKind::kV2;
    w.cfg.net_params = fast_profile();
    w.factory = [pingpong_reps](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::PingPongApp>(std::size_t{65536},
                                                 pingpong_reps);
    };
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "token_ring";
    w.cfg.nprocs = 4;
    w.cfg.device = runtime::DeviceKind::kV2;
    w.cfg.net_params = fast_profile();
    w.factory = [ring_rounds](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::TokenRingApp>(ring_rounds, 512,
                                                  microseconds(10));
    };
    workloads.push_back(std::move(w));
  }

  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    Row row;
    row.name = w.name;
    // Interleaved A/B keeps thermal/cache drift out of one arm.
    row.off = measure(w, /*traced=*/false, iters);
    row.on = measure(w, /*traced=*/true, iters);
    row.slowdown_pct =
        row.off.best_ms > 0
            ? (row.on.best_ms / row.off.best_ms - 1.0) * 100.0
            : 0.0;
    row.events_per_sec = row.on.best_ms > 0
                             ? static_cast<double>(row.on.events) /
                                   (row.on.best_ms / 1000.0)
                             : 0.0;
    rows.push_back(std::move(row));
  }

  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"compiled_in\": %s,\n  \"bytes_per_event\": %zu,\n",
                bench::sim_json_object().c_str(),
                trace::kCompiled ? "true" : "false",
                sizeof(trace::TraceEvent));
    json.printf("  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json.printf(
          "    {\"name\": \"%s\", \"off_ms\": %.3f, \"on_ms\": %.3f, "
          "\"slowdown_pct\": %.2f, \"events\": %llu, "
          "\"events_per_host_sec\": %.0f}%s\n",
          r.name.c_str(), r.off.best_ms, r.on.best_ms, r.slowdown_pct,
          static_cast<unsigned long long>(r.on.events), r.events_per_sec,
          i + 1 < rows.size() ? "," : "");
    }
    json.printf("  ]\n}\n");
    return 0;
  }

  bench::print_header("Causal trace recorder overhead A/B",
                      "observability satellite: <= 5% slowdown traced, "
                      "zero compiled out (-DMPIV_TRACE=OFF)");
  std::printf("trace compiled in: %s, %zu bytes/event\n\n",
              trace::kCompiled ? "yes" : "no", sizeof(trace::TraceEvent));
  TextTable table({"workload", "off ms", "on ms", "slowdown", "events",
                   "events/host-s"});
  for (const Row& r : rows) {
    table.add_row({r.name, format_double(r.off.best_ms, 3),
                   format_double(r.on.best_ms, 3),
                   format_double(r.slowdown_pct, 2) + "%",
                   std::to_string(r.on.events),
                   format_double(r.events_per_sec, 0)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
