// Recovery fast path A/B bench: the overlapped restart datapath (striped
// chunk fetch, EL event download and Restart1 fan-out issued concurrently,
// replay pipelined against the resend stream, batched scatter-gather
// resends) versus the serialized ablation (fetch, then download, then
// fan-out; see JobConfig::v2_serial_restart).
//
// Workload: an iterative checkpointing ring (IterCkptApp) on the fast-wire
// profile; one rank is killed at crash_frac of the reference makespan and
// restarts from its striped image with a sender-log backlog to replay.
// The headline metric is virtual-time recovery latency — restart_recover_ns
// on the restarted daemon (restart t0 to replay drained) — with time to
// first send (restart_ttfs_ns), download/replay phase times and replay
// throughput alongside. Target: >= 1.5x lower recovery latency with the
// overlapped path at 64 KB-1 MB messages.
//
// Every run records a causal trace and is audited in-process
// (trace::audit); any violation — replay-order and at-most-once included —
// fails the bench. `json` emits the machine-readable summary for CI.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/iter_ckpt.hpp"
#include "bench_util.hpp"
#include "trace/audit.hpp"

using namespace mpiv;

namespace {

/// The fast-wire profile from bench_datapath, with the node-local paths
/// (daemon pipe, memcpy) at DDR-class 16 GB/s: this bench studies the
/// restart *pipeline* structure, so the wire — not the local copies
/// bench_datapath already covers — should be the bottleneck resource.
/// The wire:local ratio matters for the A/B: the serial arm drains the
/// resend backlog at wire pace while the overlapped arm drains its
/// pre-arrived stash at local pace, so the gap between the two paces is
/// exactly what the pipeline can harvest.
net::NetParams fast_profile() {
  net::NetParams p;
  p.wire_latency = microseconds(5);
  p.bandwidth_bps = 1.25e9;
  p.per_msg_send_cpu = microseconds(3);
  p.per_msg_recv_cpu = microseconds(3);
  p.connect_rtt = microseconds(40);
  p.pipe_latency = microseconds(1);
  p.pipe_per_msg = microseconds(2);
  p.pipe_bandwidth_bps = 16e9;
  p.memcpy_bandwidth_bps = 16e9;
  // 256 KB wire chunks: a 64 KB record plus its header still fits one
  // frame, and the scatter-gather resend batches have room to pack several
  // small payloads per frame.
  p.daemon_chunk_bytes = 256 * 1024;
  p.tcp_window_bytes = 1024 * 1024;
  return p;
}

struct Workload {
  apps::IterCkptApp::Params params;
  int nprocs = 4;
  /// Checkpoint cadence: periodic (not continuous) so the last stable
  /// image goes stale and a real SAVED backlog accumulates behind it —
  /// that backlog transfer is what the restart pipeline overlaps with
  /// the image fetch.
  SimDuration ckpt_period = 0;
};

struct Scenario {
  std::int64_t size = 0;   // ring token bytes (the replayed message size)
  double crash_frac = 0;   // kill point as a fraction of the reference run
  int stripes = 1;
  int replicas = 1;
};

struct ArmResult {
  bool ok = false;
  bool audit_pass = false;
  std::string audit_summary;
  double recover_s = 0;   // restart t0 -> replay drained (virtual)
  double ttfs_s = 0;      // restart t0 -> first payload send admitted
  double download_s = 0;  // EL download issue -> merged plan adopted
  double replay_s = 0;    // first replayed delivery -> plan drained
  double replay_mb_s = 0; // replayed payload bytes / replay_s
  std::uint64_t resend_batches = 0;
  std::uint64_t resend_batched_msgs = 0;
  double makespan_s = 0;
};

runtime::JobConfig base_config(const Workload& w, const Scenario& sc) {
  runtime::JobConfig cfg;
  cfg.nprocs = w.nprocs;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.net_params = fast_profile();
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kRoundRobin;
  cfg.ckpt_period = w.ckpt_period;
  cfg.first_ckpt_after = milliseconds(5);
  cfg.n_ckpt_servers = sc.stripes;
  cfg.n_event_loggers = sc.replicas;
  cfg.el_replication = sc.replicas;
  cfg.time_limit = seconds(3600);
  cfg.seed = 7;
  return cfg;
}

runtime::AppFactory make_factory(const Workload& w) {
  apps::IterCkptApp::Params params = w.params;
  return [params](mpi::Rank rank, mpi::Rank) {
    return std::make_unique<apps::IterCkptApp>(rank, params);
  };
}

ArmResult run_arm(const Workload& w, const Scenario& sc, SimTime kill_at,
                  bool serial) {
  runtime::JobConfig cfg = base_config(w, sc);
  cfg.v2_serial_restart = serial;
  cfg.fault_plan = faults::FaultPlan::simultaneous(kill_at, {1});
  cfg.restart_delay = milliseconds(1);  // isolate the recovery datapath
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = std::size_t{1} << 20;
  runtime::JobResult res = run_job(cfg, make_factory(w));
  ArmResult out;
  // Only a restart that really fetched an image and replayed a log
  // exercises the datapath under test; from-scratch runs don't count.
  if (!res.success || res.restarts == 0 ||
      res.daemon_stats.ckpt_fetch_bytes == 0 ||
      res.daemon_stats.restart_recover_ns == 0) {
    return out;
  }
  out.ok = true;
  const v2::DaemonStats& d = res.daemon_stats;
  out.recover_s = static_cast<double>(d.restart_recover_ns) / 1e9;
  out.ttfs_s = static_cast<double>(d.restart_ttfs_ns) / 1e9;
  out.download_s = static_cast<double>(d.restart_download_ns) / 1e9;
  out.replay_s = static_cast<double>(d.restart_replay_ns) / 1e9;
  out.replay_mb_s = d.restart_replay_ns > 0
                        ? static_cast<double>(d.replayed_bytes) / 1e6 /
                              (static_cast<double>(d.restart_replay_ns) / 1e9)
                        : 0;
  out.resend_batches = d.resend_batches;
  out.resend_batched_msgs = d.resend_batched_msgs;
  out.makespan_s = to_seconds(res.makespan);
  if (res.trace != nullptr) {
    trace::AuditReport report = trace::audit(*res.trace);
    out.audit_pass = report.pass;
    out.audit_summary = report.summary();
  } else {
    out.audit_summary = "no trace recorded";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  Workload w;
  w.nprocs = static_cast<int>(opts.get_int("nprocs", 4));
  // Workload shape: a 30 ms round-robin checkpoint cadence over 4 ranks
  // gives the victim exactly one early stable image, so the SAVED backlog
  // behind it grows deterministically with the kill point instead of
  // depending on where the kill lands in the checkpoint cycle; the 3 MB
  // static region keeps the image fetch comparable to the backlog drain,
  // which is the regime where overlapping the two pays.
  w.params.iters = static_cast<int>(opts.get_int("iters", 400));
  w.params.static_bytes =
      static_cast<std::size_t>(opts.get_int("static_kb", 3072)) * 1024;
  w.params.dynamic_bytes =
      static_cast<std::size_t>(opts.get_int("dynamic_kb", 128)) * 1024;
  w.params.compute_per_iter = microseconds(opts.get_int("compute_us", 0));
  w.ckpt_period = milliseconds(opts.get_int("ckpt_period_ms", 30));
  auto sizes = opts.get_int_list("sizes", {65536, 1048576});
  auto crash_pcts = opts.get_int_list("crash_pcts", {45, 75});
  auto stripes_list = opts.get_int_list("stripes", {1, 4});
  auto replicas_list = opts.get_int_list("replicas", {1, 3});
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header(
        "Recovery fast path A/B (overlapped vs serialized restart)",
        "tentpole metric: >= 1.5x lower virtual-time recovery latency at "
        "64 KB fast-wire");
  }

  TextTable table({"size", "crash", "stripes", "replicas", "serial s",
                   "overlap s", "speedup", "ttfs s", "replay MB/s", "audit"});
  std::string json_rows;
  bool all_audits_pass = true;
  double min_speedup_64k = 1e300;
  double headline_speedup_64k = 0;
  for (std::int64_t size : sizes) {
    w.params.token_bytes = static_cast<std::size_t>(size);
    for (std::int64_t stripes : stripes_list) {
      for (std::int64_t replicas : replicas_list) {
        Scenario sc;
        sc.size = size;
        sc.stripes = static_cast<int>(stripes);
        sc.replicas = static_cast<int>(replicas);
        // Reference run (no faults) places the kill point; its makespan
        // depends on the service layout, so it is per-scenario.
        runtime::JobResult ref = run_job(base_config(w, sc), make_factory(w));
        if (!ref.success) {
          std::fprintf(stderr, "reference size=%lld stripes=%lld FAILED\n",
                       static_cast<long long>(size),
                       static_cast<long long>(stripes));
          all_audits_pass = false;
          continue;
        }
        for (std::int64_t pct : crash_pcts) {
          sc.crash_frac = static_cast<double>(pct) / 100.0;
          SimTime kill_at =
              static_cast<SimTime>(sc.crash_frac *
                                   static_cast<double>(ref.makespan));
          ArmResult serial = run_arm(w, sc, kill_at, /*serial=*/true);
          ArmResult overlap = run_arm(w, sc, kill_at, /*serial=*/false);
          bool ok = serial.ok && overlap.ok;
          bool audits = ok && serial.audit_pass && overlap.audit_pass;
          if (!audits) {
            all_audits_pass = false;
            std::fprintf(
                stderr,
                "scenario size=%lld crash=%lld%% stripes=%d replicas=%d: %s\n",
                static_cast<long long>(size), static_cast<long long>(pct),
                sc.stripes, sc.replicas,
                !ok ? "run FAILED"
                    : (!serial.audit_pass ? serial.audit_summary.c_str()
                                          : overlap.audit_summary.c_str()));
            if (!ok) continue;
          }
          double speedup =
              overlap.recover_s > 0 ? serial.recover_s / overlap.recover_s : 0;
          double savings_s = serial.recover_s - overlap.recover_s;
          if (size == 65536) {
            min_speedup_64k = std::min(min_speedup_64k, speedup);
            headline_speedup_64k = std::max(headline_speedup_64k, speedup);
          }
          table.add_row({std::to_string(size),
                         std::to_string(pct) + "%",
                         std::to_string(sc.stripes),
                         std::to_string(sc.replicas),
                         format_double(serial.recover_s, 4),
                         format_double(overlap.recover_s, 4),
                         format_double(speedup, 2) + "x",
                         format_double(overlap.ttfs_s, 4),
                         format_double(overlap.replay_mb_s, 1),
                         audits ? "PASS" : "FAIL"});
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "%s    {\"size\": %lld, \"crash_frac\": %.2f, \"stripes\": %d, "
              "\"replicas\": %d, \"serial_recover_s\": %.6f, "
              "\"overlap_recover_s\": %.6f, \"speedup\": %.3f, "
              "\"overlap_savings_s\": %.6f, \"overlap_ttfs_s\": %.6f, "
              "\"serial_ttfs_s\": %.6f, \"download_s\": %.6f, "
              "\"replay_s\": %.6f, \"replay_mb_s\": %.1f, "
              "\"resend_batches\": %llu, \"resend_batched_msgs\": %llu, "
              "\"audit\": \"%s\"}",
              json_rows.empty() ? "" : ",\n", static_cast<long long>(size),
              sc.crash_frac, sc.stripes, sc.replicas, serial.recover_s,
              overlap.recover_s, speedup, savings_s, overlap.ttfs_s,
              serial.ttfs_s, overlap.download_s, overlap.replay_s,
              overlap.replay_mb_s,
              static_cast<unsigned long long>(overlap.resend_batches),
              static_cast<unsigned long long>(overlap.resend_batched_msgs),
              audits ? "pass" : "FAIL");
          json_rows += buf;
        }
      }
    }
  }

  if (min_speedup_64k == 1e300) min_speedup_64k = 0;
  // The headline is the 64 KB scenario with the longest serialized fetch
  // (1 stripe): that is where the overlap has the most to hide. Striped
  // fetches are already short, so their overlap window — and speedup — is
  // structurally smaller; the sweep shows both.
  if (json.active()) {
    json.printf(
        "{\n  \"sim\": %s,\n  \"nprocs\": %d,\n"
        "  \"headline_speedup_64k\": %.3f,\n"
        "  \"min_speedup_64k\": %.3f,\n"
        "  \"audits_pass\": %s,\n  \"scenarios\": [\n%s\n  ]\n}\n",
        bench::sim_json_object().c_str(), w.nprocs, headline_speedup_64k,
        min_speedup_64k,
        all_audits_pass ? "true" : "false", json_rows.c_str());
  } else {
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nspeedup at 64 KB: best %.2fx, worst %.2fx (target >= 1.5x on the "
        "unstriped fetch)\n",
        headline_speedup_64k, min_speedup_64k);
  }
  return all_audits_pass ? 0 : 1;
}
