// Shared scaffolding for the paper-reproduction benches.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/options.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "runtime/job.hpp"

namespace mpiv::bench {

/// Machine-readable output target. Every bench accepts
///   json                  -> JSON summary on stdout
///   --json <path>         -> JSON summary written to <path>
/// (equivalently json=<path>); without the option the sink is inactive and
/// the bench prints its human tables.
class JsonSink {
 public:
  explicit JsonSink(const Options& opts) {
    if (!opts.has("json")) return;
    std::string v = opts.get("json");
    if (v.empty() || v == "true" || v == "1" || v == "yes") {
      f_ = stdout;
    } else {
      f_ = std::fopen(v.c_str(), "w");
      if (f_ == nullptr) throw ConfigError("cannot open json output: " + v);
      owned_ = true;
      path_ = v;
    }
  }
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;
  ~JsonSink() {
    if (owned_ && f_ != nullptr) {
      std::fclose(f_);
      std::fprintf(stderr, "json written to %s\n", path_.c_str());
    }
  }

  [[nodiscard]] bool active() const { return f_ != nullptr; }

  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(f_, fmt, ap);
    va_end(ap);
  }

 private:
  std::FILE* f_ = nullptr;
  bool owned_ = false;
  std::string path_;
};

inline runtime::DeviceKind device_from_name(const std::string& name) {
  if (name == "p4") return runtime::DeviceKind::kP4;
  if (name == "v1") return runtime::DeviceKind::kV1;
  if (name == "v2") return runtime::DeviceKind::kV2;
  throw ConfigError("unknown device: " + name);
}

inline std::vector<std::string> devices_from_options(const Options& opts,
                                                     const std::string& def) {
  std::string s = opts.get("devices", def);
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Reads the single f64 that micro-apps report via App::result().
inline double result_f64(const runtime::JobResult& res, int rank = 0) {
  Reader r(res.ranks[static_cast<std::size_t>(rank)].output);
  return r.f64();
}

/// Peak resident set size of this process in bytes (VmHWM), or 0 when
/// /proc is unavailable.
inline std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  unsigned long long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kib) * 1024;
}

/// The engine-side scale counters accumulated over every job this bench ran
/// (events executed, events/sec, fiber switches and stack memory, buffer
/// pool hit rate, peak RSS), as one JSON object for a top-level "sim" key.
inline std::string sim_json_object() {
  CounterRegistry reg = runtime::sim_tally();
  double wall =
      static_cast<double>(reg.get("host_wall_ns")) / 1e9;
  reg.add("host_events_per_sec",
          wall > 0.0 ? static_cast<std::int64_t>(
                           static_cast<double>(reg.get("sim_events_executed")) /
                           wall)
                     : 0);
  BufferPool::Stats bp = BufferPool::global().stats();
  reg.add("buffer_pool_rents", static_cast<std::int64_t>(bp.rents));
  reg.add("buffer_pool_rent_hits", static_cast<std::int64_t>(bp.rent_hits));
  reg.add("peak_rss_bytes", static_cast<std::int64_t>(peak_rss_bytes()),
          MergeKind::kMax);
  return reg.json_object();
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace mpiv::bench
