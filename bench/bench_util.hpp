// Shared scaffolding for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "runtime/job.hpp"

namespace mpiv::bench {

inline runtime::DeviceKind device_from_name(const std::string& name) {
  if (name == "p4") return runtime::DeviceKind::kP4;
  if (name == "v1") return runtime::DeviceKind::kV1;
  if (name == "v2") return runtime::DeviceKind::kV2;
  throw ConfigError("unknown device: " + name);
}

inline std::vector<std::string> devices_from_options(const Options& opts,
                                                     const std::string& def) {
  std::string s = opts.get("devices", def);
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Reads the single f64 that micro-apps report via App::result().
inline double result_f64(const runtime::JobResult& res, int rank = 0) {
  Reader r(res.ranks[static_cast<std::size_t>(rank)].output);
  return r.f64();
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace mpiv::bench
