// Figure 10: re-execution performance. An asynchronous token ring runs on
// 8 computing nodes (checkpointing disabled); x nodes are killed near the
// end and restart from the beginning, replaying their receptions from the
// sender logs.
//
// Expected shape: one restart completes in about *half* the reference time
// (only receptions are replayed — the restarted rank's sends are
// suppressed, and no event logging happens during replay); with all 8
// nodes restarting the time approaches, but stays below, the reference.
// The kink between 64 KB and 128 KB is the eager -> rendezvous switch.
#include <memory>

#include "apps/token_ring.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto sizes = opts.get_int_list("sizes", {4096, 65536, 1048576});
  auto restarts = opts.get_int_list("restarts", {0, 1, 2, 3, 4});
  int nprocs = static_cast<int>(opts.get_int("nprocs", 8));
  int rounds = static_cast<int>(opts.get_int("rounds", 20));
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("Re-execution time of a token ring (8 nodes)",
                        "Figure 10 (x-restart curves vs message size)");
  }

  TextTable table({"msg size", "restarts", "re-exec time", "vs reference"});
  std::string json_rows;
  for (std::int64_t size : sizes) {
    auto factory = [size, rounds](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::TokenRingApp>(
          rounds, static_cast<std::size_t>(size));
    };
    // Reference run: no faults; its makespan is both the baseline and the
    // basis for placing the kill just before the ring completes.
    runtime::JobConfig ref_cfg;
    ref_cfg.nprocs = nprocs;
    ref_cfg.device = runtime::DeviceKind::kV2;
    runtime::JobResult ref = run_job(ref_cfg, factory);
    if (!ref.success) {
      std::printf("reference for size %lld FAILED\n",
                  static_cast<long long>(size));
      continue;
    }
    double ref_s = to_seconds(ref.makespan);
    for (std::int64_t x : restarts) {
      if (x == 0) {
        table.add_row({std::to_string(size), "0 (reference)",
                       format_double(ref_s, 3) + " s", "1.00"});
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s    {\"size\": %lld, \"restarts\": 0, "
                      "\"reexec_s\": %.4f, \"vs_reference\": 1.0}",
                      json_rows.empty() ? "" : ",\n",
                      static_cast<long long>(size), ref_s);
        json_rows += buf;
        continue;
      }
      // Kill x distinct ranks just before the end (the paper stops the
      // benchmark right before MPI_Finalize and restarts x nodes).
      std::vector<mpi::Rank> victims;
      for (int i = 0; i < x && i < nprocs; ++i) victims.push_back(i);
      runtime::JobConfig cfg = ref_cfg;
      SimTime kill_at = static_cast<SimTime>(0.95 * ref.makespan);
      cfg.fault_plan = faults::FaultPlan::simultaneous(kill_at, victims);
      cfg.restart_delay = milliseconds(1);  // isolate pure re-execution time
      cfg.time_limit = seconds(600);
      runtime::JobResult res = run_job(cfg, factory);
      if (!res.success) {
        std::printf("size %lld x=%lld FAILED\n", static_cast<long long>(size),
                    static_cast<long long>(x));
        continue;
      }
      double reexec_s = to_seconds(res.makespan - kill_at) - 0.001;
      table.add_row({std::to_string(size), std::to_string(x),
                     format_double(reexec_s, 3) + " s",
                     format_double(reexec_s / ref_s, 2)});
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"size\": %lld, \"restarts\": %lld, "
                    "\"reexec_s\": %.4f, \"vs_reference\": %.3f}",
                    json_rows.empty() ? "" : ",\n", static_cast<long long>(size),
                    static_cast<long long>(x), reexec_s, reexec_s / ref_s);
      json_rows += buf;
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"reexec\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
