// §4.6.2: checkpoint-scheduling policy comparison — round-robin vs
// adaptive ("received/sent" ratio ordering) over the classical
// communication schemes, using the purpose-built simulator as in the paper.
//
// Expected shape: the adaptive policy never schedules worse than
// round-robin (w.r.t. bandwidth utilization / storage), and is up to n
// times better for the asynchronous broadcast scheme.
#include "bench_util.hpp"
#include "services/sched_sim.hpp"

using namespace mpiv;
using services::SchedSimConfig;
using services::SchedSimResult;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int n = static_cast<int>(opts.get_int("nodes", 16));
  double bps = opts.get_double("rate_mbps", 4.0) * 1e6;
  double horizon = opts.get_double("horizon_s", 400.0);
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("Checkpoint scheduling policies",
                        "Section 4.6.2 (round-robin vs adaptive simulator)");
  }

  struct Scheme {
    const char* name;
    std::vector<std::vector<double>> rate;
  };
  const Scheme schemes[] = {
      {"point-to-point", services::scheme_point_to_point(n, bps)},
      {"all-to-all (sync)", services::scheme_all_to_all(n, bps)},
      {"async broadcast", services::scheme_broadcast(n, bps)},
      {"reduce", services::scheme_reduce(n, bps)},
  };

  TextTable table({"scheme", "policy", "ckpt traffic MB/s", "avg log MB",
                   "RR/adaptive traffic"});
  std::string json_rows;
  for (const Scheme& s : schemes) {
    SchedSimConfig cfg;
    cfg.nodes = n;
    cfg.rate = s.rate;
    cfg.horizon_s = horizon;
    double rr_traffic = 0;
    for (auto policy : {services::PolicyKind::kRoundRobin,
                        services::PolicyKind::kAdaptive}) {
      cfg.policy = policy;
      SchedSimResult res = run_sched_sim(cfg);
      bool rr = policy == services::PolicyKind::kRoundRobin;
      if (rr) rr_traffic = res.ckpt_traffic_bps;
      table.add_row(
          {s.name, rr ? "round-robin" : "adaptive",
           format_double(res.ckpt_traffic_bps / 1e6, 3),
           format_double(res.avg_log_bytes / 1e6, 2),
           rr ? "" : format_double(rr_traffic / res.ckpt_traffic_bps, 2)});
      char buf[224];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"scheme\": \"%s\", \"policy\": \"%s\", "
                    "\"ckpt_traffic_mbps\": %.4f, \"avg_log_mb\": %.3f}",
                    json_rows.empty() ? "" : ",\n", s.name,
                    rr ? "round-robin" : "adaptive",
                    res.ckpt_traffic_bps / 1e6, res.avg_log_bytes / 1e6);
      json_rows += buf;
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"ckpt_sched\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper: adaptive never provides a worse scheduling and is up to n\n"
      "times better for the asynchronous broadcast scheme (n = %d here).\n",
      n);
  return 0;
}
