// Micro-benchmarks (google-benchmark) for the hot paths of the runtime:
// wire serialization, sender-log bookkeeping, the simulation kernel, and a
// whole small V2 job as an end-to-end figure.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/token_ring.hpp"
#include "common/serialize.hpp"
#include "runtime/job.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "v2/sender_log.hpp"
#include "v2/wire.hpp"

namespace mpiv {
namespace {

void BM_SerializeEvent(benchmark::State& state) {
  v2::ReceptionEvent e{v2::ReceptionEvent::Kind::kDelivery, 3, 12345, 67890, 2};
  for (auto _ : state) {
    Writer w;
    v2::write_event(w, e);
    Buffer b = w.take();
    Reader r(b);
    benchmark::DoNotOptimize(v2::read_event(r));
  }
}
BENCHMARK(BM_SerializeEvent);

void BM_EncodeMsgRecord(benchmark::State& state) {
  v2::MsgRecord rec{
      42, SharedBuffer(Buffer(static_cast<std::size_t>(state.range(0))))};
  for (auto _ : state) {
    SharedBuffer b{v2::encode_msg_record(rec)};
    benchmark::DoNotOptimize(v2::decode_msg_record(b));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeMsgRecord)->Arg(1024)->Arg(65536);

void BM_SenderLogRecordPrune(benchmark::State& state) {
  for (auto _ : state) {
    v2::SenderLog log(4);
    for (int i = 0; i < 256; ++i) {
      log.record(i % 4, i, Buffer(128));
    }
    for (int d = 0; d < 4; ++d) log.prune(d, 200);
    benchmark::DoNotOptimize(log.total_bytes());
  }
}
BENCHMARK(BM_SenderLogRecordPrune);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [&count] { ++count; });
    }
    eng.run();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EngineEventThroughput);

void BM_FiberSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("p", [](sim::Context& ctx) {
      for (int i = 0; i < 100; ++i) ctx.sleep(1);
    });
    eng.run();
  }
}
BENCHMARK(BM_FiberSwitch);

void BM_SmallV2Job(benchmark::State& state) {
  for (auto _ : state) {
    runtime::JobConfig cfg;
    cfg.nprocs = 4;
    cfg.device = runtime::DeviceKind::kV2;
    auto res = runtime::run_job(cfg, [](mpi::Rank, mpi::Rank) {
      return std::make_unique<apps::TokenRingApp>(5, 256);
    });
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_SmallV2Job)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpiv

// Accept the repo-wide `--json <path>` convention by translating it into
// google-benchmark's --benchmark_out flags; everything else passes through.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    std::string path;
    if (a == "--json" || a == "json") {
      if (i + 1 < argc) path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      path = a.substr(7);
    } else if (a.rfind("json=", 0) == 0) {
      path = a.substr(5);
    } else {
      args.push_back(a);
      continue;
    }
    if (!path.empty() && path != "true") {
      args.push_back("--benchmark_out=" + path);
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back("--benchmark_format=json");
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
