// Figure 7: NAS Parallel Benchmark performance, MPICH-P4 vs MPICH-V2,
// classes A and B, up to 32 processors (25 for BT/SP).
//
// Expected shape (paper): CG and MG suffer badly under V2 (latency-bound,
// many small messages); FT reaches parity (few large messages); LU pays
// for logging pressure; SP and BT match P4 or beat it. Problem sizes are
// scaled down (DESIGN.md) but each kernel's communication character is
// preserved, so the V2/P4 ratio per kernel is the reproduced quantity.
#include "apps/kernels.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  std::string kernels = opts.get("kernels", "cg,mg,ft,lu,bt,sp");
  std::string classes = opts.get("classes", "A,B");
  int max_procs = static_cast<int>(opts.get_int("max_procs", 32));
  auto devices = bench::devices_from_options(opts, "p4,v2");
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("NAS kernels, P4 vs V2",
                        "Figure 7 (NPB 2.3 class A and B, up to 32 procs)");
  }

  TextTable table({"kernel", "class", "procs", "device", "time", "V2/P4"});
  std::string json_rows;
  std::size_t pos = 0;
  while (pos < kernels.size()) {
    auto comma = kernels.find(',', pos);
    if (comma == std::string::npos) comma = kernels.size();
    std::string kernel = kernels.substr(pos, comma - pos);
    pos = comma + 1;

    for (char cls_ch : classes) {
      if (cls_ch == ',') continue;
      apps::NasClass cls = cls_ch == 'A'   ? apps::NasClass::kA
                           : cls_ch == 'B' ? apps::NasClass::kB
                                           : apps::NasClass::kTest;
      // FT class B exceeded the paper's per-node logging budget (§5.2);
      // they do not report it, and we follow suit by default.
      if (kernel == "ft" && cls == apps::NasClass::kB &&
          !opts.get_bool("ft_b", false)) {
        continue;
      }
      for (int np : apps::kernel_proc_counts(kernel, max_procs)) {
        double p4_time = 0;
        for (const std::string& dev : devices) {
          runtime::JobConfig cfg;
          cfg.nprocs = np;
          cfg.device = bench::device_from_name(dev);
          runtime::JobResult res =
              run_job(cfg, apps::kernel_factory(kernel, cls));
          if (!res.success) {
            std::printf("  %s-%c-%d %s FAILED\n", kernel.c_str(), cls_ch, np,
                        dev.c_str());
            continue;
          }
          double secs = to_seconds(res.makespan);
          std::string ratio;
          if (dev == "p4") {
            p4_time = secs;
          } else if (p4_time > 0) {
            ratio = format_double(secs / p4_time, 2);
          }
          table.add_row({kernel, std::string(1, cls_ch), std::to_string(np),
                         dev, format_double(secs, 3) + " s", ratio});
          char buf[192];
          std::snprintf(buf, sizeof(buf),
                        "%s    {\"kernel\": \"%s\", \"class\": \"%c\", "
                        "\"procs\": %d, \"device\": \"%s\", \"time_s\": %.4f}",
                        json_rows.empty() ? "" : ",\n", kernel.c_str(), cls_ch,
                        np, dev.c_str(), secs);
          json_rows += buf;
        }
      }
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"nas\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper shape: V2/P4 >> 1 for CG and MG, ~1 for FT, >1 for LU,\n"
      "<=1 for BT and SP on larger process counts.\n");
  return 0;
}
