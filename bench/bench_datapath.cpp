// Zero-copy datapath A/B bench: the same V2 stack with the ref-counted
// payload path (default) versus the emulated pre-zero-copy path
// (legacy_datapath), on a network profile fast enough that memory copies
// matter (the paper's 100 Mb/s Ethernet hides them; a 10 GbE-class wire
// does not — copy discipline is what the tentpole buys on modern links).
//
// Reports, per message size:
//   * ping-pong bandwidth for both paths and the improvement,
//   * whole-payload TX copy passes per daemon send (target: 1, was 3),
//   * payload bytes memcpy'd per message on each path,
// plus the event-logger coalescing ratio (kAppend messages per delivery,
// target < 1) on the fig. 9 non-blocking pattern.
//
// `json` emits a machine-readable summary for CI tracking.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/pingpong.hpp"
#include "bench_util.hpp"

using namespace mpiv;

namespace {

/// 10 GbE-era profile: fast wire and pipe, era-realistic memory bandwidth.
net::NetParams fast_profile() {
  net::NetParams p;
  p.wire_latency = microseconds(5);
  p.bandwidth_bps = 1.25e9;
  p.per_msg_send_cpu = microseconds(3);
  p.per_msg_recv_cpu = microseconds(3);
  p.connect_rtt = microseconds(40);
  p.pipe_latency = microseconds(1);
  p.pipe_per_msg = microseconds(2);
  p.pipe_bandwidth_bps = 2e9;
  p.memcpy_bandwidth_bps = 2e9;
  p.daemon_chunk_bytes = 64 * 1024;
  p.tcp_window_bytes = 256 * 1024;
  return p;
}

struct PathResult {
  double bw_mbps = 0;
  double tx_copies_per_msg = 0;
  double bytes_copied_per_msg = 0;
};

PathResult run_pingpong(std::size_t bytes, int reps, bool legacy) {
  runtime::JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.net_params = fast_profile();
  cfg.v2_legacy_datapath = legacy;
  runtime::JobResult res = run_job(cfg, [bytes, reps](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::PingPongApp>(bytes, reps);
  });
  PathResult out;
  if (!res.success) return out;
  double one_way_s = bench::result_f64(res) / 2e9;
  out.bw_mbps =
      one_way_s > 0 ? static_cast<double>(bytes) / one_way_s / 1e6 : 0.0;
  const v2::DaemonStats& d = res.daemon_stats;
  std::uint64_t msgs = std::max<std::uint64_t>(1, d.sent_msgs);
  out.tx_copies_per_msg =
      static_cast<double>(d.payload_copies_tx) / static_cast<double>(msgs);
  std::uint64_t copied = d.bytes_copied;
  for (const runtime::RankResult& rr : res.ranks) {
    copied += rr.copies.bytes_copied;
  }
  out.bytes_copied_per_msg =
      static_cast<double>(copied) / static_cast<double>(msgs);
  return out;
}

double run_nonblocking_appends_per_delivery(bool legacy) {
  runtime::JobConfig cfg;
  cfg.nprocs = 2;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.net_params = fast_profile();
  cfg.v2_legacy_datapath = legacy;
  runtime::JobResult res = run_job(cfg, [](mpi::Rank, mpi::Rank) {
    return std::make_unique<apps::NonblockingPatternApp>(4096, 8, 20);
  });
  if (!res.success || res.daemon_stats.recv_msgs == 0) return -1.0;
  return static_cast<double>(res.daemon_stats.el_appends) /
         static_cast<double>(res.daemon_stats.recv_msgs);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto sizes = opts.get_int_list("sizes", {65536, 262144, 1048576});
  int reps = static_cast<int>(opts.get_int("reps", 10));
  bench::JsonSink json(opts);

  struct Row {
    std::int64_t size;
    PathResult legacy, zerocopy;
    double improvement_pct;
  };
  std::vector<Row> rows;
  for (std::int64_t size : sizes) {
    Row row;
    row.size = size;
    row.legacy = run_pingpong(static_cast<std::size_t>(size), reps, true);
    row.zerocopy = run_pingpong(static_cast<std::size_t>(size), reps, false);
    row.improvement_pct =
        row.legacy.bw_mbps > 0
            ? (row.zerocopy.bw_mbps / row.legacy.bw_mbps - 1.0) * 100.0
            : 0.0;
    rows.push_back(row);
  }
  double appends_legacy = run_nonblocking_appends_per_delivery(true);
  double appends_zerocopy = run_nonblocking_appends_per_delivery(false);

  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"pingpong\": [\n",
                bench::sim_json_object().c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json.printf(
          "    {\"size\": %lld, \"legacy_bw_mbps\": %.2f, "
          "\"zerocopy_bw_mbps\": %.2f, \"improvement_pct\": %.1f, "
          "\"legacy_tx_copies_per_msg\": %.2f, "
          "\"zerocopy_tx_copies_per_msg\": %.2f, "
          "\"legacy_bytes_copied_per_msg\": %.0f, "
          "\"zerocopy_bytes_copied_per_msg\": %.0f}%s\n",
          static_cast<long long>(r.size), r.legacy.bw_mbps, r.zerocopy.bw_mbps,
          r.improvement_pct, r.legacy.tx_copies_per_msg,
          r.zerocopy.tx_copies_per_msg, r.legacy.bytes_copied_per_msg,
          r.zerocopy.bytes_copied_per_msg, i + 1 < rows.size() ? "," : "");
    }
    json.printf("  ],\n");
    json.printf(
        "  \"el_appends_per_delivery\": {\"legacy\": %.3f, \"zerocopy\": "
        "%.3f}\n}\n",
        appends_legacy, appends_zerocopy);
    return 0;
  }

  bench::print_header("Zero-copy datapath A/B",
                      "tentpole metrics: TX copies/msg 3 -> 1, EL appends "
                      "per delivery < 1, bandwidth on a fast wire");
  TextTable table({"size", "legacy MB/s", "zerocopy MB/s", "improvement",
                   "tx copies/msg (old->new)", "copied B/msg (old->new)"});
  for (const Row& r : rows) {
    table.add_row(
        {std::to_string(r.size), format_double(r.legacy.bw_mbps, 2),
         format_double(r.zerocopy.bw_mbps, 2),
         format_double(r.improvement_pct, 1) + "%",
         format_double(r.legacy.tx_copies_per_msg, 2) + " -> " +
             format_double(r.zerocopy.tx_copies_per_msg, 2),
         format_double(r.legacy.bytes_copied_per_msg, 0) + " -> " +
             format_double(r.zerocopy.bytes_copied_per_msg, 0)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nEvent-logger coalescing (fig. 9 pattern, batch=8): "
      "%.3f kAppend/delivery legacy, %.3f zerocopy (target < 1)\n",
      appends_legacy, appends_zerocopy);
  return 0;
}
