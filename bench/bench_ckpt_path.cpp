// Incremental checkpoint datapath A/B bench: the chunked-delta /
// copy-on-write / striped pipeline (default) versus the legacy
// full-image blocking protocol, on an iterative app whose image is
// dominated by state that does not change between checkpoints.
//
// Reports:
//   * checkpoint bytes shipped per round (target: >= 2x reduction with
//     deltas once the first full image is stable) and the dedup ratio,
//   * app-visible stall per checkpoint (blocking full-image handoff vs
//     copy-on-write capture),
//   * restart fetch time and bytes, 1 stripe vs `stripes` stripes
//     (target: 4-stripe fetch < 0.5x the single-server time).
#include <memory>
#include <string>

#include "apps/iter_ckpt.hpp"
#include "bench_util.hpp"

using namespace mpiv;

namespace {

struct SteadyResult {
  bool ok = false;
  double ckpts = 0;              // checkpoints taken (all ranks)
  double bytes_per_round = 0;    // wire bytes shipped per checkpoint
  double dedup_ratio = 0;        // deduped / (sent + deduped)
  double stall_ms_per_ckpt = 0;  // app-visible stall per checkpoint
  double makespan_s = 0;
};

struct FetchResult {
  bool ok = false;
  double fetch_ms = 0;
  double fetch_mb = 0;
};

runtime::JobConfig base_config(int nprocs, bool full_image, int stripes,
                               std::uint64_t seed) {
  runtime::JobConfig cfg;
  cfg.nprocs = nprocs;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.checkpointing = true;
  cfg.ckpt_policy = services::PolicyKind::kRoundRobin;
  cfg.ckpt_period = 0;  // continuous: always checkpointing someone
  cfg.first_ckpt_after = milliseconds(50);
  cfg.v2_full_image_ckpt = full_image;
  cfg.n_ckpt_servers = stripes;
  cfg.seed = seed;
  cfg.time_limit = seconds(3600);
  return cfg;
}

runtime::AppFactory make_factory(const apps::IterCkptApp::Params& params,
                                 std::shared_ptr<std::vector<std::uint64_t>> stalls,
                                 std::shared_ptr<std::vector<std::uint64_t>> counts) {
  return [params, stalls, counts](mpi::Rank rank, mpi::Rank) {
    auto ri = static_cast<std::size_t>(rank);
    return std::make_unique<apps::IterCkptApp>(rank, params, &(*stalls)[ri],
                                               &(*counts)[ri]);
  };
}

SteadyResult run_steady(const apps::IterCkptApp::Params& params, int nprocs,
                        bool full_image, int stripes) {
  auto stalls = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(nprocs), 0);
  auto counts = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(nprocs), 0);
  runtime::JobConfig cfg = base_config(nprocs, full_image, stripes, 1);
  runtime::JobResult res =
      run_job(cfg, make_factory(params, stalls, counts));
  SteadyResult out;
  if (!res.success) return out;
  const v2::DaemonStats& d = res.daemon_stats;
  std::uint64_t stall_total = 0, ckpts = 0;
  for (std::uint64_t s : *stalls) stall_total += s;
  for (std::uint64_t c : *counts) ckpts += c;
  if (ckpts == 0) return out;
  out.ok = true;
  out.ckpts = static_cast<double>(ckpts);
  out.bytes_per_round =
      static_cast<double>(d.ckpt_bytes_sent) / static_cast<double>(ckpts);
  double touched = static_cast<double>(d.ckpt_bytes_sent + d.ckpt_bytes_deduped);
  out.dedup_ratio =
      touched > 0 ? static_cast<double>(d.ckpt_bytes_deduped) / touched : 0;
  out.stall_ms_per_ckpt =
      static_cast<double>(stall_total) / static_cast<double>(ckpts) / 1e6;
  out.makespan_s = to_seconds(res.makespan);
  return out;
}

/// Kill one rank late in the run and report its restart image fetch.
FetchResult run_fetch(const apps::IterCkptApp::Params& params, int nprocs,
                      bool full_image, int stripes) {
  auto stalls = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(nprocs), 0);
  auto counts = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(nprocs), 0);
  runtime::JobConfig cfg = base_config(nprocs, full_image, stripes, 2);
  runtime::AppFactory factory = make_factory(params, stalls, counts);
  // Reference run to find a kill time well past the first stable images.
  runtime::JobResult ref = run_job(cfg, factory);
  FetchResult out;
  if (!ref.success) return out;
  *stalls = std::vector<std::uint64_t>(static_cast<std::size_t>(nprocs), 0);
  *counts = std::vector<std::uint64_t>(static_cast<std::size_t>(nprocs), 0);
  cfg.fault_plan = faults::FaultPlan::simultaneous(
      static_cast<SimTime>(0.7 * ref.makespan), {1});
  runtime::JobResult res = run_job(cfg, factory);
  // Only count a restart that actually fetched an image from the
  // checkpoint servers — a from-scratch re-execution has no fetch path.
  if (!res.success || res.restarts == 0 ||
      res.daemon_stats.ckpt_fetch_bytes == 0) {
    return out;
  }
  out.ok = true;
  out.fetch_ms = static_cast<double>(res.daemon_stats.ckpt_fetch_ns) / 1e6;
  out.fetch_mb = static_cast<double>(res.daemon_stats.ckpt_fetch_bytes) / 1e6;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  int nprocs = static_cast<int>(opts.get_int("nprocs", 4));
  int stripes = static_cast<int>(opts.get_int("stripes", 4));
  apps::IterCkptApp::Params params;
  params.iters = static_cast<int>(opts.get_int("iters", 40));
  params.static_bytes =
      static_cast<std::size_t>(opts.get_int("static_kb", 2048)) * 1024;
  params.dynamic_bytes =
      static_cast<std::size_t>(opts.get_int("dynamic_kb", 128)) * 1024;
  // Long enough iterations that several checkpoint rounds complete per
  // rank: dedup only pays off from the second image onward, and the
  // restart fetch needs a stable image to find.
  params.compute_per_iter = milliseconds(opts.get_int("compute_ms", 40));
  bench::JsonSink json(opts);

  SteadyResult full = run_steady(params, nprocs, true, 1);
  SteadyResult delta1 = run_steady(params, nprocs, false, 1);
  SteadyResult deltaN = run_steady(params, nprocs, false, stripes);
  FetchResult fetch_full = run_fetch(params, nprocs, true, 1);
  FetchResult fetch1 = run_fetch(params, nprocs, false, 1);
  FetchResult fetchN = run_fetch(params, nprocs, false, stripes);

  double bytes_reduction =
      delta1.ok && full.ok && delta1.bytes_per_round > 0
          ? full.bytes_per_round / delta1.bytes_per_round
          : 0;
  double fetch_speedup = fetch1.ok && fetchN.ok && fetchN.fetch_ms > 0
                             ? fetch1.fetch_ms / fetchN.fetch_ms
                             : 0;

  if (json.active()) {
    auto steady_json = [&](const char* name, const SteadyResult& s) {
      json.printf(
          "  \"%s\": {\"ok\": %s, \"checkpoints\": %.0f, "
          "\"bytes_per_round\": %.0f, \"dedup_ratio\": %.4f, "
          "\"stall_ms_per_ckpt\": %.4f, \"makespan_s\": %.4f},\n",
          name, s.ok ? "true" : "false", s.ckpts, s.bytes_per_round,
          s.dedup_ratio, s.stall_ms_per_ckpt, s.makespan_s);
    };
    auto fetch_json = [&](const char* name, const FetchResult& f,
                          const char* tail) {
      json.printf(
          "  \"%s\": {\"ok\": %s, \"fetch_ms\": %.3f, \"fetch_mb\": %.3f}%s\n",
          name, f.ok ? "true" : "false", f.fetch_ms, f.fetch_mb, tail);
    };
    json.printf("{\n  \"sim\": %s,\n", bench::sim_json_object().c_str());
    steady_json("full_image", full);
    steady_json("delta_1stripe", delta1);
    steady_json("delta_striped", deltaN);
    json.printf("  \"stripes\": %d,\n", stripes);
    json.printf("  \"bytes_per_round_reduction\": %.2f,\n", bytes_reduction);
    json.printf("  \"fetch_speedup_striped\": %.2f,\n", fetch_speedup);
    fetch_json("restart_full_image", fetch_full, ",");
    fetch_json("restart_delta_1stripe", fetch1, ",");
    fetch_json("restart_delta_striped", fetchN, "");
    json.printf("}\n");
    return 0;
  }

  bench::print_header(
      "Incremental checkpoint datapath A/B",
      "tentpole metrics: delta bytes/round >= 2x smaller than full images, "
      "striped restart fetch < 0.5x single-server");
  TextTable t({"config", "ckpts", "bytes/round", "dedup", "stall ms/ckpt",
               "makespan"});
  auto steady_row = [&](const char* name, const SteadyResult& s) {
    if (!s.ok) {
      t.add_row({name, "FAILED", "", "", "", ""});
      return;
    }
    t.add_row({name, format_double(s.ckpts, 0),
               format_bytes(static_cast<std::uint64_t>(s.bytes_per_round)),
               format_double(s.dedup_ratio * 100, 1) + "%",
               format_double(s.stall_ms_per_ckpt, 3),
               format_double(s.makespan_s, 3) + " s"});
  };
  steady_row("full image, 1 server", full);
  steady_row("delta, 1 stripe", delta1);
  steady_row(("delta, " + std::to_string(stripes) + " stripes").c_str(),
             deltaN);
  std::printf("%s", t.render().c_str());
  std::printf("\ncheckpoint bytes/round reduction (full/delta): %.2fx\n",
              bytes_reduction);

  TextTable tf({"restart", "fetch time ms", "fetch MB"});
  auto fetch_row = [&](const char* name, const FetchResult& f) {
    tf.add_row({name, f.ok ? format_double(f.fetch_ms, 3) : "FAILED",
                f.ok ? format_double(f.fetch_mb, 3) : ""});
  };
  fetch_row("full image, 1 server", fetch_full);
  fetch_row("delta, 1 stripe", fetch1);
  fetch_row(("delta, " + std::to_string(stripes) + " stripes").c_str(),
            fetchN);
  std::printf("%s", tf.render().c_str());
  std::printf("striped fetch speedup vs 1 stripe: %.2fx\n", fetch_speedup);
  return 0;
}
