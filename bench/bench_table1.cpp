// Table 1: time spent inside MPI communication functions for BT-A-9 and
// CG-A-8, MPICH-P4 vs MPICH-V2.
//
// Expected shape: P4's MPI_(I)send dominates on BT (whole payloads pushed
// inline during Isend) while V2's Isend is a cheap hand-off to the daemon
// and the time shifts into MPI_Wait*; on CG, V2 inflates the total
// communication time (~3x in the paper) because every reception event must
// be acknowledged by the Event Logger before the next emission.
#include "apps/kernels.hpp"
#include "bench_util.hpp"

using namespace mpiv;

namespace {

SimDuration sum_over_ranks(const runtime::JobResult& res,
                           std::initializer_list<mpi::MpiFunc> funcs) {
  SimDuration total = 0;
  for (const auto& rr : res.ranks) {
    for (mpi::MpiFunc f : funcs) total += rr.profiler.total(f);
  }
  return total / static_cast<SimDuration>(res.ranks.size());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto devices = bench::devices_from_options(opts, "p4,v2");
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header(
        "Per-function decomposition of MPI communication time",
        "Table 1 (BT-A-9 and CG-A-8; per-process averages)");
  }
  std::string json_cases;

  struct Case {
    const char* kernel;
    apps::NasClass cls;
    const char* label;
    int np;
  };
  const Case cases[] = {{"bt", apps::NasClass::kA, "BT A 9", 9},
                        {"cg", apps::NasClass::kA, "CG A 8", 8}};

  for (const Case& c : cases) {
    if (!json.active()) std::printf("\n--- %s ---\n", c.label);
    TextTable table({"function", "P4", "V2"});
    std::map<std::string, std::map<std::string, SimDuration>> rows;
    std::map<std::string, SimDuration> totals;
    for (const std::string& dev : devices) {
      runtime::JobConfig cfg;
      cfg.nprocs = c.np;
      cfg.device = bench::device_from_name(dev);
      runtime::JobResult res = run_job(cfg, apps::kernel_factory(c.kernel, c.cls));
      if (!res.success) {
        std::printf("  %s FAILED\n", dev.c_str());
        continue;
      }
      using F = mpi::MpiFunc;
      rows["MPI_(I)send"][dev] = sum_over_ranks(res, {F::kSend, F::kIsend});
      rows["MPI_Irecv"][dev] = sum_over_ranks(res, {F::kIrecv, F::kRecv});
      rows["MPI_Wait*"][dev] = sum_over_ranks(res, {F::kWait, F::kWaitall});
      rows["(collectives)"][dev] = sum_over_ranks(
          res, {F::kBarrier, F::kBcast, F::kReduce, F::kAllreduce,
                F::kAlltoall, F::kAllgather, F::kGather, F::kScatter,
                F::kSendrecv});
      SimDuration total = 0;
      for (const auto& rr : res.ranks) total += rr.profiler.total_mpi_time();
      totals[dev] = total / static_cast<SimDuration>(res.ranks.size()) -
                    sum_over_ranks(res, {F::kInit, F::kFinalize});
    }
    std::string json_fns;
    for (const char* fn :
         {"MPI_(I)send", "MPI_Irecv", "MPI_Wait*", "(collectives)"}) {
      table.add_row({fn, format_duration(rows[fn]["p4"]),
                     format_duration(rows[fn]["v2"])});
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s      {\"function\": \"%s\", \"p4_s\": %.4f, "
                    "\"v2_s\": %.4f}",
                    json_fns.empty() ? "" : ",\n", fn,
                    to_seconds(rows[fn]["p4"]), to_seconds(rows[fn]["v2"]));
      json_fns += buf;
    }
    table.add_row({"Total comm time", format_duration(totals["p4"]),
                   format_duration(totals["v2"])});
    if (json.active()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"case\": \"%s\", \"total_p4_s\": %.4f, "
                    "\"total_v2_s\": %.4f, \"functions\": [\n",
                    json_cases.empty() ? "" : ",\n", c.label,
                    to_seconds(totals["p4"]), to_seconds(totals["v2"]));
      json_cases += buf;
      json_cases += json_fns;
      json_cases += "\n    ]}";
    } else {
      std::printf("%s", table.render().c_str());
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"table1\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_cases.c_str());
    return 0;
  }
  std::printf(
      "\nPaper (measured on their testbed): BT A 9: P4 Isend 44.9s / Wait 4s,"
      "\nV2 Isend 3.4s / Wait 17.5s, total 49.2s vs 21.2s. CG A 8: total"
      "\n5.1s (P4) vs 14.4s (V2).\n");
  return 0;
}
