// Figure 8: execution-time breakdown (computation vs communication) of
// CG-A and BT-B under MPICH-P4, MPICH-V1 and MPICH-V2. V1 runs with N/4
// Channel Memories, as in the paper.
//
// Expected shape: identical computation time across implementations; CG's
// communication blows up under both V1 and V2 (V1 a little less — lower
// small-message latency than V2's event-logger synchronization); BT-B's
// communication is *best* under V2.
#include "apps/kernels.hpp"
#include "bench_util.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  auto devices = bench::devices_from_options(opts, "p4,v1,v2");
  bench::JsonSink json(opts);

  if (!json.active()) {
    bench::print_header("Execution time breakdown (compute vs communication)",
                        "Figure 8 (CG-A-8 and BT-B-9)");
  }

  struct Case {
    const char* kernel;
    apps::NasClass cls;
    const char* cls_name;
    int np;
  };
  const Case cases[] = {{"cg", apps::NasClass::kA, "A", 8},
                        {"bt", apps::NasClass::kB, "B", 9}};

  TextTable table(
      {"benchmark", "device", "total", "compute", "communication"});
  std::string json_rows;
  for (const Case& c : cases) {
    for (const std::string& dev : devices) {
      runtime::JobConfig cfg;
      cfg.nprocs = c.np;
      cfg.device = bench::device_from_name(dev);
      if (cfg.device == runtime::DeviceKind::kV1) {
        cfg.channel_memories = (c.np + 3) / 4;
      }
      runtime::JobResult res = run_job(cfg, apps::kernel_factory(c.kernel, c.cls));
      if (!res.success) {
        std::printf("  %s %s FAILED\n", c.kernel, dev.c_str());
        continue;
      }
      // Communication = time inside MPI calls (max over ranks, like the
      // paper's slowest-process view); compute = the rest of the makespan.
      SimDuration comm = res.max_mpi_time();
      SimDuration total = res.makespan;
      table.add_row({std::string(c.kernel) + "-" + c.cls_name + "-" +
                         std::to_string(c.np),
                     dev, format_duration(total),
                     format_duration(total - comm), format_duration(comm)});
      char buf[224];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"benchmark\": \"%s-%s-%d\", \"device\": \"%s\", "
                    "\"total_s\": %.4f, \"compute_s\": %.4f, \"comm_s\": %.4f}",
                    json_rows.empty() ? "" : ",\n", c.kernel, c.cls_name, c.np,
                    dev.c_str(), to_seconds(total), to_seconds(total - comm),
                    to_seconds(comm));
      json_rows += buf;
    }
  }
  if (json.active()) {
    json.printf("{\n  \"sim\": %s,\n  \"breakdown\": [\n%s\n  ]\n}\n", bench::sim_json_object().c_str(), json_rows.c_str());
    return 0;
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
