#!/usr/bin/env bash
# CI smoke: configure, build, and run the test suite in five stages —
#   1. the default suite (everything not labelled
#      sanitize/torture/audit/recovery),
#   2. the causal-trace protocol audit suite (label "audit": recorder units
#      plus traced end-to-end runs checked against the pessimistic-logging
#      invariants, including the mutation self-tests),
#   3. the recovery fast-path suite (label "recovery": the overlapped
#      restart regressions plus the restart/re-execution benches, whose
#      smokes audit every A/B scenario in-process),
#   4. the randomized fault-schedule torture suite (label "torture", which
#      also audits every traced faulty run post-hoc),
#   5. the scale-out substrate suite (label "scale": a fast 256-rank
#      bench_scale smoke with churn+audit and the fiber/thread backend
#      determinism regression),
#   6. the AddressSanitizer side build (label "sanitize", which itself
#      rebuilds the lifetime-sensitive targets under -DMPIV_SANITIZE).
#
# Usage: tools/ci_smoke.sh [source-dir [build-dir]]
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${2:-${SRC_DIR}/build}"

cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "==== default suite ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -LE 'sanitize|torture|audit|recovery|scale'

echo "==== protocol audit ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L audit

echo "==== recovery fast path ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L recovery

echo "==== torture suite ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L torture

echo "==== scale suite ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L scale

echo "==== sanitize ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L sanitize
