#!/usr/bin/env bash
# CI smoke: configure, build, and run the test suite in three stages —
#   1. the default suite (everything not labelled sanitize/torture),
#   2. the randomized fault-schedule torture suite (label "torture"),
#   3. the AddressSanitizer side build (label "sanitize", which itself
#      rebuilds the lifetime-sensitive targets under -DMPIV_SANITIZE).
#
# Usage: tools/ci_smoke.sh [source-dir [build-dir]]
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${2:-${SRC_DIR}/build}"

cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "==== default suite ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" \
      -LE 'sanitize|torture'

echo "==== torture suite ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L torture

echo "==== sanitize ===="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L sanitize
