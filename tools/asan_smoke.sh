#!/usr/bin/env bash
# AddressSanitizer smoke: configure a dedicated build tree with
# -DMPIV_SANITIZE=address, build the lifetime-sensitive test binaries and
# run them. The zero-copy and checkpoint datapaths alias SharedBuffer
# slices across fibers, connections and the content store — exactly the
# kind of ownership ASan catches and virtual-time tests cannot.
#
# Usage: tools/asan_smoke.sh [source-dir [build-dir]]
# Also wired as the ctest "sanitize" label (asan_smoke, off by default in
# plain `ctest` runs only via -L/-LE filtering; it is a registered test).
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${2:-${SRC_DIR}/build-asan}"

# The targets that exercise SharedBuffer aliasing end to end: the network
# + datapath units, the checkpoint delta/striping stack, and the
# randomized compute+service fault torture suite (daemon restart, replica
# reconnect and restart-merge paths under ASan). test_trace adds the ring
# recorder, the sink round-trips and the auditor's event-stream walks;
# test_restart_window adds the overlapped restart — deferred-frame stash,
# pipelined replay, scatter-gather resend batches — where stale frames
# alias freed reassembly state if ownership slips. test_sim and
# test_scale_determinism exercise the ucontext fiber engine with the
# sanitizer fiber-switch hooks enabled: every swap, stack recycle and
# kill-unwind is checked, on top of the fiber-vs-thread determinism run
# (shrunk via MPIV_SCALE_RANKS — ASan-instrumented 128-rank runs are slow).
TARGETS=(test_sim test_network test_ckpt_path test_el_torture test_trace
         test_restart_window test_scale_determinism)

cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMPIV_SANITIZE=address >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"

status=0
for t in "${TARGETS[@]}"; do
  echo "==== ${t} (ASan) ===="
  if ! MPIV_SCALE_RANKS=32 "${BUILD_DIR}/tests/${t}"; then
    status=1
  fi
done
exit ${status}
