// MPICH-V1: the Channel Memory architecture (the paper's baseline).
//
// Every communication transits a reliable Channel Memory (CM) server:
// the sender pushes to the *receiver's* home CM; the receiver pulls its
// messages, in order, from its home CM. The CM stores everything (remote
// pessimistic logging), which is what lets a crashed process re-pull its
// whole reception sequence — and what costs V1 half of P4's bandwidth:
// each payload crosses two serialized TCP streams.
//
// Re-execution support: pulls are cursor-addressed (a restarted process
// re-reads from cursor 0) and sends are deduplicated by (sender, seq), so
// re-executed sends are absorbed by the CM.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "mpi/device.hpp"
#include "net/network.hpp"
#include "v2/wire.hpp"

namespace mpiv::v1 {

enum class CmMsg : std::uint8_t {
  kHello = 1,   // {rank} — identifies a computing process connection
  kSend,        // {dest, sender, seq, block}
  kPull,        // {rank, cursor}
  kMsg,         // {from, block} — pull reply
  kProbe,       // {rank, cursor}
  kProbeR,      // {pending}
};

/// Reliable Channel Memory server; one serves `ranks_per_cm` processes.
class ChannelMemory {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kChannelMemoryPort;
  };

  ChannelMemory(net::Network& net, Config config) : net_(net), config_(config) {}

  /// Fiber body; serves until killed (CMs are reliable nodes).
  void run(sim::Context& ctx);

  [[nodiscard]] std::uint64_t messages_stored() const { return stored_; }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_; }

 private:
  struct Stored {
    mpi::Rank from;
    Buffer block;
  };
  void handle(sim::Context& ctx, net::Conn* conn, Buffer data);
  void satisfy_pull(sim::Context& ctx, mpi::Rank rank);

  net::Network& net_;
  Config config_;
  std::map<mpi::Rank, std::vector<Stored>> queues_;
  std::map<mpi::Rank, std::pair<net::Conn*, std::uint64_t>> pending_pulls_;
  std::map<std::pair<mpi::Rank, std::uint64_t>, bool> seen_;  // (sender, seq)
  std::uint64_t stored_ = 0;
  std::uint64_t bytes_ = 0;
  net::Endpoint* ep_ = nullptr;
  std::deque<net::NetEvent> backlog_;
};

struct V1Config {
  net::NodeId node = net::kNoNode;
  mpi::Rank rank = 0;
  mpi::Rank size = 1;
  /// Channel Memory addresses; rank r's home CM is channel_memories[r % n].
  std::vector<net::Address> channel_memories;
  SimDuration connect_timeout = seconds(30);
};

class V1Device final : public mpi::Device {
 public:
  V1Device(net::Network& net, V1Config config);

  void init(sim::Context& ctx) override;
  void finish(sim::Context& ctx) override;
  void bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) override;
  mpi::Packet brecv(sim::Context& ctx) override;
  bool nprobe(sim::Context& ctx) override;

  [[nodiscard]] mpi::Rank rank() const override { return config_.rank; }
  [[nodiscard]] mpi::Rank size() const override { return config_.size; }
  [[nodiscard]] std::uint32_t eager_threshold() const override {
    return 128 * 1024;
  }

 private:
  [[nodiscard]] std::size_t cm_of(mpi::Rank r) const {
    return static_cast<std::size_t>(r) % config_.channel_memories.size();
  }
  Buffer wait_home_reply(sim::Context& ctx, CmMsg expect);
  void service(sim::Context& ctx);
  void post_pull(sim::Context& ctx);

  net::Network& net_;
  V1Config config_;
  std::optional<net::Endpoint> endpoint_;
  std::vector<net::Conn*> cm_conns_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t pull_cursor_ = 0;
  std::deque<Buffer> home_replies_;
};

}  // namespace mpiv::v1
