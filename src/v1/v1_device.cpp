#include "v1/v1_device.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::v1 {

// ----------------------------------------------------------- ChannelMemory

void ChannelMemory::run(sim::Context& ctx) {
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);
  ep_ = &ep;
  for (;;) {
    net::NetEvent ev;
    if (!backlog_.empty()) {
      ev = std::move(backlog_.front());
      backlog_.pop_front();
    } else {
      ev = ep.wait(ctx);
    }
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;
      case net::NetEvent::Type::kClosed: {
        // Drop any pull pending on the dead connection.
        for (auto it = pending_pulls_.begin(); it != pending_pulls_.end();) {
          if (it->second.first == ev.conn) {
            it = pending_pulls_.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case net::NetEvent::Type::kData:
        handle(ctx, ev.conn, std::move(ev.data));
        break;
    }
  }
}

void ChannelMemory::handle(sim::Context& ctx, net::Conn* conn, Buffer data) {
  Reader r(data);
  auto type = static_cast<CmMsg>(r.u8());
  switch (type) {
    case CmMsg::kHello: {
      conn->user_tag = static_cast<std::uint64_t>(r.i32());
      return;
    }
    case CmMsg::kSend: {
      mpi::Rank dest = r.i32();
      mpi::Rank sender = r.i32();
      std::uint64_t seq = r.u64();
      Buffer block = r.blob();
      // Re-executed sends arrive again with the same (sender, seq): absorb.
      if (!seen_.emplace(std::make_pair(sender, seq), true).second) return;
      bytes_ += block.size();
      ++stored_;
      queues_[dest].push_back(Stored{sender, std::move(block)});
      satisfy_pull(ctx, dest);
      return;
    }
    case CmMsg::kPull: {
      mpi::Rank rank = r.i32();
      std::uint64_t cursor = r.u64();
      pending_pulls_[rank] = {conn, cursor};
      satisfy_pull(ctx, rank);
      return;
    }
    case CmMsg::kProbe: {
      mpi::Rank rank = r.i32();
      std::uint64_t cursor = r.u64();
      Writer w;
      w.u8(static_cast<std::uint8_t>(CmMsg::kProbeR));
      w.boolean(queues_[rank].size() > cursor);
      conn->send(ctx, w.take());
      return;
    }
    case CmMsg::kMsg:
    case CmMsg::kProbeR:
      break;
  }
  throw ProtocolError("channel memory: unexpected message");
}

void ChannelMemory::satisfy_pull(sim::Context& ctx, mpi::Rank rank) {
  auto it = pending_pulls_.find(rank);
  if (it == pending_pulls_.end()) return;
  auto [conn, cursor] = it->second;
  const auto& q = queues_[rank];
  if (cursor >= q.size()) return;
  pending_pulls_.erase(it);
  Writer w;
  w.u8(static_cast<std::uint8_t>(CmMsg::kMsg));
  w.i32(q[cursor].from);
  w.blob(q[cursor].block);
  // While window-blocked on a busy receiver, keep draining our own
  // endpoint into the backlog (frees peers' windows; avoids deadlock).
  conn->send(ctx, w.take(), [this](sim::Context& c2) {
    while (auto e = ep_->poll(c2)) backlog_.push_back(std::move(*e));
  });
}

// ----------------------------------------------------------- V1Device

V1Device::V1Device(net::Network& net, V1Config config)
    : net_(net), config_(std::move(config)) {}

void V1Device::init(sim::Context& ctx) {
  endpoint_.emplace(net_, config_.node);
  SimTime deadline = ctx.now() + config_.connect_timeout;
  for (const net::Address& addr : config_.channel_memories) {
    net::Conn* c =
        net_.connect_retry(ctx, *endpoint_, addr, milliseconds(2), deadline);
    MPIV_CHECK(c != nullptr, "v1: cannot reach channel memory");
    cm_conns_.push_back(c);
    Writer w;
    w.u8(static_cast<std::uint8_t>(CmMsg::kHello));
    w.i32(config_.rank);
    c->send(ctx, w.take());
  }
  post_pull(ctx);
}

void V1Device::post_pull(sim::Context& ctx) {
  // Standing pull: one outstanding request at the home CM at all times, so
  // the next message is pushed as soon as it exists and probes stay local.
  Writer w;
  w.u8(static_cast<std::uint8_t>(CmMsg::kPull));
  w.i32(config_.rank);
  w.u64(pull_cursor_++);
  cm_conns_[cm_of(config_.rank)]->send(ctx, w.take());
}

void V1Device::finish(sim::Context& /*ctx*/) {
  for (net::Conn* c : cm_conns_) c->close();
}

void V1Device::service(sim::Context& ctx) {
  while (auto ev = endpoint_->poll(ctx)) {
    if (ev->type == net::NetEvent::Type::kData) {
      home_replies_.push_back(std::move(ev->data));
    }
  }
}

void V1Device::bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) {
  copies_.blocks_sent += 1;
  copies_.payload_bytes_sent += block.size();
  // Remote logging copies the block into the CM request wholesale.
  copies_.payload_copies += 1;
  copies_.bytes_copied += block.size();
  Writer w;
  w.u8(static_cast<std::uint8_t>(CmMsg::kSend));
  w.i32(dest);
  w.i32(config_.rank);
  w.u64(++send_seq_);
  w.blob(block);
  net::Conn* c = cm_conns_[cm_of(dest)];
  bool ok =
      c->send(ctx, w.take(), [this](sim::Context& c2) { service(c2); });
  MPIV_CHECK(ok, "v1: lost channel memory connection");
}

Buffer V1Device::wait_home_reply(sim::Context& ctx, CmMsg expect) {
  for (;;) {
    if (!home_replies_.empty()) {
      Buffer b = std::move(home_replies_.front());
      home_replies_.pop_front();
      Reader r(b);
      MPIV_CHECK(static_cast<CmMsg>(r.u8()) == static_cast<CmMsg>(expect),
                 "v1: unexpected reply from channel memory");
      return b;
    }
    net::NetEvent ev = endpoint_->wait(ctx);
    if (ev.type == net::NetEvent::Type::kData) {
      home_replies_.push_back(std::move(ev.data));
    }
  }
}

mpi::Packet V1Device::brecv(sim::Context& ctx) {
  Buffer reply = wait_home_reply(ctx, CmMsg::kMsg);
  post_pull(ctx);  // re-arm for the next message
  Reader r(reply);
  r.u8();  // type
  mpi::Packet pkt;
  pkt.from = r.i32();
  pkt.data = r.blob();  // copy out of the CM reply blob
  copies_.payload_copies += 1;
  copies_.bytes_copied += pkt.data.size();
  return pkt;
}

bool V1Device::nprobe(sim::Context& ctx) {
  service(ctx);
  return !home_replies_.empty();
}

}  // namespace mpiv::v1
