// Registry of the NAS-like kernels, keyed by name and class — used by the
// bench harness and the integration tests to sweep workloads uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/adi.hpp"
#include "apps/cg.hpp"
#include "apps/compute_model.hpp"
#include "apps/ft.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

inline runtime::AppFactory kernel_factory(const std::string& name,
                                          NasClass cls) {
  if (name == "cg") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<CgApp>(CgApp::Params::for_class(cls));
    };
  }
  if (name == "mg") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<MgApp>(MgApp::Params::for_class(cls));
    };
  }
  if (name == "ft") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<FtApp>(FtApp::Params::for_class(cls));
    };
  }
  if (name == "lu") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<LuApp>(LuApp::Params::for_class(cls));
    };
  }
  if (name == "bt") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<AdiApp>(AdiApp::Variant::kBT,
                                      AdiApp::Params::bt_for_class(cls));
    };
  }
  if (name == "sp") {
    return [cls](mpi::Rank, mpi::Rank) {
      return std::make_unique<AdiApp>(AdiApp::Variant::kSP,
                                      AdiApp::Params::sp_for_class(cls));
    };
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

/// Process counts each kernel supports (mirrors the NPB constraints the
/// paper uses: powers of two, except squares for BT/SP).
inline std::vector<int> kernel_proc_counts(const std::string& name, int max) {
  std::vector<int> out;
  if (name == "bt" || name == "sp") {
    for (int q = 2; q * q <= max; ++q) out.push_back(q * q);
  } else {
    for (int p = 4; p <= max; p *= 2) out.push_back(p);
  }
  return out;
}

inline const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> kNames{"cg", "mg", "ft",
                                               "lu", "bt", "sp"};
  return kNames;
}

}  // namespace mpiv::apps
