// Ping-pong and batched non-blocking exchange micro-apps (figs. 5, 6, 9).
//
// Rank 0 and 1 time their exchanges in virtual time and report the
// per-round-trip mean via result(), so the bench harness reads measured
// latency/bandwidth directly.
#pragma once

#include "common/serialize.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

/// Classic synchronous ping-pong between ranks 0 and 1.
class PingPongApp final : public runtime::App {
 public:
  PingPongApp(std::size_t bytes, int reps, int warmup = 2)
      : bytes_(bytes), reps_(reps), warmup_(warmup) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    Buffer buf(bytes_);
    if (comm.rank() == 0) {
      for (int i = 0; i < warmup_; ++i) {
        comm.send(ctx, buf, 1, 0);
        comm.recv(ctx, buf, 1, 0);
      }
      SimTime t0 = ctx.now();
      for (int i = 0; i < reps_; ++i) {
        comm.send(ctx, buf, 1, 0);
        comm.recv(ctx, buf, 1, 0);
      }
      rtt_ns_ = static_cast<double>(ctx.now() - t0) / reps_;
    } else if (comm.rank() == 1) {
      for (int i = 0; i < warmup_ + reps_; ++i) {
        comm.recv(ctx, buf, 0, 0);
        comm.send(ctx, buf, 0, 0);
      }
    }
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.f64(rtt_ns_);
    return w.take();
  }

 private:
  std::size_t bytes_;
  int reps_;
  int warmup_;
  double rtt_ns_ = 0;
};

/// Fig. 9's synthetic pattern: each round both ranks post `batch` Irecvs
/// and `batch` Isends of `bytes` and Waitall — the BT/SP exchange shape.
class NonblockingPatternApp final : public runtime::App {
 public:
  NonblockingPatternApp(std::size_t bytes, int batch, int reps)
      : bytes_(bytes), batch_(batch), reps_(reps) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    if (comm.rank() > 1) return;
    int peer = 1 - comm.rank();
    std::vector<Buffer> sbuf(static_cast<std::size_t>(batch_), Buffer(bytes_));
    std::vector<Buffer> rbuf(static_cast<std::size_t>(batch_), Buffer(bytes_));
    auto round = [&] {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < batch_; ++i) {
        reqs.push_back(comm.irecv(ctx, rbuf[static_cast<std::size_t>(i)], peer, i));
      }
      for (int i = 0; i < batch_; ++i) {
        reqs.push_back(comm.isend(ctx, sbuf[static_cast<std::size_t>(i)], peer, i));
      }
      comm.waitall(ctx, reqs);
    };
    round();  // warmup
    SimTime t0 = ctx.now();
    for (int i = 0; i < reps_; ++i) round();
    round_ns_ = static_cast<double>(ctx.now() - t0) / reps_;
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.f64(round_ns_);
    return w.take();
  }

 private:
  std::size_t bytes_;
  int batch_;
  int reps_;
  double round_ns_ = 0;
};

}  // namespace mpiv::apps
