// BT and SP: ADI-style kernels (NPB BT/SP analogues).
//
// 5-component N^3 grid on a square q x q process grid (x,y decomposed, z
// resident). Each iteration relaxes along x, y and z; the x and y phases
// exchange whole boundary faces with each neighbour as a *batch of
// non-blocking sends* (the paper's fig. 9 pattern: post Isend/Irecv chunks,
// then Waitall). BT ships one large face per direction with heavy compute;
// SP exchanges twice per direction with lighter compute — both are
// bandwidth-friendly, the workloads on which MPICH-V2 matches or beats P4.
#pragma once

#include <vector>

#include "apps/compute_model.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class AdiApp final : public runtime::App {
 public:
  enum class Variant { kBT, kSP };

  struct Params {
    int n = 12;       // grid edge; q must divide n
    int iters = 2;
    int chunks = 4;   // non-blocking sends per face exchange
    static Params bt_for_class(NasClass c);
    static Params sp_for_class(NasClass c);
  };

  AdiApp(Variant variant, Params p) : variant_(variant), p_(p) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override;
  Buffer snapshot() override;
  void restore(ConstBytes image) override;
  [[nodiscard]] Buffer result() const override;

  [[nodiscard]] double norm() const { return norm_; }

  /// Largest q with q*q == size; BT/SP require a square process count.
  static int square_side(int size);

 private:
  static constexpr int kC = 5;

  void init_state(mpi::Rank rank, mpi::Rank size);
  [[nodiscard]] std::size_t at(int c, int i, int j, int k) const {
    return ((static_cast<std::size_t>(c) * mx_ + i) * my_ + j) * p_.n + k;
  }
  /// Exchanges boundary faces with both neighbours along one axis; fills
  /// `lo`/`hi` with the neighbour faces (or boundary values).
  void exchange_faces(sim::Context& ctx, mpi::Comm& comm, int axis,
                      std::vector<double>& lo, std::vector<double>& hi,
                      mpi::Tag tag_base);
  void relax(sim::Context& ctx, int axis, const std::vector<double>& lo,
             const std::vector<double>& hi, double weight);

  Variant variant_;
  Params p_;
  int iter_ = 0;
  bool initialized_ = false;
  double norm_ = 0;
  int q_ = 1;
  int ix_ = 0, iy_ = 0;
  int mx_ = 0, my_ = 0;
  std::vector<double> u_;
};

}  // namespace mpiv::apps
