#include "apps/mg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::apps {

namespace {
constexpr mpi::Tag kHaloUp = 21;    // plane sent to the z+1 neighbour
constexpr mpi::Tag kHaloDown = 22;  // plane sent to the z-1 neighbour

std::size_t idx(const int n, int z, int y, int x) {
  // z includes the halo offset (+1); periodic wrap in x and y.
  y = (y + n) % n;
  x = (x + n) % n;
  return ((static_cast<std::size_t>(z + 1)) * n + y) * n + x;
}
}  // namespace

MgApp::Params MgApp::Params::for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {16, 2};
    case NasClass::kA: return {128, 3};
    case NasClass::kB: return {256, 2};
  }
  return {};
}

void MgApp::init_state(mpi::Rank rank, mpi::Rank size) {
  if ((p_.n & (p_.n - 1)) != 0) throw ConfigError("mg: n must be a power of two");
  if (p_.n % size != 0) throw ConfigError("mg: n must divide evenly across ranks");
  int n = p_.n;
  int nz = n / size;
  while (nz >= 1 && n >= 4) {
    Level lv;
    lv.n = n;
    lv.nz = nz;
    lv.u.assign(static_cast<std::size_t>(nz + 2) * n * n, 0.0);
    lv.rhs.assign(static_cast<std::size_t>(nz) * n * n, 0.0);
    levels_.push_back(std::move(lv));
    if (nz % 2 != 0) break;  // cannot restrict further within the slab
    n /= 2;
    nz /= 2;
  }
  // Deterministic sparse +1/-1 charges on the finest level (NPB-style).
  Level& fine = levels_.front();
  int z0 = rank * fine.nz;
  for (int z = 0; z < fine.nz; ++z) {
    for (int y = 0; y < fine.n; ++y) {
      for (int x = 0; x < fine.n; ++x) {
        std::uint64_t s =
            ((static_cast<std::uint64_t>(z0 + z) * fine.n + y) * fine.n + x) *
            0x9e3779b97f4a7c15ull;
        s ^= s >> 29;
        std::uint64_t bucket = s % 997;
        double v = bucket == 0 ? 1.0 : (bucket == 1 ? -1.0 : 0.0);
        fine.rhs[(static_cast<std::size_t>(z) * fine.n + y) * fine.n + x] = v;
      }
    }
  }
  initialized_ = true;
}

void MgApp::exchange_halo(sim::Context& ctx, mpi::Comm& comm, Level& lv) {
  const int n = lv.n;
  const mpi::Rank np = comm.size();
  const mpi::Rank r = comm.rank();
  if (np == 1) {
    // Periodic wrap within the single rank.
    std::size_t plane = static_cast<std::size_t>(n) * n;
    std::copy_n(lv.u.data() + plane * static_cast<std::size_t>(lv.nz), plane,
                lv.u.data());
    std::copy_n(lv.u.data() + plane, plane,
                lv.u.data() + plane * static_cast<std::size_t>(lv.nz + 1));
    return;
  }
  const mpi::Rank up = (r + 1) % np;
  const mpi::Rank down = (r - 1 + np) % np;
  std::size_t plane = static_cast<std::size_t>(n) * n;
  // Top plane -> up neighbour's lower halo; bottom plane -> down's upper.
  std::span<double> top(lv.u.data() + plane * static_cast<std::size_t>(lv.nz),
                        plane);
  std::span<double> bottom(lv.u.data() + plane, plane);
  std::span<double> halo_low(lv.u.data(), plane);
  std::span<double> halo_high(
      lv.u.data() + plane * static_cast<std::size_t>(lv.nz + 1), plane);
  comm.sendrecv(ctx, std::as_bytes(std::span<const double>(top)), up, kHaloUp,
                std::as_writable_bytes(halo_low), down, kHaloUp);
  comm.sendrecv(ctx, std::as_bytes(std::span<const double>(bottom)), down,
                kHaloDown, std::as_writable_bytes(halo_high), up, kHaloDown);
}

void MgApp::smooth(sim::Context& ctx, mpi::Comm& comm, Level& lv, int sweeps) {
  const int n = lv.n;
  std::vector<double> next(lv.u.size());
  for (int s = 0; s < sweeps; ++s) {
    exchange_halo(ctx, comm, lv);
    for (int z = 0; z < lv.nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          double nb = lv.u[idx(n, z - 1, y, x)] + lv.u[idx(n, z + 1, y, x)] +
                      lv.u[idx(n, z, y - 1, x)] + lv.u[idx(n, z, y + 1, x)] +
                      lv.u[idx(n, z, y, x - 1)] + lv.u[idx(n, z, y, x + 1)];
          double rhs =
              lv.rhs[(static_cast<std::size_t>(z) * n + y) * n + x];
          next[idx(n, z, y, x)] = (rhs + nb) / 6.0;
        }
      }
    }
    std::swap(lv.u, next);
    ctx.compute(flops_time(9.0 * lv.nz * n * n));
  }
}

void MgApp::residual_to(sim::Context& ctx, mpi::Comm& comm, Level& lv,
                        std::vector<double>& out) {
  const int n = lv.n;
  exchange_halo(ctx, comm, lv);
  out.resize(static_cast<std::size_t>(lv.nz) * n * n);
  for (int z = 0; z < lv.nz; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        double nb = lv.u[idx(n, z - 1, y, x)] + lv.u[idx(n, z + 1, y, x)] +
                    lv.u[idx(n, z, y - 1, x)] + lv.u[idx(n, z, y + 1, x)] +
                    lv.u[idx(n, z, y, x - 1)] + lv.u[idx(n, z, y, x + 1)];
        out[(static_cast<std::size_t>(z) * n + y) * n + x] =
            lv.rhs[(static_cast<std::size_t>(z) * n + y) * n + x] -
            (6.0 * lv.u[idx(n, z, y, x)] - nb);
      }
    }
  }
  ctx.compute(flops_time(10.0 * lv.nz * n * n));
}

void MgApp::run(sim::Context& ctx, mpi::Comm& comm) {
  if (!initialized_) init_state(comm.rank(), comm.size());
  std::vector<double> resid;

  for (; cycle_ < p_.cycles; ++cycle_) {
    checkpoint_point(ctx, comm);
    // Down sweep: smooth, restrict residual to the next coarser level.
    for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
      Level& fine = levels_[l];
      Level& coarse = levels_[l + 1];
      smooth(ctx, comm, fine, 2);
      residual_to(ctx, comm, fine, resid);
      const int cn = coarse.n;
      const int fn = fine.n;
      for (int z = 0; z < coarse.nz; ++z) {
        for (int y = 0; y < cn; ++y) {
          for (int x = 0; x < cn; ++x) {
            // Injection-average over the 2x2x2 fine cell block (local by
            // construction: fine.nz is even whenever a coarser level exists).
            double acc = 0;
            for (int dz = 0; dz < 2; ++dz) {
              for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                  acc += resid[(static_cast<std::size_t>(2 * z + dz) * fn +
                                (2 * y + dy)) *
                                   fn +
                               (2 * x + dx)];
                }
              }
            }
            coarse.rhs[(static_cast<std::size_t>(z) * cn + y) * cn + x] =
                acc / 8.0;
          }
        }
      }
      std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
      ctx.compute(flops_time(8.0 * coarse.nz * cn * cn));
    }
    // Coarsest solve: extra smoothing.
    smooth(ctx, comm, levels_.back(), 4);
    // Up sweep: prolong and post-smooth.
    for (std::size_t l = levels_.size() - 1; l > 0; --l) {
      Level& coarse = levels_[l];
      Level& fine = levels_[l - 1];
      exchange_halo(ctx, comm, coarse);  // needed for the odd-plane average
      const int cn = coarse.n;
      const int fn = fine.n;
      for (int z = 0; z < fine.nz; ++z) {
        int cz = z / 2;
        for (int y = 0; y < fn; ++y) {
          for (int x = 0; x < fn; ++x) {
            double a = coarse.u[idx(cn, cz, y / 2, x / 2)];
            double b = (z % 2 == 0) ? a : coarse.u[idx(cn, cz + 1 <= coarse.nz
                                                               ? cz + 1
                                                               : cz,
                                                       y / 2, x / 2)];
            fine.u[idx(fn, z, y, x)] += 0.5 * (a + b);
          }
        }
      }
      ctx.compute(flops_time(3.0 * fine.nz * fn * fn));
      smooth(ctx, comm, fine, 1);
    }
    // Global residual norm.
    residual_to(ctx, comm, levels_.front(), resid);
    double local = 0;
    for (double v : resid) local += v * v;
    resid_ = std::sqrt(comm.allreduce(ctx, local, mpi::ReduceOp::kSum));
  }
}

Buffer MgApp::snapshot() {
  Writer w;
  w.i32(cycle_);
  w.boolean(initialized_);
  w.f64(resid_);
  w.u32(static_cast<std::uint32_t>(levels_.size()));
  for (const Level& lv : levels_) {
    w.i32(lv.n);
    w.i32(lv.nz);
    w.u32(static_cast<std::uint32_t>(lv.u.size()));
    for (double v : lv.u) w.f64(v);
    w.u32(static_cast<std::uint32_t>(lv.rhs.size()));
    for (double v : lv.rhs) w.f64(v);
  }
  return w.take();
}

void MgApp::restore(ConstBytes image) {
  Reader r(image);
  cycle_ = r.i32();
  initialized_ = r.boolean();
  resid_ = r.f64();
  levels_.clear();
  std::uint32_t nl = r.u32();
  for (std::uint32_t i = 0; i < nl; ++i) {
    Level lv;
    lv.n = r.i32();
    lv.nz = r.i32();
    lv.u.resize(r.u32());
    for (double& v : lv.u) v = r.f64();
    lv.rhs.resize(r.u32());
    for (double& v : lv.rhs) v = r.f64();
    levels_.push_back(std::move(lv));
  }
}

Buffer MgApp::result() const {
  Writer w;
  w.f64(resid_);
  return w.take();
}

}  // namespace mpiv::apps
