#include "apps/lu.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::apps {

namespace {
constexpr mpi::Tag kEast = 31;   // edge flowing west -> east
constexpr mpi::Tag kSouth = 32;  // edge flowing north -> south
constexpr mpi::Tag kWest = 33;   // reverse sweep
constexpr mpi::Tag kNorth = 34;
}  // namespace

LuApp::Params LuApp::Params::for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {16, 2};
    case NasClass::kA: return {48, 6};
    case NasClass::kB: return {64, 8};
  }
  return {};
}

std::pair<int, int> LuApp::grid_for(int size) {
  int px = 1;
  while (px * px * 4 <= size) px *= 2;
  // px is the largest power of two with px^2*... ; fall back to divisors.
  while (size % px != 0) px /= 2;
  return {px, size / px};
}

void LuApp::init_state(mpi::Rank rank, mpi::Rank size) {
  auto [px, py] = grid_for(size);
  px_ = px;
  py_ = py;
  if (p_.n % px_ != 0 || p_.n % py_ != 0) {
    throw ConfigError("lu: process grid must divide n");
  }
  ix_ = rank / py_;
  iy_ = rank % py_;
  mx_ = p_.n / px_;
  my_ = p_.n / py_;
  u_.assign(static_cast<std::size_t>(kC) * p_.n * mx_ * my_, 0.0);
  for (int c = 0; c < kC; ++c) {
    for (int k = 0; k < p_.n; ++k) {
      for (int i = 0; i < mx_; ++i) {
        for (int j = 0; j < my_; ++j) {
          int gi = ix_ * mx_ + i;
          int gj = iy_ * my_ + j;
          u_[at(c, k, i, j)] =
              1.0 + 0.01 * c + 1e-4 * ((gi * 131 + gj * 17 + k * 7) % 101);
        }
      }
    }
  }
  initialized_ = true;
}

void LuApp::run(sim::Context& ctx, mpi::Comm& comm) {
  if (!initialized_) init_state(comm.rank(), comm.size());
  const int n = p_.n;
  auto rank_of = [this](int gx, int gy) { return gx * py_ + gy; };
  const bool has_w = ix_ > 0, has_n = iy_ > 0;
  const bool has_e = ix_ < px_ - 1, has_s = iy_ < py_ - 1;
  const mpi::Rank west = has_w ? rank_of(ix_ - 1, iy_) : -1;
  const mpi::Rank east = has_e ? rank_of(ix_ + 1, iy_) : -1;
  const mpi::Rank north = has_n ? rank_of(ix_, iy_ - 1) : -1;
  const mpi::Rank south = has_s ? rank_of(ix_, iy_ + 1) : -1;

  // Edge buffers: a west/east edge spans j (my_*kC values); a north/south
  // edge spans i (mx_*kC values).
  std::vector<double> we(static_cast<std::size_t>(my_) * kC);
  std::vector<double> ns(static_cast<std::size_t>(mx_) * kC);

  const double plane_flops = 14.0 * kC * mx_ * my_;

  for (; iter_ < p_.iters; ++iter_) {
    checkpoint_point(ctx, comm);

    // ---- lower sweep: dependencies flow from (i-1, j-1, k-1) ----
    for (int k = 0; k < n; ++k) {
      if (has_w) comm.recv<double>(ctx, we, west, kEast);
      if (has_n) comm.recv<double>(ctx, ns, north, kSouth);
      for (int c = 0; c < kC; ++c) {
        for (int i = 0; i < mx_; ++i) {
          for (int j = 0; j < my_; ++j) {
            double w = i > 0 ? u_[at(c, k, i - 1, j)]
                             : (has_w ? we[static_cast<std::size_t>(c) * my_ + j]
                                      : 1.0);
            double nn = j > 0 ? u_[at(c, k, i, j - 1)]
                              : (has_n ? ns[static_cast<std::size_t>(c) * mx_ + i]
                                       : 1.0);
            double below = k > 0 ? u_[at(c, k - 1, i, j)] : 1.0;
            double& v = u_[at(c, k, i, j)];
            v = 0.75 * v + 0.08 * (w + nn + below) + 1e-5 * (c + 1);
          }
        }
      }
      ctx.compute(flops_time(plane_flops));
      if (has_e) {
        for (int c = 0; c < kC; ++c) {
          for (int j = 0; j < my_; ++j) {
            we[static_cast<std::size_t>(c) * my_ + j] = u_[at(c, k, mx_ - 1, j)];
          }
        }
        comm.send<double>(ctx, we, east, kEast);
      }
      if (has_s) {
        for (int c = 0; c < kC; ++c) {
          for (int i = 0; i < mx_; ++i) {
            ns[static_cast<std::size_t>(c) * mx_ + i] = u_[at(c, k, i, my_ - 1)];
          }
        }
        comm.send<double>(ctx, ns, south, kSouth);
      }
    }

    // ---- upper sweep: reversed dependencies ----
    for (int k = n - 1; k >= 0; --k) {
      if (has_e) comm.recv<double>(ctx, we, east, kWest);
      if (has_s) comm.recv<double>(ctx, ns, south, kNorth);
      for (int c = 0; c < kC; ++c) {
        for (int i = mx_ - 1; i >= 0; --i) {
          for (int j = my_ - 1; j >= 0; --j) {
            double e = i < mx_ - 1
                           ? u_[at(c, k, i + 1, j)]
                           : (has_e ? we[static_cast<std::size_t>(c) * my_ + j]
                                    : 1.0);
            double s = j < my_ - 1
                           ? u_[at(c, k, i, j + 1)]
                           : (has_s ? ns[static_cast<std::size_t>(c) * mx_ + i]
                                    : 1.0);
            double above = k < n - 1 ? u_[at(c, k + 1, i, j)] : 1.0;
            double& v = u_[at(c, k, i, j)];
            v = 0.75 * v + 0.08 * (e + s + above) + 1e-5 * (kC - c);
          }
        }
      }
      ctx.compute(flops_time(plane_flops));
      if (has_w) {
        for (int c = 0; c < kC; ++c) {
          for (int j = 0; j < my_; ++j) {
            we[static_cast<std::size_t>(c) * my_ + j] = u_[at(c, k, 0, j)];
          }
        }
        comm.send<double>(ctx, we, west, kWest);
      }
      if (has_n) {
        for (int c = 0; c < kC; ++c) {
          for (int i = 0; i < mx_; ++i) {
            ns[static_cast<std::size_t>(c) * mx_ + i] = u_[at(c, k, i, 0)];
          }
        }
        comm.send<double>(ctx, ns, north, kNorth);
      }
    }

    double local = 0;
    for (double v : u_) local += v * v;
    if (std::getenv("MPIV_LU_TRACE")) {
      std::fprintf(stderr, "LU r%d iter %d local=%.17g\n", comm.rank(), iter_, local);
    }
    norm_ = std::sqrt(comm.allreduce(ctx, local, mpi::ReduceOp::kSum));
    ctx.compute(flops_time(2.0 * static_cast<double>(u_.size())));
  }
}

Buffer LuApp::snapshot() {
  Writer w;
  w.i32(iter_);
  w.boolean(initialized_);
  w.f64(norm_);
  w.i32(px_);
  w.i32(py_);
  w.i32(ix_);
  w.i32(iy_);
  w.i32(mx_);
  w.i32(my_);
  w.u32(static_cast<std::uint32_t>(u_.size()));
  for (double v : u_) w.f64(v);
  return w.take();
}

void LuApp::restore(ConstBytes image) {
  Reader r(image);
  iter_ = r.i32();
  initialized_ = r.boolean();
  norm_ = r.f64();
  px_ = r.i32();
  py_ = r.i32();
  ix_ = r.i32();
  iy_ = r.i32();
  mx_ = r.i32();
  my_ = r.i32();
  u_.resize(r.u32());
  for (double& v : u_) v = r.f64();
}

Buffer LuApp::result() const {
  Writer w;
  w.f64(norm_);
  return w.take();
}

}  // namespace mpiv::apps
