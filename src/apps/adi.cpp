#include "apps/adi.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::apps {

namespace {
constexpr mpi::Tag kTagX = 300;  // + chunk; x-axis faces
constexpr mpi::Tag kTagY = 340;  // + chunk; y-axis faces
constexpr mpi::Tag kLoFlow = 0;   // my low face, sent to the low neighbour
constexpr mpi::Tag kHiFlow = 20;  // my high face, sent to the high neighbour
}  // namespace

AdiApp::Params AdiApp::Params::bt_for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {12, 2, 4};
    case NasClass::kA: return {60, 6, 10};
    case NasClass::kB: return {120, 6, 10};
  }
  return {};
}

AdiApp::Params AdiApp::Params::sp_for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {12, 3, 4};
    case NasClass::kA: return {60, 9, 10};
    case NasClass::kB: return {120, 9, 10};
  }
  return {};
}

int AdiApp::square_side(int size) {
  int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(size))));
  if (q * q != size) {
    throw ConfigError("bt/sp: process count must be a perfect square");
  }
  return q;
}

void AdiApp::init_state(mpi::Rank rank, mpi::Rank size) {
  q_ = square_side(size);
  if (p_.n % q_ != 0) throw ConfigError("bt/sp: q must divide n");
  ix_ = rank / q_;
  iy_ = rank % q_;
  mx_ = p_.n / q_;
  my_ = p_.n / q_;
  u_.assign(static_cast<std::size_t>(kC) * mx_ * my_ * p_.n, 0.0);
  for (int c = 0; c < kC; ++c) {
    for (int i = 0; i < mx_; ++i) {
      for (int j = 0; j < my_; ++j) {
        for (int k = 0; k < p_.n; ++k) {
          int gi = ix_ * mx_ + i;
          int gj = iy_ * my_ + j;
          u_[at(c, i, j, k)] =
              1.0 + 0.02 * c + 1e-4 * ((gi * 37 + gj * 101 + k * 13) % 97);
        }
      }
    }
  }
  initialized_ = true;
}

void AdiApp::exchange_faces(sim::Context& ctx, mpi::Comm& comm, int axis,
                            std::vector<double>& lo, std::vector<double>& hi,
                            mpi::Tag tag_base) {
  const int n = p_.n;
  const int coord = axis == 0 ? ix_ : iy_;
  const int other = axis == 0 ? my_ : mx_;
  const std::size_t face = static_cast<std::size_t>(kC) * other * n;
  lo.assign(face, 1.0);
  hi.assign(face, 1.0);
  std::vector<double> lo_out(face), hi_out(face);
  for (int c = 0; c < kC; ++c) {
    for (int o = 0; o < other; ++o) {
      for (int k = 0; k < n; ++k) {
        std::size_t f = (static_cast<std::size_t>(c) * other + o) * n + k;
        if (axis == 0) {
          lo_out[f] = u_[at(c, 0, o, k)];
          hi_out[f] = u_[at(c, mx_ - 1, o, k)];
        } else {
          lo_out[f] = u_[at(c, o, 0, k)];
          hi_out[f] = u_[at(c, o, my_ - 1, k)];
        }
      }
    }
  }
  mpi::Rank lo_peer = -1, hi_peer = -1;
  if (coord > 0) lo_peer = axis == 0 ? (ix_ - 1) * q_ + iy_ : ix_ * q_ + iy_ - 1;
  if (coord < q_ - 1) {
    hi_peer = axis == 0 ? (ix_ + 1) * q_ + iy_ : ix_ * q_ + iy_ + 1;
  }

  // Fig. 9 pattern: post all Irecv chunks, all Isend chunks, then Waitall.
  const int nchunks = p_.chunks;
  std::vector<mpi::Request> reqs;
  auto chunk_span = [&face, nchunks](std::vector<double>& buf, int c) {
    std::size_t per = (face + static_cast<std::size_t>(nchunks) - 1) /
                      static_cast<std::size_t>(nchunks);
    std::size_t beg = per * static_cast<std::size_t>(c);
    std::size_t len = beg >= face ? 0 : std::min(per, face - beg);
    return std::span<double>(buf.data() + beg, len);
  };
  for (int c = 0; c < nchunks; ++c) {
    // My low face goes to the low peer (their kHiFlow arrival and vice versa).
    if (lo_peer >= 0 && !chunk_span(lo, c).empty()) {
      reqs.push_back(comm.irecv<double>(ctx, chunk_span(lo, c), lo_peer,
                                        tag_base + kHiFlow + c));
    }
    if (hi_peer >= 0 && !chunk_span(hi, c).empty()) {
      reqs.push_back(comm.irecv<double>(ctx, chunk_span(hi, c), hi_peer,
                                        tag_base + kLoFlow + c));
    }
  }
  for (int c = 0; c < nchunks; ++c) {
    if (lo_peer >= 0 && !chunk_span(lo_out, c).empty()) {
      std::span<double> s = chunk_span(lo_out, c);
      reqs.push_back(comm.isend<double>(
          ctx, std::span<const double>(s.data(), s.size()), lo_peer,
          tag_base + kLoFlow + c));
    }
    if (hi_peer >= 0 && !chunk_span(hi_out, c).empty()) {
      std::span<double> s = chunk_span(hi_out, c);
      reqs.push_back(comm.isend<double>(
          ctx, std::span<const double>(s.data(), s.size()), hi_peer,
          tag_base + kHiFlow + c));
    }
  }
  comm.waitall(ctx, reqs);
}

void AdiApp::relax(sim::Context& ctx, int axis, const std::vector<double>& lo,
                   const std::vector<double>& hi, double weight) {
  const int n = p_.n;
  const int other = axis == 0 ? my_ : mx_;
  const int m = axis == 0 ? mx_ : my_;
  for (int c = 0; c < kC; ++c) {
    for (int o = 0; o < other; ++o) {
      for (int k = 0; k < n; ++k) {
        std::size_t f = (static_cast<std::size_t>(c) * other + o) * n + k;
        for (int i = 0; i < m; ++i) {
          double left, right;
          auto cell = [&](int ii) {
            return axis == 0 ? u_[at(c, ii, o, k)] : u_[at(c, o, ii, k)];
          };
          left = i > 0 ? cell(i - 1) : lo[f];
          right = i < m - 1 ? cell(i + 1) : hi[f];
          double& v =
              axis == 0 ? u_[at(c, i, o, k)] : u_[at(c, o, i, k)];
          v = (1.0 - 2.0 * weight) * v + weight * (left + right);
        }
      }
    }
  }
  double flops_per_cell = variant_ == Variant::kBT ? 80.0 : 32.0;
  ctx.compute(
      flops_time(flops_per_cell * static_cast<double>(u_.size())));
}

void AdiApp::run(sim::Context& ctx, mpi::Comm& comm) {
  if (!initialized_) init_state(comm.rank(), comm.size());
  const int rounds = variant_ == Variant::kSP ? 2 : 1;
  const double w = variant_ == Variant::kSP ? 0.05 : 0.08;
  std::vector<double> lo, hi;

  for (; iter_ < p_.iters; ++iter_) {
    checkpoint_point(ctx, comm);
    for (int rep = 0; rep < rounds; ++rep) {
      exchange_faces(ctx, comm, 0, lo, hi, kTagX);
      relax(ctx, 0, lo, hi, w);
      exchange_faces(ctx, comm, 1, lo, hi, kTagY);
      relax(ctx, 1, lo, hi, w);
    }
    // z phase: fully local line relaxation.
    for (int c = 0; c < kC; ++c) {
      for (int i = 0; i < mx_; ++i) {
        for (int j = 0; j < my_; ++j) {
          for (int k = 0; k < p_.n; ++k) {
            double left = k > 0 ? u_[at(c, i, j, k - 1)] : 1.0;
            double right = k < p_.n - 1 ? u_[at(c, i, j, k + 1)] : 1.0;
            double& v = u_[at(c, i, j, k)];
            v = (1.0 - 2.0 * w) * v + w * (left + right);
          }
        }
      }
    }
    double zflops = variant_ == Variant::kBT ? 90.0 : 36.0;
    ctx.compute(flops_time(zflops * static_cast<double>(u_.size())));

    double local = 0;
    for (double v : u_) local += v * v;
    norm_ = std::sqrt(comm.allreduce(ctx, local, mpi::ReduceOp::kSum));
    ctx.compute(flops_time(2.0 * static_cast<double>(u_.size())));
  }
}

Buffer AdiApp::snapshot() {
  Writer w;
  w.i32(iter_);
  w.boolean(initialized_);
  w.f64(norm_);
  w.i32(q_);
  w.i32(ix_);
  w.i32(iy_);
  w.i32(mx_);
  w.i32(my_);
  w.u32(static_cast<std::uint32_t>(u_.size()));
  for (double v : u_) w.f64(v);
  return w.take();
}

void AdiApp::restore(ConstBytes image) {
  Reader r(image);
  iter_ = r.i32();
  initialized_ = r.boolean();
  norm_ = r.f64();
  q_ = r.i32();
  ix_ = r.i32();
  iy_ = r.i32();
  mx_ = r.i32();
  my_ = r.i32();
  u_.resize(r.u32());
  for (double& v : u_) v = r.f64();
}

Buffer AdiApp::result() const {
  Writer w;
  w.f64(norm_);
  return w.take();
}

}  // namespace mpiv::apps
