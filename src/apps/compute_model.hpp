// Virtual compute-cost model for the NAS-like kernels.
//
// The kernels execute their (reduced-size) numerics for real, so results
// are verifiable; the *virtual* time charged per phase comes from explicit
// flop counts at a rate calibrated to the paper's testbed (Athlon XP 1800+,
// ~300 sustained MFLOPS on these codes).
#pragma once

#include "common/units.hpp"

namespace mpiv::apps {

/// Sustained floating-point rate used to convert flop counts to time.
constexpr double kFlopsPerSecond = 300e6;

constexpr SimDuration flops_time(double flops) {
  return static_cast<SimDuration>(flops / kFlopsPerSecond *
                                  static_cast<double>(kSecond));
}

/// NAS-style problem classes (sizes are scaled down — see DESIGN.md — but
/// keep each kernel's message-size and message-count character).
enum class NasClass { kTest, kA, kB };

inline const char* nas_class_name(NasClass c) {
  switch (c) {
    case NasClass::kTest: return "T";
    case NasClass::kA: return "A";
    case NasClass::kB: return "B";
  }
  return "?";
}

}  // namespace mpiv::apps
