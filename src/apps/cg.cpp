#include "apps/cg.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

#include <algorithm>

namespace mpiv::apps {

namespace {
/// Deterministic pseudo-random column/value generator (seeded per row), so
/// every rank and every incarnation rebuilds the same matrix.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

CgApp::Params CgApp::Params::for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {512, 8, 8};
    case NasClass::kA: return {7168, 10, 30};
    case NasClass::kB: return {14336, 12, 45};
  }
  return {};
}

void CgApp::init_state(mpi::Rank rank, mpi::Rank size) {
  if (p_.n % size != 0) {
    throw ConfigError("cg: n must divide evenly across ranks");
  }
  m_ = p_.n / size;
  row0_ = rank * m_;
  x_.assign(static_cast<std::size_t>(m_), 0.0);
  // b = 1 everywhere; with x0 = 0, r0 = b and d0 = r0.
  r_.assign(static_cast<std::size_t>(m_), 1.0);
  d_ = r_;
  initialized_ = true;
}

void CgApp::run(sim::Context& ctx, mpi::Comm& comm) {
  if (!initialized_) init_state(comm.rank(), comm.size());
  const int n = p_.n;
  const int k = p_.nonzeros_per_row;
  std::vector<double> full_d(static_cast<std::size_t>(n));
  std::vector<double> q(static_cast<std::size_t>(m_));

  for (; iter_ < p_.iters; ++iter_) {
    checkpoint_point(ctx, comm);
    if (!rho_valid_) {
      // First iteration only; guarded by checkpointed state so a restored
      // execution replays exactly the original call sequence.
      double rho0 = 0;
      for (int i = 0; i < m_; ++i) {
        rho0 += r_[static_cast<std::size_t>(i)] * r_[static_cast<std::size_t>(i)];
      }
      rho_ = comm.allreduce(ctx, rho0, mpi::ReduceOp::kSum);
      rho_valid_ = true;
    }
    // Mat-vec q = A d needs the whole direction vector. NPB CG uses
    // explicit point-to-point exchanges, so we run the ring allgather by
    // hand (it also attributes the time to Isend/Irecv/Wait for Table 1).
    {
      const mpi::Rank np = comm.size();
      const mpi::Rank rk = comm.rank();
      auto block = [&](mpi::Rank owner) {
        return std::span<double>(full_d.data() +
                                     static_cast<std::size_t>(owner) * m_,
                                 static_cast<std::size_t>(m_));
      };
      std::copy(d_.begin(), d_.end(), block(rk).begin());
      if (np > 1) {
        mpi::Rank right = (rk + 1) % np;
        mpi::Rank left = (rk - 1 + np) % np;
        for (mpi::Rank s = 0; s < np - 1; ++s) {
          mpi::Rank send_origin = (rk - s + np) % np;
          mpi::Rank recv_origin = (rk - s - 1 + np) % np;
          mpi::Request rr = comm.irecv<double>(ctx, block(recv_origin), left, 77);
          std::span<double> out = block(send_origin);
          mpi::Request sr = comm.isend(
              ctx, std::span<const double>(out.data(), out.size()), right, 77);
          comm.wait(ctx, sr);
          comm.wait(ctx, rr);
        }
      }
    }
    for (int i = 0; i < m_; ++i) {
      int gi = row0_ + i;
      // Row gi: strong diagonal plus k pseudo-random off-diagonals.
      double acc = (k + 4.0) * full_d[static_cast<std::size_t>(gi)];
      std::uint64_t s = static_cast<std::uint64_t>(gi) * 0x5851f42d4c957f2dull;
      for (int e = 0; e < k; ++e) {
        s = mix(s);
        int col = static_cast<int>(s % static_cast<std::uint64_t>(n));
        double val = -0.5 + static_cast<double>((s >> 32) & 0xffff) / 131072.0;
        acc += val * full_d[static_cast<std::size_t>(col)];
      }
      q[static_cast<std::size_t>(i)] = acc;
    }
    ctx.compute(flops_time(2.0 * k * m_ + 2.0 * m_));

    double dq = 0;
    for (int i = 0; i < m_; ++i) dq += d_[static_cast<std::size_t>(i)] *
                                       q[static_cast<std::size_t>(i)];
    dq = comm.allreduce(ctx, dq, mpi::ReduceOp::kSum);
    double alpha = rho_ / dq;
    double rho_new = 0;
    for (int i = 0; i < m_; ++i) {
      auto ui = static_cast<std::size_t>(i);
      x_[ui] += alpha * d_[ui];
      r_[ui] -= alpha * q[ui];
      rho_new += r_[ui] * r_[ui];
    }
    ctx.compute(flops_time(6.0 * m_));
    rho_new = comm.allreduce(ctx, rho_new, mpi::ReduceOp::kSum);
    double beta = rho_new / rho_;
    rho_ = rho_new;
    for (int i = 0; i < m_; ++i) {
      auto ui = static_cast<std::size_t>(i);
      d_[ui] = r_[ui] + beta * d_[ui];
    }
    ctx.compute(flops_time(2.0 * m_));
  }
}

Buffer CgApp::snapshot() {
  Writer w;
  w.i32(iter_);
  w.f64(rho_);
  w.boolean(rho_valid_);
  w.boolean(initialized_);
  w.i32(m_);
  w.i32(row0_);
  auto vec = [&w](const std::vector<double>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) w.f64(x);
  };
  vec(x_);
  vec(r_);
  vec(d_);
  return w.take();
}

void CgApp::restore(ConstBytes image) {
  Reader r(image);
  iter_ = r.i32();
  rho_ = r.f64();
  rho_valid_ = r.boolean();
  initialized_ = r.boolean();
  m_ = r.i32();
  row0_ = r.i32();
  auto vec = [&r]() {
    std::uint32_t n = r.u32();
    std::vector<double> v(n);
    for (auto& x : v) x = r.f64();
    return v;
  };
  x_ = vec();
  r_ = vec();
  d_ = vec();
}

Buffer CgApp::result() const {
  Writer w;
  w.f64(rho_);
  double sum = 0;
  for (double v : x_) sum += v;
  w.f64(sum);
  return w.take();
}

}  // namespace mpiv::apps
