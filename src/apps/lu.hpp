// LU: SSOR wavefront kernel (NPB LU analogue).
//
// 5-component N^3 grid, 2-D (x,y) process decomposition, z resident.
// Each sweep pipelines plane-by-plane: a rank receives its west/north
// edges, relaxes the plane in dependency order, and forwards east/south —
// thousands of small messages whose payloads all land in the sender logs,
// the kernel on which the paper's V2 suffers from logging pressure.
#pragma once

#include <vector>

#include "apps/compute_model.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class LuApp final : public runtime::App {
 public:
  struct Params {
    int n = 16;    // grid edge; px and py must divide n
    int iters = 2;
    static Params for_class(NasClass c);
  };

  explicit LuApp(Params p) : p_(p) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override;
  Buffer snapshot() override;
  void restore(ConstBytes image) override;
  [[nodiscard]] Buffer result() const override;

  [[nodiscard]] double norm() const { return norm_; }

  /// 2-D process grid used for `size` ranks: px*py == size, px <= py.
  static std::pair<int, int> grid_for(int size);

 private:
  static constexpr int kC = 5;  // components per cell

  void init_state(mpi::Rank rank, mpi::Rank size);
  [[nodiscard]] std::size_t at(int c, int k, int i, int j) const {
    return ((static_cast<std::size_t>(c) * p_.n + k) * mx_ + i) * my_ + j;
  }

  Params p_;
  int iter_ = 0;
  bool initialized_ = false;
  double norm_ = 0;
  int px_ = 1, py_ = 1;
  int ix_ = 0, iy_ = 0;  // my grid coordinates
  int mx_ = 0, my_ = 0;  // local extents
  std::vector<double> u_;
};

}  // namespace mpiv::apps
