// CG: conjugate-gradient kernel (NPB CG analogue).
//
// Unpreconditioned CG on a row-partitioned sparse diagonally-dominant
// matrix. Communication per iteration: one allgather of the direction
// vector (the mat-vec) plus two scalar allreduces (dot products) — many
// small, latency-bound messages, the pattern on which the paper shows
// MPICH-V2 at its worst.
#pragma once

#include <vector>

#include "apps/compute_model.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class CgApp final : public runtime::App {
 public:
  struct Params {
    int n = 512;           // global unknowns (multiple of nprocs)
    int nonzeros_per_row = 8;
    int iters = 8;
    static Params for_class(NasClass c);
  };

  explicit CgApp(Params p) : p_(p) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override;
  Buffer snapshot() override;
  void restore(ConstBytes image) override;
  [[nodiscard]] Buffer result() const override;

  [[nodiscard]] double residual_norm() const { return rho_; }

 private:
  void init_state(mpi::Rank rank, mpi::Rank size);

  Params p_;
  int iter_ = 0;
  double rho_ = 0;
  bool rho_valid_ = false;  // rho_ computed (guards the initial allreduce)
  bool initialized_ = false;
  int m_ = 0;       // local rows
  int row0_ = 0;    // first local row
  std::vector<double> x_, r_, d_;  // local slices
};

}  // namespace mpiv::apps
