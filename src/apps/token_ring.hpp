// Token ring: the paper's re-execution micro-benchmark (fig. 10) and our
// canonical integration-test workload.
//
// A token of `payload_bytes` circulates `rounds` times. Every hop folds the
// payload into a running FNV fingerprint, so the final result depends on
// every delivery on every rank — any replay error, lost, duplicated or
// reordered message changes the fingerprint.
#pragma once

#include <cstring>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class TokenRingApp final : public runtime::App {
 public:
  TokenRingApp(int rounds, std::size_t payload_bytes,
               SimDuration compute_per_hop = 0)
      : rounds_(rounds),
        payload_bytes_(payload_bytes),
        compute_per_hop_(compute_per_hop) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    const mpi::Rank n = comm.size();
    const mpi::Rank r = comm.rank();
    const mpi::Rank left = (r - 1 + n) % n;
    const mpi::Rank right = (r + 1) % n;
    Buffer token(payload_bytes_);

    for (; round_ < rounds_; ++round_) {
      checkpoint_point(ctx, comm);
      if (n == 1) {
        fill_token(token);
        fold(token);
      } else if (r == 0) {
        fill_token(token);
        comm.send(ctx, token, right, kTag);
        if (n > 1) comm.recv(ctx, token, left, kTag);
        fold(token);
      } else {
        comm.recv(ctx, token, left, kTag);
        fold(token);
        if (compute_per_hop_ > 0) ctx.compute(compute_per_hop_);
        fill_token(token);
        comm.send(ctx, token, right, kTag);
      }
    }
    comm.barrier(ctx);
  }

  [[nodiscard]] Buffer snapshot() override {
    Writer w;
    w.i32(round_);
    w.u64(fingerprint_);
    return w.take();
  }

  void restore(ConstBytes image) override {
    Reader r(image);
    round_ = r.i32();
    fingerprint_ = r.u64();
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(fingerprint_);
    return w.take();
  }

  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  static constexpr mpi::Tag kTag = 11;

  void fill_token(Buffer& token) const {
    // Token content derives from the running fingerprint: deterministic,
    // and corruption anywhere propagates to every later round.
    std::uint64_t x = fingerprint_ + static_cast<std::uint64_t>(round_) + 1;
    for (std::size_t i = 0; i < token.size(); ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      token[i] = static_cast<std::byte>(x >> 56);
    }
  }

  void fold(ConstBytes token) {
    fingerprint_ = fingerprint_ * 31 + fnv1a(token) + 1;
  }

  int rounds_;
  std::size_t payload_bytes_;
  SimDuration compute_per_hop_;
  int round_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace mpiv::apps
