#include "apps/ft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::apps {

namespace {

/// In-place iterative radix-2 Cooley-Tukey on a contiguous line.
void fft_line(std::complex<double>* a, int n, bool inverse) {
  // Bit reversal.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    double ang = 2.0 * std::numbers::pi / len * (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        std::complex<double> u = a[i + k];
        std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (int i = 0; i < n; ++i) a[i] /= n;
  }
}

double fft_flops(int n) { return 5.0 * n * std::log2(static_cast<double>(n)); }

}  // namespace

FtApp::Params FtApp::Params::for_class(NasClass c) {
  switch (c) {
    case NasClass::kTest: return {16, 2};
    case NasClass::kA: return {64, 6};
    case NasClass::kB: return {128, 6};
  }
  return {};
}

void FtApp::init_state(mpi::Rank rank, mpi::Rank size) {
  const int n = p_.n;
  MPIV_CHECK((n & (n - 1)) == 0, "ft: n must be a power of two");
  MPIV_CHECK(n % size == 0, "ft: n must divide evenly across ranks");
  nz_ = n / size;
  z0_ = rank * nz_;
  u_.assign(static_cast<std::size_t>(nz_) * n * n, Cx{0, 0});
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        // Deterministic pseudo-random initial field.
        std::uint64_t s = (static_cast<std::uint64_t>(z0_ + z) * n + y) * n + x;
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        s ^= s >> 33;
        double re = static_cast<double>(s & 0xffff) / 65536.0 - 0.5;
        double im = static_cast<double>((s >> 16) & 0xffff) / 65536.0 - 0.5;
        u_[(static_cast<std::size_t>(z) * n + y) * n + x] = Cx{re, im};
      }
    }
  }
  initialized_ = true;
}

void FtApp::fft_dim_x(std::vector<Cx>& a, int planes, bool inverse) const {
  const int n = p_.n;
  for (int pl = 0; pl < planes; ++pl) {
    for (int y = 0; y < n; ++y) {
      fft_line(a.data() + (static_cast<std::size_t>(pl) * n + y) * n, n,
               inverse);
    }
  }
}

void FtApp::fft_dim_y(std::vector<Cx>& a, int planes, bool inverse) const {
  const int n = p_.n;
  std::vector<Cx> line(static_cast<std::size_t>(n));
  for (int pl = 0; pl < planes; ++pl) {
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        line[static_cast<std::size_t>(y)] =
            a[(static_cast<std::size_t>(pl) * n + y) * n + x];
      }
      fft_line(line.data(), n, inverse);
      for (int y = 0; y < n; ++y) {
        a[(static_cast<std::size_t>(pl) * n + y) * n + x] =
            line[static_cast<std::size_t>(y)];
      }
    }
  }
}

void FtApp::run(sim::Context& ctx, mpi::Comm& comm) {
  if (!initialized_) init_state(comm.rank(), comm.size());
  const int n = p_.n;
  const int np = comm.size();
  const int nx = n / np;  // x-slab width in the transposed layout
  const std::size_t block = static_cast<std::size_t>(nx) * n * nz_;

  std::vector<Cx> work(static_cast<std::size_t>(nx) * n * n);
  std::vector<Cx> sendbuf(block * static_cast<std::size_t>(np));
  std::vector<Cx> recvbuf(block * static_cast<std::size_t>(np));

  auto transpose_forward = [&](std::vector<Cx>& from, std::vector<Cx>& to) {
    // (z local, y, x) -> per-dest blocks (x local, y, z local-of-src).
    for (int d = 0; d < np; ++d) {
      int x0 = d * nx;
      Cx* out = sendbuf.data() + block * static_cast<std::size_t>(d);
      for (int xl = 0; xl < nx; ++xl) {
        for (int y = 0; y < n; ++y) {
          for (int z = 0; z < nz_; ++z) {
            out[(static_cast<std::size_t>(xl) * n + y) * nz_ + z] =
                from[(static_cast<std::size_t>(z) * n + y) * n + (x0 + xl)];
          }
        }
      }
    }
    comm.alltoall(ctx, as_bytes_of(sendbuf),
                  std::as_writable_bytes(std::span<Cx>(recvbuf)),
                  block * sizeof(Cx));
    for (int s = 0; s < np; ++s) {
      const Cx* in = recvbuf.data() + block * static_cast<std::size_t>(s);
      int zq = s * nz_;
      for (int xl = 0; xl < nx; ++xl) {
        for (int y = 0; y < n; ++y) {
          for (int z = 0; z < nz_; ++z) {
            to[(static_cast<std::size_t>(xl) * n + y) * n + (zq + z)] =
                in[(static_cast<std::size_t>(xl) * n + y) * nz_ + z];
          }
        }
      }
    }
  };

  auto transpose_backward = [&](std::vector<Cx>& from, std::vector<Cx>& to) {
    // (x local, y, z) -> (z local, y, x): the exact inverse packing.
    for (int d = 0; d < np; ++d) {
      int zq = d * nz_;
      Cx* out = sendbuf.data() + block * static_cast<std::size_t>(d);
      for (int xl = 0; xl < nx; ++xl) {
        for (int y = 0; y < n; ++y) {
          for (int z = 0; z < nz_; ++z) {
            out[(static_cast<std::size_t>(xl) * n + y) * nz_ + z] =
                from[(static_cast<std::size_t>(xl) * n + y) * n + (zq + z)];
          }
        }
      }
    }
    comm.alltoall(ctx, as_bytes_of(sendbuf),
                  std::as_writable_bytes(std::span<Cx>(recvbuf)),
                  block * sizeof(Cx));
    for (int s = 0; s < np; ++s) {
      const Cx* in = recvbuf.data() + block * static_cast<std::size_t>(s);
      int x0 = s * nx;
      for (int xl = 0; xl < nx; ++xl) {
        for (int y = 0; y < n; ++y) {
          for (int z = 0; z < nz_; ++z) {
            to[(static_cast<std::size_t>(z) * n + y) * n + (x0 + xl)] =
                in[(static_cast<std::size_t>(xl) * n + y) * nz_ + z];
          }
        }
      }
    }
  };

  const double fft_phase_flops = 2.0 * n * n / np * fft_flops(n);
  const double pack_flops = 2.0 * static_cast<double>(u_.size());

  for (; iter_ < p_.iters; ++iter_) {
    checkpoint_point(ctx, comm);
    // Phase evolution (deterministic, index- and iteration-dependent).
    for (std::size_t i = 0; i < u_.size(); ++i) {
      double ang = 1e-3 * static_cast<double>((i * 2654435761u) % 1024) *
                   (1 + iter_ % 7);
      u_[i] *= Cx{std::cos(ang), std::sin(ang)};
    }
    ctx.compute(flops_time(8.0 * static_cast<double>(u_.size())));

    // Forward 3-D FFT: x and y local, transpose, z local.
    fft_dim_x(u_, nz_, false);
    fft_dim_y(u_, nz_, false);
    ctx.compute(flops_time(fft_phase_flops));
    ctx.compute(flops_time(pack_flops));
    transpose_forward(u_, work);
    // z is now the contiguous dimension of `work` (planes indexed by x).
    fft_dim_x(work, nx, false);
    ctx.compute(flops_time(fft_phase_flops / 2));

    // Sampled spectral checksum.
    double acc[2] = {0, 0};
    for (std::size_t i = 0; i < work.size(); i += 131) {
      acc[0] += work[i].real();
      acc[1] += work[i].imag();
    }
    double out[2];
    comm.allreduce(ctx, std::span<const double>(acc, 2),
                   std::span<double>(out, 2), mpi::ReduceOp::kSum);
    checksum_ = Cx{out[0], out[1]};

    // Inverse transform back to the canonical z-slab layout.
    fft_dim_x(work, nx, true);
    ctx.compute(flops_time(fft_phase_flops / 2));
    ctx.compute(flops_time(pack_flops));
    transpose_backward(work, u_);
    fft_dim_y(u_, nz_, true);
    fft_dim_x(u_, nz_, true);
    ctx.compute(flops_time(fft_phase_flops));
  }
}

Buffer FtApp::snapshot() {
  Writer w;
  w.i32(iter_);
  w.boolean(initialized_);
  w.i32(nz_);
  w.i32(z0_);
  w.f64(checksum_.real());
  w.f64(checksum_.imag());
  w.u32(static_cast<std::uint32_t>(u_.size()));
  for (const Cx& c : u_) {
    w.f64(c.real());
    w.f64(c.imag());
  }
  return w.take();
}

void FtApp::restore(ConstBytes image) {
  Reader r(image);
  iter_ = r.i32();
  initialized_ = r.boolean();
  nz_ = r.i32();
  z0_ = r.i32();
  double re = r.f64();
  double im = r.f64();
  checksum_ = Cx{re, im};
  std::uint32_t n = r.u32();
  u_.resize(n);
  for (auto& c : u_) {
    double cr = r.f64();
    double ci = r.f64();
    c = Cx{cr, ci};
  }
}

Buffer FtApp::result() const {
  Writer w;
  w.f64(checksum_.real());
  w.f64(checksum_.imag());
  return w.take();
}

}  // namespace mpiv::apps
