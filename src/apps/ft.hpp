// FT: 3-D FFT kernel (NPB FT analogue).
//
// Complex N^3 grid in z-slabs. Each iteration applies a phase evolution,
// a full forward 3-D FFT (two local dimensions, then an all-to-all slab
// transpose, then the third dimension), a sampled checksum allreduce, and
// the inverse transform back to the canonical layout. Communication is a
// few *very large* messages per iteration — the pattern on which the paper
// shows MPICH-V2 matching MPICH-P4.
#pragma once

#include <complex>
#include <vector>

#include "apps/compute_model.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class FtApp final : public runtime::App {
 public:
  struct Params {
    int n = 16;   // grid edge (power of two, divisible by nprocs)
    int iters = 2;
    static Params for_class(NasClass c);
  };

  explicit FtApp(Params p) : p_(p) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override;
  Buffer snapshot() override;
  void restore(ConstBytes image) override;
  [[nodiscard]] Buffer result() const override;

  [[nodiscard]] std::complex<double> checksum() const { return checksum_; }

 private:
  using Cx = std::complex<double>;

  void init_state(mpi::Rank rank, mpi::Rank size);
  void fft_dim_x(std::vector<Cx>& a, int planes, bool inverse) const;
  void fft_dim_y(std::vector<Cx>& a, int planes, bool inverse) const;

  Params p_;
  int iter_ = 0;
  bool initialized_ = false;
  int nz_ = 0, z0_ = 0;  // local slab (canonical layout)
  std::complex<double> checksum_{0, 0};
  std::vector<Cx> u_;  // (z local, y, x), x contiguous
};

}  // namespace mpiv::apps
