// MG: 3-D multigrid kernel (NPB MG analogue).
//
// V-cycles on an N^3 periodic grid decomposed in z-slabs. Every Jacobi
// sweep, residual and prolongation exchanges one halo plane with each z
// neighbour — large messages at the finest level, small ones at coarse
// levels, with frequent synchronization: a latency-sensitive mix on which
// the paper shows MPICH-V2 paying its event-logging cost.
#pragma once

#include <vector>

#include "apps/compute_model.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class MgApp final : public runtime::App {
 public:
  struct Params {
    int n = 16;     // grid edge (power of two, nprocs divides n)
    int cycles = 2;
    static Params for_class(NasClass c);
  };

  explicit MgApp(Params p) : p_(p) {}

  void run(sim::Context& ctx, mpi::Comm& comm) override;
  Buffer snapshot() override;
  void restore(ConstBytes image) override;
  [[nodiscard]] Buffer result() const override;

  [[nodiscard]] double residual_norm() const { return resid_; }

 private:
  struct Level {
    int n = 0;    // edge length at this level
    int nz = 0;   // local planes (excluding the two halo planes)
    std::vector<double> u;    // (nz + 2 halos) * n * n
    std::vector<double> rhs;  // nz * n * n
  };

  void init_state(mpi::Rank rank, mpi::Rank size);
  void exchange_halo(sim::Context& ctx, mpi::Comm& comm, Level& lv);
  void smooth(sim::Context& ctx, mpi::Comm& comm, Level& lv, int sweeps);
  void residual_to(sim::Context& ctx, mpi::Comm& comm, Level& fine,
                   std::vector<double>& out);

  Params p_;
  int cycle_ = 0;
  bool initialized_ = false;
  double resid_ = 0;
  std::vector<Level> levels_;
};

}  // namespace mpiv::apps
