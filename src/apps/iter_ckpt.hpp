// Iterative app with checkpoint-friendly state: a large blob that never
// changes after initialization (the "code + constant data" part of a real
// application image) plus a small region rewritten every iteration. The
// shape is what makes incremental checkpointing pay off — after the first
// stable image, only the dynamic region and the serialization tail differ
// between rounds — while the ring token keeps real message logging and
// replay in the picture.
#pragma once

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "runtime/app.hpp"

namespace mpiv::apps {

class IterCkptApp final : public runtime::App {
 public:
  struct Params {
    int iters = 20;
    std::size_t static_bytes = 2 * 1024 * 1024;
    std::size_t dynamic_bytes = 128 * 1024;
    std::size_t token_bytes = 8 * 1024;
    SimDuration compute_per_iter = 0;
  };

  /// `stall_ns`, when given, accumulates the virtual time this rank spends
  /// blocked in take_checkpoint (the app-visible checkpoint stall).
  IterCkptApp(mpi::Rank rank, Params params, std::uint64_t* stall_ns = nullptr,
              std::uint64_t* ckpts = nullptr)
      : params_(params), stall_ns_(stall_ns), ckpts_(ckpts) {
    static_blob_.resize(params_.static_bytes);
    std::uint64_t x = 0x243f6a8885a308d3ull + static_cast<std::uint64_t>(rank);
    for (std::size_t i = 0; i < static_blob_.size(); ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      static_blob_[i] = static_cast<std::byte>(x >> 56);
    }
    dynamic_.resize(params_.dynamic_bytes);
  }

  void run(sim::Context& ctx, mpi::Comm& comm) override {
    const mpi::Rank n = comm.size();
    const mpi::Rank r = comm.rank();
    const mpi::Rank left = (r - 1 + n) % n;
    const mpi::Rank right = (r + 1) % n;
    Buffer token(params_.token_bytes);

    for (; round_ < params_.iters; ++round_) {
      if (comm.checkpoint_requested()) {
        SimTime t0 = ctx.now();
        comm.take_checkpoint(ctx, snapshot());
        if (stall_ns_ != nullptr) {
          *stall_ns_ += static_cast<std::uint64_t>(ctx.now() - t0);
        }
        if (ckpts_ != nullptr) ++*ckpts_;
      }
      if (params_.compute_per_iter > 0) ctx.compute(params_.compute_per_iter);
      touch_dynamic();
      if (n > 1) {
        if (r == 0) {
          fill_token(token);
          comm.send(ctx, token, right, kTag);
          comm.recv(ctx, token, left, kTag);
          fold(token);
        } else {
          comm.recv(ctx, token, left, kTag);
          fold(token);
          fill_token(token);
          comm.send(ctx, token, right, kTag);
        }
      } else {
        fill_token(token);
        fold(token);
      }
    }
    comm.barrier(ctx);
  }

  [[nodiscard]] Buffer snapshot() override {
    Writer w;
    w.i32(round_);
    w.u64(fingerprint_);
    w.blob(dynamic_);
    // The static blob last, unprefixed: its bytes land at a fixed offset in
    // every snapshot, so unchanged chunks dedup across checkpoints.
    w.raw(static_blob_.data(), static_blob_.size());
    return w.take();
  }

  void restore(ConstBytes image) override {
    Reader r(image);
    round_ = r.i32();
    fingerprint_ = r.u64();
    dynamic_ = r.blob();
    ConstBytes rest = r.rest();
    static_blob_.assign(rest.begin(), rest.end());
  }

  [[nodiscard]] Buffer result() const override {
    Writer w;
    w.u64(fingerprint_);
    return w.take();
  }

 private:
  static constexpr mpi::Tag kTag = 23;

  void fill_token(Buffer& token) const {
    std::uint64_t x = fingerprint_ + static_cast<std::uint64_t>(round_) + 1;
    for (std::size_t i = 0; i < token.size(); ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      token[i] = static_cast<std::byte>(x >> 56);
    }
  }

  void fold(ConstBytes token) {
    fingerprint_ = fingerprint_ * 31 + fnv1a(token) + 1;
  }

  void touch_dynamic() {
    std::uint64_t x = fingerprint_ ^ static_cast<std::uint64_t>(round_);
    for (std::size_t i = 0; i < dynamic_.size(); ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      dynamic_[i] = static_cast<std::byte>(x >> 56);
    }
  }

  Params params_;
  std::uint64_t* stall_ns_ = nullptr;
  std::uint64_t* ckpts_ = nullptr;
  Buffer static_blob_;
  Buffer dynamic_;
  int round_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace mpiv::apps
