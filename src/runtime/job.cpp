#include "runtime/job.hpp"

#include <chrono>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "p4/p4_device.hpp"
#include "services/ckpt_scheduler.hpp"
#include "services/ckpt_server.hpp"
#include "services/dispatcher.hpp"
#include "services/event_logger.hpp"
#include "trace/sinks.hpp"
#include "v1/v1_device.hpp"
#include "v2/v2_device.hpp"

namespace mpiv::runtime {

const char* device_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kP4: return "MPICH-P4";
    case DeviceKind::kV1: return "MPICH-V1";
    case DeviceKind::kV2: return "MPICH-V2";
  }
  return "?";
}

SimDuration JobResult::max_mpi_time() const {
  SimDuration m = 0;
  for (const RankResult& r : ranks) m = std::max(m, r.profiler.total_mpi_time());
  return m;
}

bool JobResult::outputs_all_equal() const {
  for (const RankResult& r : ranks) {
    if (r.output != ranks[0].output) return false;
  }
  return true;
}

namespace {

/// Owns every object the job's fibers reference. Destroyed only after
/// Engine::shutdown() unwinds the fibers (see destructor).
class Cluster {
 public:
  Cluster(sim::Engine& eng, net::Network& net, const JobConfig& cfg,
          const AppFactory& factory)
      : eng_(eng), net_(net), cfg_(cfg), factory_(factory) {
    results_.resize(static_cast<std::size_t>(cfg_.nprocs));
    if (cfg_.trace.enabled && trace::kCompiled) {
      book_ = std::make_shared<trace::TraceBook>(cfg_.trace, &eng_);
    }
  }

  ~Cluster() { eng_.shutdown(); }

  void start() {
    svc_node_ = net_.add_node("frontend");
    cs_node_ = net_.add_node("ckpt-server");
    for (int r = 0; r < cfg_.nprocs; ++r) {
      compute_nodes_.push_back(net_.add_node("cn" + std::to_string(r)));
    }
    node_of_rank_ = compute_nodes_;
    for (int i = 0; i < cfg_.spare_nodes; ++i) {
      spare_pool_.push_back(net_.add_node("spare" + std::to_string(i)));
    }
    switch (cfg_.device) {
      case DeviceKind::kP4: start_p4(); break;
      case DeviceKind::kV1: start_v1(); break;
      case DeviceKind::kV2: start_v2(); break;
    }
    for (const faults::FaultEvent& f : cfg_.fault_plan.events) {
      MPIV_CHECK(cfg_.device != DeviceKind::kP4,
                 "fault plans require a fault-tolerant device");
      switch (f.target) {
        case faults::FaultTarget::kCompute: {
          mpi::Rank rank = f.rank;
          eng_.schedule_at(f.at, [this, rank] {
            if (disp_ == nullptr || !disp_->job_complete()) {
              MPIV_TRACE(rec(trace::Role::kDaemon, rank), trace::Kind::kCrash);
              net_.kill_node(node_of_rank_[static_cast<std::size_t>(rank)]);
            }
          });
          break;
        }
        case faults::FaultTarget::kEventLogger: {
          MPIV_CHECK(cfg_.device == DeviceKind::kV2,
                     "event-logger faults require the V2 device");
          auto idx = static_cast<std::size_t>(f.rank) % els_.size();
          eng_.schedule_at(f.at, [this, idx] {
            if (disp_ == nullptr || !disp_->job_complete()) {
              MPIV_TRACE(rec(trace::Role::kEventLogger,
                             static_cast<std::int32_t>(idx)),
                         trace::Kind::kCrash);
              net_.kill_node(el_nodes_[idx]);
            }
          });
          if (f.revive) {
            // Volatile store: the replica reboots empty; the daemons that
            // use it resync it from their in-memory logs.
            eng_.schedule_at(f.at + cfg_.restart_delay, [this, idx] {
              if (disp_ != nullptr && disp_->job_complete()) return;
              MPIV_TRACE(rec(trace::Role::kEventLogger,
                             static_cast<std::int32_t>(idx)),
                         trace::Kind::kSpawn, {.flag = true});
              net_.revive_node(el_nodes_[idx]);
              els_[idx]->clear();
              sim::Process* p = eng_.spawn(
                  "event-logger" + std::to_string(idx) + "'",
                  [srv = els_[idx].get()](sim::Context& ctx) { srv->run(ctx); });
              net_.register_process(el_nodes_[idx], p);
            });
          }
          break;
        }
        case faults::FaultTarget::kCkptServer: {
          MPIV_CHECK(cfg_.device == DeviceKind::kV2,
                     "ckpt-server faults require the V2 device");
          auto idx = static_cast<std::size_t>(f.rank) % css_.size();
          eng_.schedule_at(f.at, [this, idx] {
            if (disp_ == nullptr || !disp_->job_complete()) {
              MPIV_TRACE(rec(trace::Role::kCkptServer,
                             static_cast<std::int32_t>(idx)),
                         trace::Kind::kCrash);
              net_.kill_node(cs_nodes_[idx]);
            }
          });
          if (f.revive) {
            // Stable storage: the stripe reboots with its store intact.
            eng_.schedule_at(f.at + cfg_.restart_delay, [this, idx] {
              if (disp_ != nullptr && disp_->job_complete()) return;
              MPIV_TRACE(rec(trace::Role::kCkptServer,
                             static_cast<std::int32_t>(idx)),
                         trace::Kind::kSpawn, {.flag = true});
              net_.revive_node(cs_nodes_[idx]);
              sim::Process* p = eng_.spawn(
                  "ckpt-server" + std::to_string(idx) + "'",
                  [srv = css_[idx].get()](sim::Context& ctx) { srv->run(ctx); });
              net_.register_process(cs_nodes_[idx], p);
            });
          }
          break;
        }
      }
    }
    if (cfg_.ckpt_server_fails_at >= 0) {
      eng_.schedule_at(cfg_.ckpt_server_fails_at, [this] {
        MPIV_TRACE(rec(trace::Role::kCkptServer, 0), trace::Kind::kCrash);
        net_.kill_node(cs_node_);
      });
      if (cfg_.ckpt_server_recovers && !css_.empty()) {
        // Reboot stripe 0 with its store intact (stable storage).
        eng_.schedule_at(cfg_.ckpt_server_fails_at + cfg_.restart_delay,
                         [this] {
                           MPIV_TRACE(rec(trace::Role::kCkptServer, 0),
                                      trace::Kind::kSpawn, {.flag = true});
                           net_.revive_node(cs_node_);
                           sim::Process* p = eng_.spawn(
                               "ckpt-server'",
                               [srv = css_.front().get()](sim::Context& ctx) {
                                 srv->run(ctx);
                               });
                           net_.register_process(cs_node_, p);
                         });
      }
    }
  }

  JobResult collect() {
    JobResult out;
    out.ranks = results_;
    out.wire = net_.counters();
    bool all = true;
    for (const RankResult& r : out.ranks) {
      all = all && r.finished;
      out.makespan = std::max(out.makespan, r.finish_time);
    }
    out.success = all && (disp_ == nullptr || disp_->job_complete());
    out.restarts = disp_ != nullptr ? disp_->total_restarts() : 0;
    // Per-daemon counters all flow through the registry (sums, with the
    // per-replica lag watermarks merging by max); the legacy struct view is
    // derived from the merged registry.
    for (v2::Daemon* d : latest_daemon_) {
      if (d == nullptr) continue;
      out.counters.merge(d->stats().registry());
    }
    out.daemon_stats = v2::DaemonStats::from_registry(out.counters);
    // Stripe 0 installs one table per checkpoint, so its store count is the
    // per-checkpoint figure regardless of stripe fan-out.
    if (!css_.empty()) out.checkpoints_stored = css_.front()->images_stored();
    for (const auto& cs : css_) out.ckpt_stored_bytes += cs->stored_bytes();
    for (const auto& el : els_) {
      out.el_events_stored += el->total_events_stored();
      out.el_stores_consistent =
          out.el_stores_consistent && el->store_consistent();
    }
    // Job-level tallies ride the same registry so bench JSON can dump one
    // flat counters object.
    out.counters.add("restarts", out.restarts);
    out.counters.add("checkpoints_stored",
                     static_cast<std::int64_t>(out.checkpoints_stored));
    out.counters.add("ckpt_stored_bytes",
                     static_cast<std::int64_t>(out.ckpt_stored_bytes));
    out.counters.add("el_events_stored",
                     static_cast<std::int64_t>(out.el_events_stored));
    if (book_) {
      out.counters.add("trace_events_recorded",
                       static_cast<std::int64_t>(book_->total_recorded()));
      out.counters.add("trace_events_dropped",
                       static_cast<std::int64_t>(book_->total_dropped()));
      if (!cfg_.trace.jsonl_path.empty()) {
        trace::write_jsonl_file(cfg_.trace.jsonl_path, book_->merged(),
                                book_->total_dropped());
      }
      if (!cfg_.trace.chrome_path.empty()) {
        trace::write_chrome_trace_file(cfg_.trace.chrome_path,
                                       book_->merged());
      }
      out.trace = book_;
    }
    return out;
  }

 private:
  /// Recorder for (role, id), or nullptr when tracing is off.
  trace::TraceRecorder* rec(trace::Role role, std::int32_t id) {
    return book_ ? book_->recorder(role, id) : nullptr;
  }

  // ---------------- P4: no services, direct connections ----------------
  void start_p4() {
    MPIV_CHECK(cfg_.fault_plan.events.empty(), "P4 cannot survive faults");
    std::vector<net::Address> directory;
    for (int r = 0; r < cfg_.nprocs; ++r) {
      directory.push_back({compute_nodes_[static_cast<std::size_t>(r)],
                           p4::kPortBase + r});
    }
    for (int r = 0; r < cfg_.nprocs; ++r) {
      sim::Process* p = eng_.spawn(
          "rank" + std::to_string(r), [this, r, directory](sim::Context& ctx) {
            p4::P4Config pcfg;
            pcfg.node = directory[static_cast<std::size_t>(r)].node;
            pcfg.rank = r;
            pcfg.size = cfg_.nprocs;
            pcfg.directory = directory;
            p4::P4Device dev(net_, pcfg);
            run_app(ctx, dev, r);
          });
      net_.register_process(compute_nodes_[static_cast<std::size_t>(r)], p);
    }
  }

  // ---------------- V1: channel memories ----------------
  void start_v1() {
    MPIV_CHECK(cfg_.fault_plan.events.empty(),
               "V1 fault recovery is exercised through its own tests; the "
               "job runner wires V1 for performance comparison only");
    int ncm = cfg_.channel_memories > 0 ? cfg_.channel_memories
                                        : (cfg_.nprocs + 3) / 4;
    std::vector<net::Address> cms;
    for (int i = 0; i < ncm; ++i) {
      net::NodeId n = net_.add_node("cm" + std::to_string(i));
      cms.push_back({n, v2::kChannelMemoryPort + i});
      auto cm = std::make_unique<v1::ChannelMemory>(
          net_, v1::ChannelMemory::Config{n, v2::kChannelMemoryPort + i});
      sim::Process* pcm = eng_.spawn(
          "cm" + std::to_string(i),
          [srv = cm.get()](sim::Context& ctx) { srv->run(ctx); });
      net_.register_process(n, pcm);
      cms_.push_back(std::move(cm));
    }
    for (int r = 0; r < cfg_.nprocs; ++r) {
      sim::Process* p = eng_.spawn(
          "rank" + std::to_string(r), [this, r, cms](sim::Context& ctx) {
            v1::V1Config vcfg;
            vcfg.node = compute_nodes_[static_cast<std::size_t>(r)];
            vcfg.rank = r;
            vcfg.size = cfg_.nprocs;
            vcfg.channel_memories = cms;
            v1::V1Device dev(net_, vcfg);
            run_app(ctx, dev, r);
          });
      net_.register_process(compute_nodes_[static_cast<std::size_t>(r)], p);
    }
  }

  // ---------------- V2: full fault-tolerant stack ----------------
  void start_v2() {
    latest_daemon_.assign(static_cast<std::size_t>(cfg_.nprocs), nullptr);

    // Event loggers, each on a node of its own so a fault plan can kill
    // any one of them without taking the dispatcher down. The cluster
    // provisions enough loggers for the requested replica groups.
    int nels = std::max({1, cfg_.n_event_loggers, cfg_.el_replication});
    for (int i = 0; i < nels; ++i) {
      net::NodeId el_node = net_.add_node("el" + std::to_string(i));
      el_nodes_.push_back(el_node);
      services::EventLoggerServer::Config elcfg{el_node, cfg_.el_port};
      elcfg.trace = rec(trace::Role::kEventLogger, i);
      els_.push_back(
          std::make_unique<services::EventLoggerServer>(net_, elcfg));
      el_addrs_.push_back({el_node, cfg_.el_port});
      sim::Process* pel = eng_.spawn(
          "event-logger" + std::to_string(i),
          [srv = els_.back().get()](sim::Context& ctx) { srv->run(ctx); });
      net_.register_process(el_node, pel);
    }

    // Checkpoint stripes: stripe 0 on the dedicated ckpt-server node (the
    // one the fault injector targets), extra stripes on nodes of their own.
    int nstripes = std::max(1, cfg_.n_ckpt_servers);
    for (int i = 0; i < nstripes; ++i) {
      net::NodeId node =
          i == 0 ? cs_node_ : net_.add_node("cs" + std::to_string(i));
      cs_nodes_.push_back(node);
      services::CkptServer::Config ccfg{node};
      ccfg.stripe_index = i;
      ccfg.stripe_count = nstripes;
      css_.push_back(std::make_unique<services::CkptServer>(net_, ccfg));
      cs_addrs_.push_back({node, v2::kCkptServerPort});
      sim::Process* pcs = eng_.spawn(
          "ckpt-server" + std::to_string(i),
          [srv = css_.back().get()](sim::Context& ctx) { srv->run(ctx); });
      net_.register_process(node, pcs);
    }

    net::Address sched_addr{net::kNoNode, 0};
    if (cfg_.checkpointing) {
      services::CkptScheduler::Config scfg;
      scfg.node = svc_node_;
      scfg.trace = rec(trace::Role::kScheduler, 0);
      scfg.nranks = cfg_.nprocs;
      scfg.policy = cfg_.ckpt_policy;
      scfg.seed = cfg_.seed;
      scfg.period = cfg_.ckpt_period;
      scfg.first_order_after = cfg_.first_ckpt_after;
      sched_ = std::make_unique<services::CkptScheduler>(net_, scfg);
      sim::Process* psc = eng_.spawn(
          "ckpt-scheduler",
          [srv = sched_.get()](sim::Context& ctx) { srv->run(ctx); });
      net_.register_process(svc_node_, psc);
      sched_addr = {svc_node_, v2::kSchedulerPort};
    }

    services::Dispatcher::Config dcfg;
    dcfg.node = svc_node_;
    dcfg.nranks = cfg_.nprocs;
    dcfg.restart_delay = cfg_.restart_delay;
    dcfg.scheduler = sched_addr;
    dcfg.respawn = [this](mpi::Rank rank, int incarnation) {
      auto ri = static_cast<std::size_t>(rank);
      if (!spare_pool_.empty()) {
        // Restart on a different node: take a spare, return the vacated
        // (rebooted) node to the pool.
        net::NodeId fresh = spare_pool_.front();
        spare_pool_.erase(spare_pool_.begin());
        net_.revive_node(node_of_rank_[ri]);
        spare_pool_.push_back(node_of_rank_[ri]);
        node_of_rank_[ri] = fresh;
      }
      spawn_rank_v2(rank, incarnation);
    };
    dcfg.locate = [this](mpi::Rank rank) {
      return net::Address{node_of_rank_[static_cast<std::size_t>(rank)],
                          v2::kDaemonPortBase + rank};
    };
    disp_ = std::make_unique<services::Dispatcher>(net_, dcfg);
    sim::Process* pd = eng_.spawn(
        "dispatcher", [srv = disp_.get()](sim::Context& ctx) { srv->run(ctx); });
    net_.register_process(svc_node_, pd);

    for (int r = 0; r < cfg_.nprocs; ++r) spawn_rank_v2(r, 0);
  }

  void spawn_rank_v2(mpi::Rank rank, int incarnation) {
    auto ri = static_cast<std::size_t>(rank);
    net::NodeId node = node_of_rank_[ri];
    net_.revive_node(node);
    pipes_.push_back(std::make_unique<net::Pipe>(eng_, cfg_.net_params));
    net::Pipe* pipe = pipes_.back().get();

    v2::DaemonConfig dcfg;
    dcfg.rank = rank;
    dcfg.size = cfg_.nprocs;
    dcfg.incarnation = incarnation;
    dcfg.node = node;
    dcfg.peer_addrs.clear();
    for (int q = 0; q < cfg_.nprocs; ++q) {
      dcfg.peer_addrs.push_back({node_of_rank_[static_cast<std::size_t>(q)],
                                 v2::kDaemonPortBase + q});
    }
    // Replica group: explicit per-rank placement when configured, else
    // loggers (rank, rank+1, ...) mod the logger count.
    if (!cfg_.el_groups.empty()) {
      const auto& group = cfg_.el_groups[ri];
      MPIV_CHECK(!group.empty(), "job: empty event-logger group for a rank");
      for (int idx : group) {
        dcfg.event_loggers.push_back(
            el_addrs_[static_cast<std::size_t>(idx) % el_addrs_.size()]);
      }
    } else {
      int repl = std::min(std::max(1, cfg_.el_replication),
                          static_cast<int>(el_addrs_.size()));
      for (int j = 0; j < repl; ++j) {
        dcfg.event_loggers.push_back(
            el_addrs_[(ri + static_cast<std::size_t>(j)) % el_addrs_.size()]);
      }
    }
    dcfg.el_connect_budget = cfg_.el_connect_budget;
    dcfg.ckpt_servers = cs_addrs_;
    if (cfg_.checkpointing) dcfg.scheduler = {svc_node_, v2::kSchedulerPort};
    dcfg.dispatcher = {svc_node_, v2::kDispatcherPort};
    dcfg.gate_sends = cfg_.v2_gate_sends;
    dcfg.legacy_datapath = cfg_.v2_legacy_datapath;
    dcfg.full_image_ckpt = cfg_.v2_full_image_ckpt;
    dcfg.serial_restart = cfg_.v2_serial_restart;
    dcfg.optional_connect_budget = cfg_.cs_connect_budget;
    dcfg.trace = rec(trace::Role::kDaemon, rank);
    dcfg.trace_mutation = cfg_.trace_mutation;
    daemons_.push_back(std::make_unique<v2::Daemon>(net_, *pipe, dcfg));
    v2::Daemon* daemon = daemons_.back().get();
    latest_daemon_[ri] = daemon;
    if (auto* rr = rec(trace::Role::kRuntime, rank)) {
      rr->set_incarnation(incarnation);
    }

    std::string suffix =
        std::to_string(rank) + "#" + std::to_string(incarnation);
    sim::Process* dp = eng_.spawn(
        "daemon" + suffix, [daemon](sim::Context& ctx) { daemon->run(ctx); });
    sim::Process* ap =
        eng_.spawn("rank" + suffix, [this, pipe, rank](sim::Context& ctx) {
          v2::V2Device dev(*pipe, rank, cfg_.nprocs, cfg_.v2_full_image_ckpt,
                           rec(trace::Role::kRuntime, rank));
          run_app(ctx, dev, rank);
        });
    net_.register_process(node, dp);
    net_.register_process(node, ap);
  }

  /// Common app-process body for all devices.
  void run_app(sim::Context& ctx, mpi::Device& dev, mpi::Rank rank) {
    mpi::Comm comm(dev);
    comm.init(ctx);
    std::unique_ptr<App> app = factory_(rank, cfg_.nprocs);
    if (auto blob = comm.restore_checkpoint(ctx)) app->restore(*blob);
    app->run(ctx, comm);
    RankResult rr;
    rr.finished = true;
    rr.output = app->result();
    comm.finalize(ctx);
    rr.finish_time = ctx.now();
    rr.profiler = comm.profiler();
    rr.copies = dev.copy_counters();
    results_[static_cast<std::size_t>(rank)] = std::move(rr);
  }

  sim::Engine& eng_;
  net::Network& net_;
  const JobConfig& cfg_;
  const AppFactory& factory_;

  net::NodeId svc_node_ = net::kNoNode;
  net::NodeId cs_node_ = net::kNoNode;
  std::vector<net::NodeId> compute_nodes_;
  std::vector<net::Address> peer_addrs_;
  std::vector<std::unique_ptr<net::Pipe>> pipes_;
  std::vector<std::unique_ptr<v2::Daemon>> daemons_;
  std::vector<std::unique_ptr<v1::ChannelMemory>> cms_;
  std::vector<v2::Daemon*> latest_daemon_;
  std::vector<std::unique_ptr<services::EventLoggerServer>> els_;
  std::vector<net::Address> el_addrs_;
  std::vector<net::NodeId> el_nodes_;
  std::vector<net::NodeId> cs_nodes_;       // stripe order; [0] == cs_node_
  std::vector<net::NodeId> node_of_rank_;   // current placement per rank
  std::vector<net::NodeId> spare_pool_;
  std::vector<std::unique_ptr<services::CkptServer>> css_;  // stripe order
  std::vector<net::Address> cs_addrs_;
  std::unique_ptr<services::CkptScheduler> sched_;
  std::unique_ptr<services::Dispatcher> disp_;
  std::vector<RankResult> results_;
  std::shared_ptr<trace::TraceBook> book_;
};

}  // namespace

JobResult run_job(const JobConfig& config, const AppFactory& factory) {
  sim::Engine eng;
  if (config.fiber_stack_bytes != 0) {
    eng.set_fiber_stack_bytes(config.fiber_stack_bytes);
  }
  net::Network net(eng, config.net_params);
  Cluster cluster(eng, net, config, factory);
  cluster.start();
  auto wall_start = std::chrono::steady_clock::now();
  eng.run_until(config.time_limit);
  double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_start)
                    .count();
  JobResult out = cluster.collect();
  // Engine-side scale counters ride the same registry as the protocol
  // tallies so every bench's JSON carries them. Names with a "host_" prefix
  // depend on wall-clock speed and are excluded from determinism checks.
  const sim::EngineStats& st = eng.stats();
  out.counters.add("sim_events_executed",
                   static_cast<std::int64_t>(st.events_executed));
  out.counters.add("sim_events_scheduled",
                   static_cast<std::int64_t>(st.events_scheduled));
  out.counters.add("sim_events_cancelled",
                   static_cast<std::int64_t>(st.events_cancelled));
  out.counters.add("sim_live_events_peak",
                   static_cast<std::int64_t>(st.live_events_peak),
                   MergeKind::kMax);
  out.counters.add("sim_fiber_switches",
                   static_cast<std::int64_t>(st.fiber_switches));
  out.counters.add("sim_fiber_stacks_created",
                   static_cast<std::int64_t>(st.fiber_stacks_created));
  out.counters.add("sim_fiber_stack_peak_bytes",
                   static_cast<std::int64_t>(st.fiber_stack_peak_bytes),
                   MergeKind::kMax);
  out.counters.add(
      "host_events_per_sec",
      wall > 0.0 ? static_cast<std::int64_t>(
                       static_cast<double>(st.events_executed) / wall)
                 : 0);
  CounterRegistry& tally = sim_tally();
  tally.add("sim_events_executed",
            static_cast<std::int64_t>(st.events_executed));
  tally.add("sim_events_cancelled",
            static_cast<std::int64_t>(st.events_cancelled));
  tally.add("sim_live_events_peak",
            static_cast<std::int64_t>(st.live_events_peak), MergeKind::kMax);
  tally.add("sim_fiber_switches", static_cast<std::int64_t>(st.fiber_switches));
  tally.add("sim_fiber_stacks_created",
            static_cast<std::int64_t>(st.fiber_stacks_created));
  tally.add("sim_fiber_stack_peak_bytes",
            static_cast<std::int64_t>(st.fiber_stack_peak_bytes),
            MergeKind::kMax);
  tally.add("host_wall_ns", static_cast<std::int64_t>(wall * 1e9));
  return out;
}

CounterRegistry& sim_tally() {
  static CounterRegistry reg;
  return reg;
}

}  // namespace mpiv::runtime
