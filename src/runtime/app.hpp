// Application interface for jobs run under the MPICH-V runtime.
//
// Checkpoint support is cooperative (the Condor-library substitute, see
// DESIGN.md): an app exposes snapshot()/restore() over its own state and
// calls checkpoint_point() at quiescent points (no outstanding requests).
// Apps must be deterministic functions of (rank, size, received messages) —
// the piecewise-determinism assumption the protocol is built on; any
// randomness must be drawn from seeded state included in the snapshot.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "mpi/comm.hpp"

namespace mpiv::runtime {

class App {
 public:
  virtual ~App() = default;

  /// The MPI program. Called after restore() when resuming from an image.
  virtual void run(sim::Context& ctx, mpi::Comm& comm) = 0;

  /// Serializes the application state for a checkpoint image.
  virtual Buffer snapshot() { return {}; }
  /// Restores from a snapshot() blob; run() must then continue from there.
  virtual void restore(ConstBytes /*image*/) {}

  /// Final output fingerprint (used by tests to prove that executions with
  /// faults are equivalent to fault-free ones).
  [[nodiscard]] virtual Buffer result() const { return {}; }

 protected:
  /// Call between iterations, with no requests in flight: takes a
  /// checkpoint if the daemon asked for one (polling is free — the request
  /// flag piggybacks on every daemon reply).
  void checkpoint_point(sim::Context& ctx, mpi::Comm& comm) {
    if (comm.checkpoint_requested()) {
      comm.take_checkpoint(ctx, snapshot());
    }
  }
};

using AppFactory =
    std::function<std::unique_ptr<App>(mpi::Rank rank, mpi::Rank size)>;

}  // namespace mpiv::runtime
