// Job runner: builds a simulated cluster for one MPI job, wires the chosen
// channel device (P4 / V1 / V2) with its services, applies the fault plan,
// runs to completion and collects results. This is the public entry point
// used by examples, benches and the integration tests.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "faults/plan.hpp"
#include "mpi/profiler.hpp"
#include "net/network.hpp"
#include "runtime/app.hpp"
#include "services/ckpt_policies.hpp"
#include "trace/trace.hpp"
#include "v2/daemon.hpp"

namespace mpiv::runtime {

enum class DeviceKind { kP4, kV1, kV2 };

const char* device_name(DeviceKind kind);

struct JobConfig {
  int nprocs = 2;
  DeviceKind device = DeviceKind::kV2;
  net::NetParams net_params;

  // Checkpointing (V2; ignored by P4).
  bool checkpointing = false;
  services::PolicyKind ckpt_policy = services::PolicyKind::kRoundRobin;
  SimDuration ckpt_period = 0;              // 0 = continuous
  SimDuration first_ckpt_after = seconds(1);
  /// Striped checkpoint storage: images are chunked and chunks are placed
  /// across this many servers by content hash. Stripe 0 lives on the
  /// dedicated ckpt-server node (and is the one targeted by
  /// ckpt_server_fails_at); extra stripes get nodes of their own.
  int n_ckpt_servers = 1;
  /// Budget for a daemon's optional connects (checkpoint servers,
  /// scheduler): after this long the daemon proceeds without the service.
  SimDuration cs_connect_budget = milliseconds(100);

  // Faults (V2/V1 only; P4 has no recovery).
  faults::FaultPlan fault_plan;
  SimDuration restart_delay = milliseconds(100);

  // MPICH-V1: number of Channel Memory servers (0 = one per 4 nodes).
  int channel_memories = 0;

  /// Spare computing nodes: a crashed rank restarts on a free spare when
  /// one is available ("possibly on a different node"); the vacated node
  /// rejoins the spare pool once revived.
  int spare_nodes = 0;

  /// Several event loggers may serve one system (§4.5). By default rank r
  /// binds to the replica group {r, r+1, ..} mod the logger count; explicit
  /// groups override this via el_groups. Loggers never talk to each other —
  /// the daemons replicate. Each logger runs on a node of its own.
  int n_event_loggers = 1;
  /// Replica group size (2f+1): every daemon appends each reception event
  /// to this many loggers and the WAITLOGGED gate counts an event as logged
  /// once a majority acked it. The cluster provisions
  /// max(n_event_loggers, el_replication) loggers.
  int el_replication = 1;
  /// Explicit per-rank replica groups (logger indices). Empty = default
  /// placement; otherwise one non-empty group per rank.
  std::vector<std::vector<int>> el_groups;
  /// Listen port of every event logger (lifted from the old hardcoded
  /// v2::kEventLoggerPort binding).
  std::int32_t el_port = v2::kEventLoggerPort;
  /// Per-replica connect budget for a daemon's EL connects (the analogue of
  /// cs_connect_budget): setup declares an unreachable replica down after
  /// this long and proceeds if a quorum is up.
  SimDuration el_connect_budget = milliseconds(100);

  /// Fault injection against the checkpoint server (allowed to be
  /// unreliable, §4.3): kill its node at this time (-1 = never).
  SimTime ckpt_server_fails_at = -1;
  /// Whether the checkpoint server reboots (restart_delay later) with its
  /// stored images intact — it writes to stable storage. When false it
  /// stays dead; ranks that crash later restart from scratch, which is
  /// only fully recoverable while no event-log pruning has happened yet.
  bool ckpt_server_recovers = true;

  /// ABLATION ONLY: run V2 without the WAITLOGGED send gate (see
  /// v2::DaemonConfig::gate_sends).
  bool v2_gate_sends = true;
  /// ABLATION ONLY: emulate the pre-zero-copy V2 datapath (see
  /// v2::DaemonConfig::legacy_datapath) for A/B benchmarking.
  bool v2_legacy_datapath = false;
  /// ABLATION ONLY: ship full checkpoint images with a blocking app-side
  /// handoff instead of the incremental chunked-delta datapath (see
  /// v2::DaemonConfig::full_image_ckpt) for A/B benchmarking.
  bool v2_full_image_ckpt = false;
  /// ABLATION ONLY: serialize the restart datapath (fetch, then download,
  /// then fan-out) instead of the overlapped recovery fast path (see
  /// v2::DaemonConfig::serial_restart) for A/B benchmarking.
  bool v2_serial_restart = false;

  /// Causal trace recorder (src/trace/): when trace.enabled, every protocol
  /// actor records structured events; run_job keeps the merged TraceBook on
  /// the JobResult and writes the configured sinks. Compiled out entirely
  /// under -DMPIV_TRACE=OFF.
  trace::TraceConfig trace;
  /// TEST ONLY: deliberately violate one protocol invariant so the offline
  /// auditor's detection can be asserted (see trace::Mutation).
  trace::Mutation trace_mutation = trace::Mutation::kNone;

  SimTime time_limit = seconds(100000);
  std::uint64_t seed = 1;

  /// Stack size for the simulator's per-process fibers (0 = engine default,
  /// currently 512 KiB). Each fiber stack gets an mprotect guard page below
  /// it, so an overflow at 1024 ranks faults loudly instead of silently
  /// corrupting a neighbouring stack. Ignored under MPIV_SIM_THREADS.
  std::size_t fiber_stack_bytes = 0;
};

struct RankResult {
  bool finished = false;
  SimTime finish_time = 0;
  mpi::Profiler profiler;
  mpi::CopyCounters copies;  // device-side payload copy accounting
  Buffer output;             // App::result()
};

struct JobResult {
  bool success = false;
  /// Latest app completion across ranks (excludes shutdown housekeeping).
  SimTime makespan = 0;
  std::vector<RankResult> ranks;
  int restarts = 0;
  net::WireCounters wire;
  /// Aggregate V2 daemon statistics (final incarnations). Zero for P4.
  v2::DaemonStats daemon_stats;
  std::uint64_t checkpoints_stored = 0;
  /// Bytes resident across all checkpoint stripes (content store + legacy
  /// images) at job end.
  std::uint64_t ckpt_stored_bytes = 0;
  std::uint64_t el_events_stored = 0;
  /// Every event-logger store passed its ordering/duplicate-freedom check
  /// at job end (vacuously true for non-V2 devices).
  bool el_stores_consistent = true;
  /// All per-daemon counters plus job-level tallies, merged through the
  /// common registry (daemon_stats above is derived from this).
  CounterRegistry counters;
  /// The job's trace, when JobConfig::trace.enabled — audit it in-process
  /// with trace::audit(trace->merged(), trace->total_dropped()).
  std::shared_ptr<trace::TraceBook> trace;

  [[nodiscard]] SimDuration max_mpi_time() const;
  /// Uniform-output check: true if every rank's output equals rank 0's.
  [[nodiscard]] bool outputs_all_equal() const;
};

JobResult run_job(const JobConfig& config, const AppFactory& factory);

/// Process-wide accumulation of the engine-side scale counters
/// (sim_events_executed, fiber stats, host wall time) across every run_job
/// call. Benches embed this in their JSON (see bench::sim_json_object) so
/// all of them report events/sec and fiber memory, not just bench_scale.
CounterRegistry& sim_tally();

}  // namespace mpiv::runtime
