// Discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, insertion sequence) — ties break deterministically in insertion
// order, which together with the one-runnable-process-at-a-time fiber
// handshake makes every simulation bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace mpiv::sim {

class Process;
class Context;

/// Handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  EventId schedule_at(SimTime t, std::function<void()> fn);
  EventId schedule_in(SimDuration d, std::function<void()> fn);
  void cancel(EventId id);

  /// Spawns a cooperative process; its body starts at the current virtual
  /// time (via an immediate event). The returned pointer stays valid for the
  /// engine's lifetime.
  Process* spawn(std::string name, std::function<void(Context&)> body);

  /// Requests termination of a process: its blocking call throws
  /// ProcessKilled, unwinding the fiber stack (running destructors).
  void kill(Process* p);

  /// Runs until the event queue drains or stop() is called.
  void run();
  /// Runs until virtual time would exceed `t` (clock is left at min(t, next)).
  void run_until(SimTime t);
  void stop() { stopped_ = true; }

  /// Unwinds every live fiber immediately (throwing ProcessKilled inside
  /// them) and returns when all are finished. Call before destroying
  /// resources that fibers reference (e.g. the Network). Idempotent;
  /// also invoked by the destructor as a safety net.
  void shutdown();

  /// Number of events executed so far (for diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  bool pop_next(Event& out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily; small
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace mpiv::sim
