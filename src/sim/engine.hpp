// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a *sharded* calendar of events: every
// event carries a global (time, insertion sequence) key, shards hold small
// binary heaps, and a tournament tree over the shard heads yields the global
// minimum. Because (time, seq) is a total order, the pop sequence is
// identical to the old single-heap engine — sharding is purely a locality /
// scalability structure, and every simulation stays bit-reproducible.
//
// Events are slab-allocated nodes with inline callable storage (EventFn), so
// the steady-state schedule/execute cycle performs no heap allocation, and
// cancellation is an O(1) tombstone on the node (see Engine::cancel).
//
// Simulated processes run on stackful fibers (ucontext) by default, with a
// thread-per-process fallback for debugging (MPIV_SIM_THREADS=1); fiber
// stacks are guard-paged and recycled through a free list owned here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace mpiv::sim {

class Process;
class Context;

/// Handle used to cancel a scheduled event. `seq` is the event's global
/// insertion sequence; shard/slot locate its slab node so cancellation can
/// tombstone it in O(1). A default-constructed id (seq == 0) is a no-op.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  std::uint32_t slot = 0;
};

/// Move-only callable with inline storage sized for the engine's hot-path
/// lambdas (network delivery captures a Buffer, pipe delivery a PipeFrame).
/// Larger callables fall back to a single heap allocation. Replaces
/// std::function in the event queue to kill per-event heap churn.
class EventFn {
 public:
  // Large enough for a captured PipeFrame (Buffer + SharedBuffer) plus a
  // pointer and an int — the biggest lambda on the per-message path.
  static constexpr std::size_t kInlineBytes = 72;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = heap_vtable<Fn>();
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { vt_->call(storage_); }
  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// Destroys the wrapped callable (releasing captured resources) and
  /// leaves the EventFn empty. Cancellation uses this to free resources at
  /// cancel time rather than when the tombstone is eventually popped.
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*call)(void*);
    void (*destroy)(void*);
    void (*relocate)(void*, void*);  // move-construct dst from src
  };

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* p) { delete *static_cast<Fn**>(p); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        }};
    return &vt;
  }

  void move_from(EventFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage_, o.storage_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// How simulated processes execute their bodies. kFibers (the default) runs
/// each process on a ucontext fiber — one OS thread total, ~200ns switches.
/// kThreads is the legacy thread-per-process handshake, kept as an opt-in
/// debugging fallback (MPIV_SIM_THREADS=1); both produce bit-identical
/// simulations.
enum class FiberBackend { kFibers, kThreads };

/// Engine-side execution statistics, exported into JobResult counters.
struct EngineStats {
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t live_events_peak = 0;
  std::uint64_t fiber_switches = 0;
  std::uint64_t fiber_stacks_created = 0;
  std::uint64_t fiber_stack_bytes_in_use = 0;
  std::uint64_t fiber_stack_peak_bytes = 0;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  EventId schedule_at(SimTime t, EventFn fn);
  EventId schedule_in(SimDuration d, EventFn fn);

  /// O(1): tombstones the event's slab node (generation-checked, so a stale
  /// id whose slot was reused is a safe no-op) and releases the callable's
  /// captured resources immediately. Safe to call from inside event
  /// callbacks, including against events already executed or cancelled.
  void cancel(EventId id);

  /// Spawns a cooperative process; its body starts at the current virtual
  /// time (via an immediate event). The returned pointer stays valid for the
  /// engine's lifetime.
  Process* spawn(std::string name, std::function<void(Context&)> body);

  /// Requests termination of a process: its blocking call throws
  /// ProcessKilled, unwinding the fiber stack (running destructors).
  void kill(Process* p);

  /// Runs until the event queue drains or stop() is called.
  void run();
  /// Runs until virtual time would exceed `t` (clock is left at min(t, next)).
  void run_until(SimTime t);
  void stop() { stopped_ = true; }

  /// Unwinds every live fiber immediately (throwing ProcessKilled inside
  /// them) and returns when all are finished. Call before destroying
  /// resources that fibers reference (e.g. the Network). Idempotent;
  /// also invoked by the destructor as a safety net.
  void shutdown();

  /// Number of events executed so far (for diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return stats_.events_executed;
  }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  /// Execution backend for processes spawned after this call. Defaults to
  /// fibers, or threads when MPIV_SIM_THREADS is set in the environment.
  void set_backend(FiberBackend b) { backend_ = b; }
  [[nodiscard]] FiberBackend backend() const { return backend_; }

  /// Stack size for fibers spawned after this call (rounded up to whole
  /// pages; a guard page is added below the stack so overflow faults loudly
  /// instead of corrupting a neighbour). Ignored by the thread backend.
  void set_fiber_stack_bytes(std::size_t n) { stack_bytes_ = n; }
  [[nodiscard]] std::size_t fiber_stack_bytes() const { return stack_bytes_; }

 private:
  friend class Process;

  // ------------------------------------------------------------- calendar
  // Shard count: a power of two. Each spawned process gets its own calendar
  // shard (round-robin), so a node's timers and deliveries cluster in one
  // small heap; pops merge shard heads through the tournament tree.
  static constexpr std::uint32_t kShards = 64;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct EventNode {
    EventFn fn;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
    bool cancelled = false;
  };

  struct Shard {
    std::deque<EventNode> slab;  // stable addresses; indexed by slot
    std::uint32_t free_head = kNoSlot;
    std::vector<HeapEntry> heap;  // min-heap on (time, seq)
  };

  static bool heap_before(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  EventId push_event(std::uint32_t shard, SimTime t, std::uint64_t seq,
                     EventFn fn);
  void heap_push(Shard& sh, HeapEntry e);
  void heap_pop(Shard& sh);
  void update_tournament(std::uint32_t shard);
  /// Winner shard of the whole calendar, or kShards when empty.
  [[nodiscard]] std::uint32_t winner() const { return tree_[1]; }

  /// Pops the next non-cancelled event; drops tombstones without advancing
  /// the clock so a cancelled far-future timer cannot drag virtual time
  /// forward.
  bool pop_next(SimTime& time_out, std::uint64_t& seq_out, EventFn& fn_out);

  // ---------------------------------------------------------- fiber stacks
  struct Stack {
    std::byte* base = nullptr;  // mmap base (guard page lives here)
    std::size_t size = 0;       // total mapping, guard included
    [[nodiscard]] std::byte* usable_base() const;
    [[nodiscard]] std::size_t usable_size() const;
  };
  Stack acquire_stack();
  void release_stack(Stack s);
  static void destroy_stack(Stack s);

  /// Round-robin calendar-shard assignment for spawned processes.
  std::uint32_t assign_shard() { return next_shard_++ % kShards; }
  /// Events scheduled while a process runs land in its own shard.
  void enter_shard(std::uint32_t s) { current_shard_ = s; }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;
  bool trace_progress_ = false;
  EngineStats stats_;
  std::uint64_t live_events_ = 0;

  Shard shards_[kShards];
  std::uint32_t tree_[2 * kShards];  // tournament: winning shard per node
  std::uint32_t current_shard_ = 0;
  std::uint32_t next_shard_ = 0;

  FiberBackend backend_ = FiberBackend::kFibers;
  std::size_t stack_bytes_ = 512 * 1024;
  std::vector<Stack> stack_pool_;

  // ASan fiber bookkeeping: bottom/size of the engine's own (thread) stack,
  // captured on the first switch into a fiber.
  const void* asan_engine_stack_ = nullptr;
  std::size_t asan_engine_stack_size_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace mpiv::sim
