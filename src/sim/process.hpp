// Cooperative simulated processes.
//
// Each Process runs its body on a dedicated OS thread, but a strict
// mutex/condvar handshake guarantees that at any instant either the engine
// thread or exactly one fiber thread is running. Blocking operations park the
// fiber and hand control back to the engine; wakers are engine events.
//
// Parking uses a generation token so that a process with several potential
// wakers (timer, mailbox, kill) ignores stale wakeups deterministically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace mpiv::sim {

/// Thrown inside a fiber when the process is killed; unwinds the stack so
/// RAII releases resources (closing connections = the failure detector).
/// Intentionally NOT derived from std::exception: protocol code that catches
/// std::exception will not accidentally swallow a kill.
struct ProcessKilled {};

class Context;

class Process {
 public:
  Process(Engine& engine, std::string name,
          std::function<void(Context&)> body);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool was_killed() const { return killed_flag_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Engine side: transfers control into the fiber until it parks/finishes.
  /// `token` must match the park generation (stale wakeups are dropped).
  void unpark(std::uint64_t token);

  /// Engine side: request kill. If parked, wakes it so the blocking call
  /// throws ProcessKilled.
  void request_kill();

  /// Engine side, teardown only: kills and unwinds the fiber *now* (without
  /// going through the event queue) and returns once it finished. Used by
  /// Engine::shutdown() so fibers unwind while their resources still exist.
  void synchronous_kill();

  /// Fiber side: parks the fiber; returns on wakeup; throws ProcessKilled if
  /// a kill was requested.
  void park();

  /// Fiber side: current park generation. A waker scheduled *before* parking
  /// must capture wake_token() and call unpark(token).
  [[nodiscard]] std::uint64_t wake_token() const { return token_; }

  /// Fiber side: true when inside this process's fiber thread.
  [[nodiscard]] bool on_fiber() const;

 private:
  friend class Engine;
  friend class Context;
  void fiber_main();
  void start();  // engine side: first transfer into the fiber

  Engine& engine_;
  std::string name_;
  std::function<void(Context&)> body_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool fiber_turn_ = false;   // protected by mu_
  bool started_ = false;
  bool finished_ = false;     // written by fiber before final handoff
  bool kill_requested_ = false;
  bool killed_flag_ = false;
  std::uint64_t token_ = 0;   // park generation; engine/fiber alternate access
  std::thread thread_;
};

/// The interface a process body uses to interact with virtual time.
class Context {
 public:
  explicit Context(Process& p) : p_(p) {}

  [[nodiscard]] Engine& engine() { return p_.engine(); }
  [[nodiscard]] Process& self() { return p_; }
  [[nodiscard]] SimTime now() const { return p_.engine_.now(); }

  /// Blocks for `d` of virtual time.
  void sleep(SimDuration d);
  /// Semantically a computation phase; accounted separately for reports.
  void compute(SimDuration d);
  /// Lets other ready events at the current time run first.
  void yield() { sleep(0); }

  [[nodiscard]] SimDuration compute_time() const { return compute_time_; }

 private:
  Process& p_;
  SimDuration compute_time_ = 0;
};

}  // namespace mpiv::sim
