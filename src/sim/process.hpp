// Cooperative simulated processes.
//
// Each Process runs its body on a stackful fiber: a ucontext coroutine
// switched in and out by the engine (~200ns per switch, one OS thread
// total), so thousand-rank clusters fit in one process without the
// two-OS-context-switch park/unpark handshake of the legacy backend.
// Setting MPIV_SIM_THREADS=1 selects that legacy thread-per-process backend
// (useful under debuggers that are happier with real threads); both
// backends produce bit-identical simulations because in either case exactly
// one body — or the engine — runs at any instant.
//
// Parking uses a generation token so that a process with several potential
// wakers (timer, mailbox, kill) ignores stale wakeups deterministically.
//
// Fiber stacks are mmap'd with a low guard page (overflow faults instead of
// corrupting a neighbour) and are recycled through the engine's stack pool
// across crash/respawn churn. Under AddressSanitizer every switch is
// bracketed with the sanitizer fiber hooks so ASan tracks the active stack.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace mpiv::sim {

/// Thrown inside a fiber when the process is killed; unwinds the stack so
/// RAII releases resources (closing connections = the failure detector).
/// Intentionally NOT derived from std::exception: protocol code that catches
/// std::exception will not accidentally swallow a kill.
struct ProcessKilled {};

class Context;

class Process {
 public:
  Process(Engine& engine, std::string name,
          std::function<void(Context&)> body);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool was_killed() const { return killed_flag_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Engine side: transfers control into the fiber until it parks/finishes.
  /// `token` must match the park generation (stale wakeups are dropped).
  void unpark(std::uint64_t token);

  /// Engine side: request kill. If parked, wakes it so the blocking call
  /// throws ProcessKilled.
  void request_kill();

  /// Engine side, teardown only: kills and unwinds the fiber *now* (without
  /// going through the event queue) and returns once it finished. Used by
  /// Engine::shutdown() so fibers unwind while their resources still exist.
  void synchronous_kill();

  /// Fiber side: parks the fiber; returns on wakeup; throws ProcessKilled if
  /// a kill was requested.
  void park();

  /// Fiber side: current park generation. A waker scheduled *before* parking
  /// must capture wake_token() and call unpark(token).
  [[nodiscard]] std::uint64_t wake_token() const { return token_; }

  /// Fiber side: true when inside this process's fiber.
  [[nodiscard]] bool on_fiber() const;

 private:
  friend class Engine;
  friend class Context;
  struct FiberState;   // ucontext backend (process.cpp)
  struct ThreadState;  // legacy thread backend (process.cpp)

  void start();  // engine side: first transfer into the fiber
  void run_body();
  void enter_fiber();       // engine side: switch into the ucontext fiber
  void thread_main();       // legacy backend: body of the per-process thread
  static void trampoline();

  Engine& engine_;
  std::string name_;
  std::function<void(Context&)> body_;
  std::uint32_t shard_;       // calendar shard for events this process arms

  bool started_ = false;
  bool finished_ = false;     // written by fiber before final handoff
  bool kill_requested_ = false;
  bool killed_flag_ = false;
  std::uint64_t token_ = 0;   // park generation; engine/fiber alternate access

  std::unique_ptr<FiberState> fiber_;    // when backend == kFibers
  std::unique_ptr<ThreadState> thread_;  // when backend == kThreads
};

/// The interface a process body uses to interact with virtual time.
class Context {
 public:
  explicit Context(Process& p) : p_(p) {}

  [[nodiscard]] Engine& engine() { return p_.engine(); }
  [[nodiscard]] Process& self() { return p_; }
  [[nodiscard]] SimTime now() const { return p_.engine_.now(); }

  /// Blocks for `d` of virtual time.
  void sleep(SimDuration d);
  /// Semantically a computation phase; accounted separately for reports.
  void compute(SimDuration d);
  /// Lets other ready events at the current time run first.
  void yield() { sleep(0); }

  [[nodiscard]] SimDuration compute_time() const { return compute_time_; }

 private:
  Process& p_;
  SimDuration compute_time_ = 0;
};

}  // namespace mpiv::sim
