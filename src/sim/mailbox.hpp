// Blocking FIFO mailboxes and wait lists — the only inter-process
// synchronization primitives in the simulator. Because at most one fiber (or
// the engine) runs at a time, these structures need no locking.
//
// Rule: destructors must never block (park); cleanup paths only schedule
// events. A blocking call in a destructor during kill-unwinding would
// terminate the program.
#pragma once

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/process.hpp"

namespace mpiv::sim {

/// Set of parked processes waiting for a condition; wakers schedule
/// immediate engine events so wakeups interleave deterministically.
class WaitList {
 public:
  /// Fiber side: parks the calling process until woken (or killed).
  void wait(Context& ctx) {
    Process& p = ctx.self();
    waiters_.push_back({&p, p.wake_token()});
    p.park();
  }

  /// Registers an already-armed waiter without parking: used to park one
  /// process on several wait lists at once (first waker wins; the park
  /// token makes the others stale).
  void add(Process& p, std::uint64_t token) { waiters_.push_back({&p, token}); }

  /// Wakes every waiter registered so far.
  void wake_all(Engine& engine) {
    for (auto& w : waiters_) {
      Process* p = w.first;
      std::uint64_t token = w.second;
      engine.schedule_at(engine.now(), [p, token] { p->unpark(token); });
    }
    waiters_.clear();
  }

  /// Wakes the longest-waiting process, if any.
  void wake_one(Engine& engine) {
    if (waiters_.empty()) return;
    auto [p, token] = waiters_.front();
    waiters_.erase(waiters_.begin());
    engine.schedule_at(engine.now(), [p = p, token = token] { p->unpark(token); });
  }

  [[nodiscard]] bool empty() const { return waiters_.empty(); }

 private:
  std::vector<std::pair<Process*, std::uint64_t>> waiters_;
};

/// Wakeup channel for select loops that multiplex several event sources
/// (network endpoint + local pipe). Sources poke the notifier on arrival;
/// the owner parks on it when all sources are drained. Single-threaded
/// execution makes the check-then-wait pattern race-free.
class Notifier {
 public:
  explicit Notifier(Engine& engine) : engine_(engine) {}

  void notify() { waiters_.wake_all(engine_); }

  void wait(Context& ctx) { waiters_.wait(ctx); }

  /// Registers an externally-armed waiter (multi-source park); see
  /// WaitList::add.
  void arm(Process& p, std::uint64_t token) { waiters_.add(p, token); }

  /// Returns false if the deadline passed without a notification.
  bool wait_until(Context& ctx, SimTime deadline) {
    if (ctx.now() >= deadline) return false;
    Process& p = ctx.self();
    std::uint64_t token = p.wake_token();
    EventId timer = engine_.schedule_at(deadline, [&p, token] { p.unpark(token); });
    waiters_.wait(ctx);
    engine_.cancel(timer);
    return ctx.now() < deadline;
  }

 private:
  Engine& engine_;
  WaitList waiters_;
};

/// Unbounded FIFO channel. push() may be called from any fiber or from an
/// engine event; recv() only from a fiber.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}

  void push(T value) {
    queue_.push_back(std::move(value));
    waiters_.wake_all(engine_);
  }

  /// Blocks until a value is available.
  T recv(Context& ctx) {
    while (queue_.empty()) waiters_.wait(ctx);
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Blocks until a value is available or `deadline` passes.
  std::optional<T> recv_until(Context& ctx, SimTime deadline) {
    while (queue_.empty()) {
      if (ctx.now() >= deadline) return std::nullopt;
      Process& p = ctx.self();
      std::uint64_t token = p.wake_token();
      EventId timer = engine_.schedule_at(deadline, [&p, token] { p.unpark(token); });
      waiters_.wait(ctx);
      engine_.cancel(timer);
    }
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

 private:
  Engine& engine_;
  std::deque<T> queue_;
  WaitList waiters_;
};

}  // namespace mpiv::sim
