#include "sim/process.hpp"

#include <ucontext.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"

// AddressSanitizer needs to be told about every stack switch so it can track
// redzones and fake-stack frames per fiber instead of flagging the swap as a
// wild jump.
#if defined(__SANITIZE_ADDRESS__)
#define MPIV_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPIV_ASAN_FIBERS 1
#endif
#endif

#if defined(MPIV_ASAN_FIBERS)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace mpiv::sim {

namespace {
// The process whose stack we are currently executing on (nullptr = engine).
// Single-threaded in the fiber backend; per-thread in the thread backend.
thread_local Process* t_current_fiber = nullptr;
}  // namespace

/// ucontext backend: the fiber's own context plus the saved engine-side
/// context it returns to on park/finish. The stack comes from the engine's
/// recycling pool and is released as soon as the fiber finishes.
struct Process::FiberState {
  ucontext_t ctx{};         // fiber context (runs on `stack`)
  ucontext_t engine_ctx{};  // where park/finish swaps back to
  Engine::Stack stack;      // empty until start(); empty again after finish
};

/// Legacy thread backend: one OS thread per process, strictly alternating
/// with the engine through a mutex/condvar "turn" handshake so that — just
/// like with fibers — exactly one of them runs at any instant.
struct Process::ThreadState {
  std::mutex mu;
  std::condition_variable cv;
  bool fiber_turn = false;  // true: process may run; false: engine may run
  std::thread th;
};

Process::Process(Engine& engine, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine),
      name_(std::move(name)),
      body_(std::move(body)),
      shard_(engine.assign_shard()) {
  if (engine_.backend() == FiberBackend::kThreads) {
    thread_ = std::make_unique<ThreadState>();
    thread_->th = std::thread([this] { thread_main(); });
  } else {
    fiber_ = std::make_unique<FiberState>();
  }
}

Process::~Process() {
  if (thread_ != nullptr) {
    if (thread_->th.joinable()) {
      {
        // If the body never ran or is parked forever, release it via kill.
        std::unique_lock<std::mutex> lock(thread_->mu);
        kill_requested_ = true;
        thread_->fiber_turn = true;
        started_ = true;
      }
      thread_->cv.notify_all();
      thread_->th.join();
    }
  } else if (fiber_ != nullptr) {
    // A parked fiber still owns a stack with live frames; unwind it so RAII
    // runs and the stack returns to the engine pool. No-op when finished.
    synchronous_kill();
  }
}

bool Process::on_fiber() const { return t_current_fiber == this; }

// ------------------------------------------------------------ fiber backend

void Process::trampoline() {
  // enter_fiber() publishes the target process before the first swap.
  t_current_fiber->run_body();
  MPIV_CHECK(false, "fiber resumed after its final handoff");
}

void Process::run_body() {
#if defined(MPIV_ASAN_FIBERS)
  // First landing on this stack: complete the switch the engine started and
  // learn the engine's own stack extent for the return hops.
  __sanitizer_finish_switch_fiber(nullptr, &engine_.asan_engine_stack_,
                                  &engine_.asan_engine_stack_size_);
#endif
  Context ctx(*this);
  try {
    body_(ctx);
  } catch (ProcessKilled) {
    killed_flag_ = true;
  }
  body_ = nullptr;  // drop captured resources at finish, not engine teardown
  finished_ = true;
  FiberState& f = *fiber_;
#if defined(MPIV_ASAN_FIBERS)
  // nullptr save slot = this fiber is exiting; ASan frees its fake stack.
  __sanitizer_start_switch_fiber(nullptr, engine_.asan_engine_stack_,
                                 engine_.asan_engine_stack_size_);
#endif
  ::swapcontext(&f.ctx, &f.engine_ctx);  // final handoff; never returns
}

void Process::enter_fiber() {
  FiberState& f = *fiber_;
  Process* prev_fiber = t_current_fiber;
  std::uint32_t prev_shard = engine_.current_shard_;
  t_current_fiber = this;
  // Events the body schedules (timers, sends) land in this process's own
  // calendar shard.
  engine_.enter_shard(shard_);
  ++engine_.stats_.fiber_switches;
#if defined(MPIV_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, f.stack.usable_base(),
                                 f.stack.usable_size());
#endif
  ::swapcontext(&f.engine_ctx, &f.ctx);
#if defined(MPIV_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#endif
  t_current_fiber = prev_fiber;
  engine_.enter_shard(prev_shard);
  if (finished_ && f.stack.base != nullptr) {
    engine_.release_stack(f.stack);
    f.stack = Engine::Stack{};
  }
}

// --------------------------------------------------------- thread backend

void Process::thread_main() {
  ThreadState& ts = *thread_;
  // Wait for the first transfer of control.
  {
    std::unique_lock<std::mutex> lock(ts.mu);
    ts.cv.wait(lock, [this, &ts] { return ts.fiber_turn && started_; });
    if (kill_requested_) {
      killed_flag_ = true;
      finished_ = true;
      ts.fiber_turn = false;
      lock.unlock();
      ts.cv.notify_all();
      return;
    }
  }
  t_current_fiber = this;
  Context ctx(*this);
  try {
    body_(ctx);
  } catch (ProcessKilled) {
    killed_flag_ = true;
  }
  body_ = nullptr;
  // Final handoff back to the engine.
  {
    std::unique_lock<std::mutex> lock(ts.mu);
    finished_ = true;
    ts.fiber_turn = false;
  }
  ts.cv.notify_all();
}

// ------------------------------------------------- engine-side transitions

void Process::start() {
  if (kill_requested_) {
    // Killed before the start event ran: the body never executes (and, on
    // the fiber backend, no stack is ever acquired).
    started_ = true;
    killed_flag_ = true;
    finished_ = true;
    return;
  }
  if (thread_ != nullptr) {
    ThreadState& ts = *thread_;
    {
      std::unique_lock<std::mutex> lock(ts.mu);
      started_ = true;
      ts.fiber_turn = true;
    }
    ts.cv.notify_all();
    std::unique_lock<std::mutex> lock(ts.mu);
    ts.cv.wait(lock, [&ts] { return !ts.fiber_turn; });
    return;
  }
  started_ = true;
  FiberState& f = *fiber_;
  f.stack = engine_.acquire_stack();
#if defined(MPIV_ASAN_FIBERS)
  // A recycled stack still carries the previous fiber's redzone poison.
  __asan_unpoison_memory_region(f.stack.usable_base(), f.stack.usable_size());
#endif
  int rc = ::getcontext(&f.ctx);
  MPIV_CHECK(rc == 0, "getcontext failed");
  f.ctx.uc_stack.ss_sp = f.stack.usable_base();
  f.ctx.uc_stack.ss_size = f.stack.usable_size();
  f.ctx.uc_link = nullptr;  // fibers exit via the explicit final swap
  ::makecontext(&f.ctx, &Process::trampoline, 0);
  enter_fiber();
}

void Process::unpark(std::uint64_t token) {
  if (finished_) return;
  if (token != token_) return;  // stale wakeup
  if (thread_ != nullptr) {
    ThreadState& ts = *thread_;
    {
      std::unique_lock<std::mutex> lock(ts.mu);
      ts.fiber_turn = true;
    }
    ts.cv.notify_all();
    std::unique_lock<std::mutex> lock(ts.mu);
    ts.cv.wait(lock, [&ts] { return !ts.fiber_turn; });
    return;
  }
  enter_fiber();
}

void Process::synchronous_kill() {
  if (finished_) return;
  kill_requested_ = true;
  if (thread_ != nullptr) {
    ThreadState& ts = *thread_;
    {
      std::unique_lock<std::mutex> lock(ts.mu);
      started_ = true;
      ts.fiber_turn = true;
    }
    ts.cv.notify_all();
    std::unique_lock<std::mutex> lock(ts.mu);
    ts.cv.wait(lock, [&ts] { return !ts.fiber_turn; });
    return;
  }
  if (!started_ || fiber_->stack.base == nullptr) {
    // Never entered (or start raced the kill): nothing to unwind.
    started_ = true;
    killed_flag_ = true;
    finished_ = true;
    return;
  }
  // Resume the parked fiber; park() observes the kill and throws, unwinding
  // the stack, after which enter_fiber() reclaims it.
  enter_fiber();
}

void Process::request_kill() {
  if (finished_) return;
  kill_requested_ = true;
  std::uint64_t token = token_;
  // Wake it (now, in virtual time) so the blocking call observes the kill.
  engine_.schedule_at(engine_.now(), [this, token] { unpark(token); });
}

// ------------------------------------------------------------- fiber side

void Process::park() {
  MPIV_CHECK(on_fiber(), "park() called outside the fiber");
  if (kill_requested_) throw ProcessKilled{};
  if (thread_ != nullptr) {
    ThreadState& ts = *thread_;
    {
      std::unique_lock<std::mutex> lock(ts.mu);
      ts.fiber_turn = false;
    }
    ts.cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(ts.mu);
      ts.cv.wait(lock, [&ts] { return ts.fiber_turn; });
    }
  } else {
    FiberState& f = *fiber_;
#if defined(MPIV_ASAN_FIBERS)
    void* fake_stack = nullptr;
    __sanitizer_start_switch_fiber(&fake_stack, engine_.asan_engine_stack_,
                                   engine_.asan_engine_stack_size_);
#endif
    ::swapcontext(&f.ctx, &f.engine_ctx);
#if defined(MPIV_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(fake_stack, &engine_.asan_engine_stack_,
                                    &engine_.asan_engine_stack_size_);
#endif
  }
  ++token_;  // invalidate any other waker armed for the previous park
  if (kill_requested_) throw ProcessKilled{};
}

void Context::sleep(SimDuration d) {
  MPIV_CHECK(d >= 0, "negative sleep");
  Process& p = p_;
  std::uint64_t token = p.wake_token();
  EventId timer = p.engine().schedule_in(d, [&p, token] { p.unpark(token); });
  try {
    p.park();
  } catch (...) {
    // Killed mid-sleep: cancel the timer so the dead wakeup does not advance
    // the virtual clock past the kill time.
    p.engine().cancel(timer);
    throw;
  }
}

void Context::compute(SimDuration d) {
  compute_time_ += d;
  sleep(d);
}

}  // namespace mpiv::sim
