#include "sim/process.hpp"

#include "common/error.hpp"

namespace mpiv::sim {

namespace {
thread_local Process* t_current_fiber = nullptr;
}

Process::Process(Engine& engine, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { fiber_main(); });
}

Process::~Process() {
  if (thread_.joinable()) {
    {
      // If the fiber never ran or is parked forever, release it via kill.
      std::unique_lock<std::mutex> lock(mu_);
      kill_requested_ = true;
      fiber_turn_ = true;
      started_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
}

bool Process::on_fiber() const { return t_current_fiber == this; }

void Process::fiber_main() {
  // Wait for the first transfer of control.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return fiber_turn_ && started_; });
    if (kill_requested_) {
      killed_flag_ = true;
      finished_ = true;
      fiber_turn_ = false;
      lock.unlock();
      cv_.notify_all();
      return;
    }
  }
  t_current_fiber = this;
  Context ctx(*this);
  try {
    body_(ctx);
  } catch (ProcessKilled) {
    killed_flag_ = true;
  }
  // Final handoff back to the engine.
  {
    std::unique_lock<std::mutex> lock(mu_);
    finished_ = true;
    fiber_turn_ = false;
  }
  cv_.notify_all();
}

void Process::start() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    started_ = true;
    fiber_turn_ = true;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !fiber_turn_; });
}

void Process::unpark(std::uint64_t token) {
  if (finished_) return;
  if (token != token_) return;  // stale wakeup
  {
    std::unique_lock<std::mutex> lock(mu_);
    fiber_turn_ = true;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !fiber_turn_; });
}

void Process::synchronous_kill() {
  if (finished_) return;
  kill_requested_ = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    started_ = true;
    fiber_turn_ = true;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !fiber_turn_; });
}

void Process::request_kill() {
  if (finished_) return;
  kill_requested_ = true;
  std::uint64_t token = token_;
  // Wake it (now, in virtual time) so the blocking call observes the kill.
  engine_.schedule_at(engine_.now(), [this, token] { unpark(token); });
}

void Process::park() {
  MPIV_CHECK(on_fiber(), "park() called outside the fiber");
  if (kill_requested_) throw ProcessKilled{};
  {
    std::unique_lock<std::mutex> lock(mu_);
    fiber_turn_ = false;
  }
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return fiber_turn_; });
  }
  ++token_;  // invalidate any other waker armed for the previous park
  if (kill_requested_) throw ProcessKilled{};
}

void Context::sleep(SimDuration d) {
  MPIV_CHECK(d >= 0, "negative sleep");
  Process& p = p_;
  std::uint64_t token = p.wake_token();
  EventId timer = p.engine().schedule_in(d, [&p, token] { p.unpark(token); });
  try {
    p.park();
  } catch (...) {
    // Killed mid-sleep: cancel the timer so the dead wakeup does not advance
    // the virtual clock past the kill time.
    p.engine().cancel(timer);
    throw;
  }
}

void Context::compute(SimDuration d) {
  compute_time_ += d;
  sleep(d);
}

}  // namespace mpiv::sim
