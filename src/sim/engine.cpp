#include "sim/engine.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sim/process.hpp"

namespace mpiv::sim {

namespace {

std::size_t page_size() {
  static const std::size_t sz = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return sz;
}

}  // namespace

Engine::Engine() {
  log::init_from_env();  // idempotent; lets MPIV_LOG work everywhere
  trace_progress_ = std::getenv("MPIV_ENGINE_TRACE") != nullptr;
  const char* threads = std::getenv("MPIV_SIM_THREADS");
  if (threads != nullptr && threads[0] != '\0' && threads[0] != '0') {
    backend_ = FiberBackend::kThreads;
  }
  // Tournament leaves permanently name their shard (emptiness is read off
  // the shard heap itself); internal nodes start as "empty" sentinels.
  for (std::uint32_t i = 0; i < kShards; ++i) tree_[i] = kShards;
  for (std::uint32_t s = 0; s < kShards; ++s) tree_[kShards + s] = s;
}

Engine::~Engine() {
  shutdown();
  // Fibers are all unwound; their stacks are back in the pool.
  for (Stack& s : stack_pool_) destroy_stack(s);
  stack_pool_.clear();
}

void Engine::shutdown() {
  // Index-based: unwinding a fiber runs destructors that may (in principle)
  // spawn and would invalidate iterators. Newly appended processes get
  // killed by the same sweep.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    processes_[i]->synchronous_kill();
  }
}

// ------------------------------------------------------------- calendar

void Engine::heap_push(Shard& sh, HeapEntry e) {
  std::vector<HeapEntry>& h = sh.heap;
  h.push_back(e);
  std::size_t i = h.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!heap_before(h[i], h[parent])) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

void Engine::heap_pop(Shard& sh) {
  std::vector<HeapEntry>& h = sh.heap;
  h.front() = h.back();
  h.pop_back();
  std::size_t i = 0;
  const std::size_t n = h.size();
  for (;;) {
    std::size_t l = 2 * i + 1, r = l + 1, m = i;
    if (l < n && heap_before(h[l], h[m])) m = l;
    if (r < n && heap_before(h[r], h[m])) m = r;
    if (m == i) break;
    std::swap(h[i], h[m]);
    i = m;
  }
}

void Engine::update_tournament(std::uint32_t shard) {
  // Leaves sit at [kShards, 2*kShards); internal node i holds the winning
  // shard of its subtree (kShards = empty). Recompute the path to the root.
  std::uint32_t i = (shard + kShards) >> 1;
  while (i >= 1) {
    std::uint32_t a = tree_[2 * i];
    std::uint32_t b = tree_[2 * i + 1];
    // Winner: the non-empty shard with the smaller (time, seq) head.
    std::uint32_t win;
    bool a_empty = a >= kShards || shards_[a].heap.empty();
    bool b_empty = b >= kShards || shards_[b].heap.empty();
    if (a_empty) {
      win = b_empty ? kShards : b;
    } else if (b_empty) {
      win = a;
    } else {
      win = heap_before(shards_[a].heap.front(), shards_[b].heap.front()) ? a
                                                                          : b;
    }
    tree_[i] = win;
    i >>= 1;
  }
}

EventId Engine::push_event(std::uint32_t shard, SimTime t, std::uint64_t seq,
                           EventFn fn) {
  Shard& sh = shards_[shard];
  std::uint32_t slot;
  if (sh.free_head != kNoSlot) {
    slot = sh.free_head;
    sh.free_head = sh.slab[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(sh.slab.size());
    sh.slab.emplace_back();
  }
  EventNode& node = sh.slab[slot];
  node.fn = std::move(fn);
  node.seq = seq;
  node.live = true;
  node.cancelled = false;
  heap_push(sh, HeapEntry{t, seq, slot});
  if (sh.heap.front().slot == slot) update_tournament(shard);
  ++live_events_;
  stats_.live_events_peak = std::max(stats_.live_events_peak, live_events_);
  return EventId{seq, shard, slot};
}

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  MPIV_CHECK(t >= now_, "event scheduled in the past");
  ++stats_.events_scheduled;
  return push_event(current_shard_, t, next_seq_++, std::move(fn));
}

EventId Engine::schedule_in(SimDuration d, EventFn fn) {
  return schedule_at(now_ + d, std::move(fn));
}

void Engine::cancel(EventId id) {
  if (id.seq == 0) return;
  Shard& sh = shards_[id.shard % kShards];
  if (id.slot >= sh.slab.size()) return;
  EventNode& node = sh.slab[id.slot];
  // Generation check: the slot may have been reused (or the event already
  // executed); a stale cancel must be a no-op.
  if (!node.live || node.seq != id.seq || node.cancelled) return;
  node.cancelled = true;
  node.fn.reset();  // release captured resources now, not at pop time
  ++stats_.events_cancelled;
}

bool Engine::pop_next(SimTime& time_out, std::uint64_t& seq_out,
                      EventFn& fn_out) {
  for (;;) {
    std::uint32_t s = winner();
    if (s >= kShards) return false;
    Shard& sh = shards_[s];
    HeapEntry top = sh.heap.front();
    EventNode& node = sh.slab[top.slot];
    bool cancelled = node.cancelled;
    if (!cancelled) {
      time_out = top.time;
      seq_out = top.seq;
      fn_out = std::move(node.fn);
    }
    node.live = false;
    node.fn.reset();
    node.next_free = sh.free_head;
    sh.free_head = top.slot;
    heap_pop(sh);
    update_tournament(s);
    --live_events_;
    if (!cancelled) {
      // Events scheduled by this event land in the same calendar shard
      // unless a process switch re-targets it (see Process::unpark).
      current_shard_ = s;
      return true;
    }
  }
}

Process* Engine::spawn(std::string name, std::function<void(Context&)> body) {
  processes_.push_back(
      std::make_unique<Process>(*this, std::move(name), std::move(body)));
  Process* p = processes_.back().get();
  schedule_at(now_, [p] { p->start(); });
  return p;
}

void Engine::kill(Process* p) { p->request_kill(); }

void Engine::run() {
  stopped_ = false;
  SimTime t;
  std::uint64_t seq;
  EventFn fn;
  while (!stopped_ && pop_next(t, seq, fn)) {
    now_ = t;
    ++stats_.events_executed;
    fn();
    fn.reset();
  }
}

void Engine::run_until(SimTime t) {
  stopped_ = false;
  SimTime et;
  std::uint64_t seq;
  EventFn fn;
  while (!stopped_) {
    if (trace_progress_ && stats_.events_executed % 5000000 == 0) {
      std::fprintf(stderr, "[engine] %llu events, t=%f\n",
                   (unsigned long long)stats_.events_executed,
                   to_seconds(now_));
    }
    if (!pop_next(et, seq, fn)) break;
    if (et > t) {
      // Put it back (same seq, so its global position is unchanged); it
      // stays pending for a later run call.
      push_event(current_shard_, et, seq, std::move(fn));
      break;
    }
    now_ = et;
    ++stats_.events_executed;
    fn();
    fn.reset();
  }
  if (now_ < t) now_ = t;
}

// ---------------------------------------------------------- fiber stacks

std::byte* Engine::Stack::usable_base() const { return base + page_size(); }
std::size_t Engine::Stack::usable_size() const { return size - page_size(); }

Engine::Stack Engine::acquire_stack() {
  const std::size_t page = page_size();
  std::size_t want = ((stack_bytes_ + page - 1) / page) * page + page;  // +guard
  if (!stack_pool_.empty() && stack_pool_.back().size == want) {
    Stack s = stack_pool_.back();
    stack_pool_.pop_back();
    stats_.fiber_stack_bytes_in_use += s.size;
    stats_.fiber_stack_peak_bytes = std::max(stats_.fiber_stack_peak_bytes,
                                             stats_.fiber_stack_bytes_in_use);
    return s;
  }
  void* mem = ::mmap(nullptr, want, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  MPIV_CHECK(mem != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end: the stack grows down into it on overflow and
  // faults loudly instead of silently corrupting a neighbouring allocation.
  int rc = ::mprotect(mem, page, PROT_NONE);
  MPIV_CHECK(rc == 0, "fiber stack guard mprotect failed");
  ++stats_.fiber_stacks_created;
  stats_.fiber_stack_bytes_in_use += want;
  stats_.fiber_stack_peak_bytes = std::max(stats_.fiber_stack_peak_bytes,
                                           stats_.fiber_stack_bytes_in_use);
  return Stack{static_cast<std::byte*>(mem), want};
}

void Engine::release_stack(Stack s) {
  stats_.fiber_stack_bytes_in_use -= s.size;
  const std::size_t page = page_size();
  std::size_t want = ((stack_bytes_ + page - 1) / page) * page + page;
  if (s.size == want) {
    stack_pool_.push_back(s);  // recycled by the next spawn (churn path)
  } else {
    destroy_stack(s);
  }
}

void Engine::destroy_stack(Stack s) {
  if (s.base != nullptr) ::munmap(s.base, s.size);
}

}  // namespace mpiv::sim
