#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sim/process.hpp"

namespace mpiv::sim {

Engine::Engine() {
  log::init_from_env();  // idempotent; lets MPIV_LOG work everywhere
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  // Unwinding a fiber may spawn no new processes, but it may push mailbox
  // events or close connections — all non-blocking by the destructor rule.
  for (auto& p : processes_) p->synchronous_kill();
}

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  MPIV_CHECK(t >= now_, "event scheduled in the past");
  std::uint64_t seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(fn)});
  return EventId{seq};
}

EventId Engine::schedule_in(SimDuration d, std::function<void()> fn) {
  return schedule_at(now_ + d, std::move(fn));
}

void Engine::cancel(EventId id) {
  if (id.seq != 0) cancelled_.push_back(id.seq);
}

Process* Engine::spawn(std::string name, std::function<void(Context&)> body) {
  processes_.push_back(
      std::make_unique<Process>(*this, std::move(name), std::move(body)));
  Process* p = processes_.back().get();
  schedule_at(now_, [p] { p->start(); });
  return p;
}

void Engine::kill(Process* p) { p->request_kill(); }

// Pops the next event; drops cancelled ones without advancing the clock so a
// cancelled far-future timer cannot drag virtual time forward.
bool Engine::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (!cancelled_.empty()) {
      auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  Event ev;
  while (!stopped_ && pop_next(ev)) {
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
}

void Engine::run_until(SimTime t) {
  stopped_ = false;
  Event ev;
  while (!stopped_) {
    if (std::getenv("MPIV_ENGINE_TRACE") && executed_ % 5000000 == 0) {
      std::fprintf(stderr, "[engine] %llu events, t=%f\n",
                   (unsigned long long)executed_, to_seconds(now_));
    }
    if (!pop_next(ev)) break;
    if (ev.time > t) {
      // Put it back; it stays pending for a later run call.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace mpiv::sim
