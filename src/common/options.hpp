// Tiny key=value command-line parser for bench binaries:
//   bench_pingpong sizes=0,1024,65536 device=v2 reps=10
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpiv {

class Options {
 public:
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  /// Comma-separated integer list ("1,2,4" -> {1,2,4}).
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace mpiv
