#include "common/buffer_pool.hpp"

#include <bit>

namespace mpiv {

BufferPool& BufferPool::global() {
  static BufferPool* pool = new BufferPool;  // leaky by design (see header)
  return *pool;
}

std::size_t BufferPool::class_floor(std::size_t cap) {
  if (cap < (std::size_t{1} << kMinClass)) return 0;  // below pooling floor
  return static_cast<std::size_t>(std::bit_width(cap) - 1);
}

std::size_t BufferPool::class_ceil(std::size_t n) {
  std::size_t want = std::max(n, std::size_t{1} << kMinClass);
  std::size_t k = static_cast<std::size_t>(std::bit_width(want - 1));
  return std::max(k, kMinClass);
}

BufferPool::Storage BufferPool::rent(std::size_t n) {
  std::size_t k = class_ceil(n);
  Storage out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rents;
    // Serve from the smallest class guaranteed to fit; peeking one class up
    // catches storages stranded there by non-power-of-two capacities.
    for (std::size_t c = k; c < kClasses && c <= k + 1; ++c) {
      if (!classes_[c].empty()) {
        out = std::move(classes_[c].back());
        classes_[c].pop_back();
        stats_.bytes_pooled -= out.capacity();
        ++stats_.rent_hits;
        break;
      }
    }
  }
  out.resize(n);  // zero-fills: recycled bytes never leak between messages
  return out;
}

void BufferPool::give_back(Storage b) {
  std::size_t k = class_floor(b.capacity());
  if (k < kMinClass || k >= kClasses) return;  // outside pooling range
  b.clear();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.returns;
  if (stats_.bytes_pooled + b.capacity() > kMaxPooledBytes) return;  // freed
  stats_.bytes_pooled += b.capacity();
  classes_[k].push_back(std::move(b));
}

std::shared_ptr<const BufferPool::Storage> BufferPool::adopt(Storage b) {
  return std::shared_ptr<const Storage>(
      new Storage(std::move(b)), [](const Storage* p) {
        BufferPool::global().give_back(std::move(*const_cast<Storage*>(p)));
        delete p;
      });
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mpiv
