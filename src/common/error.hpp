// Error primitives. Protocol invariant violations are programming errors and
// abort loudly; recoverable conditions (peer disconnected, process killed)
// use dedicated exception types caught at well-defined layers.
#pragma once

#include <stdexcept>
#include <string>

namespace mpiv {

/// Violation of an internal protocol invariant — a bug, not a runtime fault.
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

/// Bad user configuration (unknown option, inconsistent topology, ...).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// Always-on invariant check (simulation correctness depends on these; the
/// cost is negligible next to virtual-time bookkeeping).
#define MPIV_CHECK(expr, message)                                  \
  do {                                                             \
    if (!(expr)) ::mpiv::check_failed(#expr, __FILE__, __LINE__, (message)); \
  } while (0)

}  // namespace mpiv
