#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mpiv::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* name_of(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  const char* env = std::getenv("MPIV_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_level(Level::kDebug);
  else if (std::strcmp(env, "info") == 0) set_level(Level::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_level(Level::kWarn);
  else if (std::strcmp(env, "error") == 0) set_level(Level::kError);
  else if (std::strcmp(env, "off") == 0) set_level(Level::kOff);
}

void write(Level level, std::string_view component, SimTime now,
           std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] [%12.6f] %-12.*s %.*s\n", name_of(level),
               to_seconds(now), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace mpiv::log
