// Size-classed recycling pool for message buffers.
//
// Steady-state messaging at 1024 ranks allocates and frees the same handful
// of frame sizes millions of times; letting every frame round-trip through
// malloc dominates the profile and fragments the heap. The pool keeps freed
// vector storage in power-of-two size-class freelists: SharedBuffer adopts
// payloads through here, so when the last alias of a frame drops, its bytes
// go back on the freelist instead of to the allocator, and the next rent()
// of a comparable size reuses them.
//
// The pool is a process-global, mutex-guarded, deliberately *leaky*
// singleton: outstanding SharedBuffers may be destroyed during static
// teardown, after any non-leaky pool would already be gone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mpiv {

class BufferPool {
 public:
  using Storage = std::vector<std::byte>;

  struct Stats {
    std::uint64_t rents = 0;         // rent() calls
    std::uint64_t rent_hits = 0;     // rents served from a freelist
    std::uint64_t returns = 0;       // storages handed back
    std::uint64_t bytes_pooled = 0;  // capacity currently parked in freelists
  };

  /// The process-wide pool (never destroyed).
  static BufferPool& global();

  /// A zero-filled buffer of size `n`, with capacity recycled from the pool
  /// when a large-enough storage is parked there.
  Storage rent(std::size_t n);

  /// Parks `b`'s storage for reuse (or frees it once the pool is at its
  /// retention cap). Call with any vector whose bytes are dead.
  void give_back(Storage b);

  /// Wraps `b` in a shared immutable handle whose final release routes the
  /// storage back through give_back(). SharedBuffer's adopting constructor
  /// uses this.
  std::shared_ptr<const Storage> adopt(Storage b);

  [[nodiscard]] Stats stats() const;

 private:
  BufferPool() = default;

  // Class k holds storages with capacity in [2^k, 2^(k+1)); anything parked
  // in class k can serve a rent of at most 2^k bytes.
  static constexpr std::size_t kClasses = 33;
  static constexpr std::size_t kMinClass = 6;  // don't pool below 64B
  // Retention cap: beyond this the pool frees instead of parking, so one
  // checkpoint burst cannot pin gigabytes forever.
  static constexpr std::uint64_t kMaxPooledBytes = 256ull << 20;

  static std::size_t class_floor(std::size_t cap);  // floor log2(cap)
  static std::size_t class_ceil(std::size_t n);     // ceil log2(max(n,64))

  mutable std::mutex mu_;
  std::vector<Storage> classes_[kClasses];
  Stats stats_;
};

}  // namespace mpiv
