#include "common/options.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace mpiv {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool dashed = arg.rfind("--", 0) == 0;
    if (dashed) arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" consumes the next argument as the value, unless it
    // looks like another flag; bare "key" stays a boolean.
    if (dashed && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
        std::string(argv[i + 1]).find('=') == std::string::npos) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Options::get_int_list(
    const std::string& key, std::vector<std::int64_t> def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoll(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  if (out.empty()) throw ConfigError("empty list for option " + key);
  return out;
}

}  // namespace mpiv
