// Fast 64-bit content hashing for the incremental-checkpoint datapath.
//
// fnv1a (bytes.hpp) walks one byte at a time — fine for test fingerprints,
// too slow to hash multi-megabyte checkpoint images every round. hash64
// consumes 8 bytes per step with a splitmix-style avalanche, which is what
// the chunk tables key their content store on. Equal content must hash
// equal across processes and runs (the dedup protocol compares hashes
// computed on different nodes), so the function is fully deterministic.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bytes.hpp"

namespace mpiv {

inline std::uint64_t hash64(ConstBytes bytes) {
  auto mix = [](std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = mix(h ^ w);
  }
  if (i < bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, bytes.size() - i);
    h = mix(h ^ w);
  }
  return mix(h);
}

/// Per-chunk content hashes of an image split at fixed `chunk_size`
/// boundaries (last chunk short). Empty image -> empty table.
inline std::vector<std::uint64_t> chunk_hashes(ConstBytes image,
                                               std::size_t chunk_size) {
  std::vector<std::uint64_t> out;
  if (chunk_size == 0) return out;
  out.reserve((image.size() + chunk_size - 1) / chunk_size);
  for (std::size_t off = 0; off < image.size(); off += chunk_size) {
    out.push_back(
        hash64(image.subspan(off, std::min(chunk_size, image.size() - off))));
  }
  return out;
}

/// Size of chunk `index` in an image of `total` bytes.
inline std::size_t chunk_len(std::size_t total, std::size_t chunk_size,
                             std::size_t index) {
  std::size_t off = index * chunk_size;
  return off >= total ? 0 : std::min(chunk_size, total - off);
}

}  // namespace mpiv
