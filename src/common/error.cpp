#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace mpiv {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::fprintf(stderr, "MPIV_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, message.c_str());
  std::abort();
}

}  // namespace mpiv
