// Virtual-time units. All simulated time is int64 nanoseconds; these helpers
// keep call sites readable and conversions explicit.
#pragma once

#include <cstdint>
#include <string>

namespace mpiv {

/// Virtual time, in nanoseconds since simulation start.
using SimTime = std::int64_t;
/// Virtual duration, in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMicrosecond));
}
constexpr SimDuration milliseconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMillisecond));
}
constexpr SimDuration seconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_microseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Duration of transferring `bytes` at `bytes_per_second`.
constexpr SimDuration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  return static_cast<SimDuration>(static_cast<double>(bytes) /
                                  bytes_per_second * static_cast<double>(kSecond));
}

/// "1.234 s" / "56.7 us" style formatting for reports.
std::string format_duration(SimDuration d);

}  // namespace mpiv
