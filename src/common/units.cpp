#include "common/units.hpp"

#include <cstdio>

#include "common/bytes.hpp"

namespace mpiv {

std::string format_duration(SimDuration d) {
  char buf[64];
  double v = static_cast<double>(d);
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / static_cast<double>(kSecond));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", v / static_cast<double>(kMillisecond));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", v / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

std::string format_bytes(std::uint64_t n) {
  char buf[64];
  if (n >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(n) / (1ull << 30));
  } else if (n >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(n) / (1ull << 20));
  } else if (n >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(n) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace mpiv
