#include "common/rng.hpp"

#include <cmath>

namespace mpiv {

double Rng::exponential(double mean) {
  // Inverse CDF; uniform() never returns exactly 1.0 so log() is finite.
  double u = uniform();
  return -mean * std::log1p(-u);
}

}  // namespace mpiv
