// Minimal leveled logger. Off by default; benches and failing tests turn it
// on via MPIV_LOG=debug or set_level(). Messages carry the virtual timestamp
// when the caller provides one, which makes protocol traces readable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace mpiv::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_level(Level level);
Level level();
/// Reads MPIV_LOG from the environment ("debug", "info", ...) once.
void init_from_env();

void write(Level level, std::string_view component, SimTime now,
           std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

/// Usage: MPIV_DEBUG("daemon", ctx.now(), "send to ", dest) — note the
/// message parts are comma-separated, not '<<'-chained.
#define MPIV_LOG_AT(lvl, component, now, ...)                              \
  do {                                                                     \
    if (static_cast<int>(lvl) >= static_cast<int>(::mpiv::log::level())) { \
      ::mpiv::log::write(lvl, component, now,                              \
                         ::mpiv::log::detail::concat(__VA_ARGS__));        \
    }                                                                      \
  } while (0)

#define MPIV_DEBUG(component, now, ...) \
  MPIV_LOG_AT(::mpiv::log::Level::kDebug, component, now, __VA_ARGS__)
#define MPIV_INFO(component, now, ...) \
  MPIV_LOG_AT(::mpiv::log::Level::kInfo, component, now, __VA_ARGS__)
#define MPIV_WARN(component, now, ...) \
  MPIV_LOG_AT(::mpiv::log::Level::kWarn, component, now, __VA_ARGS__)
#define MPIV_ERROR(component, now, ...) \
  MPIV_LOG_AT(::mpiv::log::Level::kError, component, now, __VA_ARGS__)

}  // namespace mpiv::log
