// Running statistics and small report helpers used by benches and tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mpiv {

/// How duplicate counter names combine under merge(): additive counts sum,
/// watermarks (queue depths, replica lag) take the max.
enum class MergeKind { kSum, kMax };

/// Insertion-ordered registry of named integer counters. Every subsystem
/// exports its ad-hoc tallies through one of these so jobs, benches and the
/// JSON reports all aggregate per-rank stats the same way.
class CounterRegistry {
 public:
  struct Entry {
    std::string name;
    std::int64_t value = 0;
    MergeKind kind = MergeKind::kSum;
  };

  /// Adds (or merges into) `name`. The MergeKind of the first add wins.
  void add(const std::string& name, std::int64_t value,
           MergeKind kind = MergeKind::kSum);

  /// Folds every entry of `other` into this registry.
  void merge(const CounterRegistry& other);

  /// Value of `name`, or 0 when absent.
  [[nodiscard]] std::int64_t get(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// `{"a":1,"b":2}` in insertion order, for embedding in bench JSON.
  [[nodiscard]] std::string json_object() const;

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples; supports exact percentiles. Fine for bench-sized data.
class Samples {
 public:
  void add(double x) { data_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] double percentile(double p) const;  // p in [0,100]
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

/// Fixed-width text table for paper-style bench output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 3);

}  // namespace mpiv
