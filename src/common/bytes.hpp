// Byte buffer primitives shared by every subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"

namespace mpiv {

/// Owning, contiguous byte buffer. All wire messages, checkpoint images and
/// logged payloads are Buffers.
using Buffer = std::vector<std::byte>;

/// Read-only view over raw bytes.
using ConstBytes = std::span<const std::byte>;

/// Mutable view over raw bytes.
using MutBytes = std::span<std::byte>;

/// Ref-counted immutable payload: a shared, read-only Buffer plus an
/// offset/length slice view. This is the zero-copy currency of the V2
/// datapath — one underlying allocation can simultaneously back the sender
/// log (SAVED), an in-flight TX frame and a checkpoint serialization, and
/// each holder drops its reference independently (GC of one alias never
/// invalidates another). Slicing is O(1) and never copies; the underlying
/// bytes are freed when the last alias goes away.
class SharedBuffer {
 public:
  SharedBuffer() = default;
  /// Adopts `b` (no copy) and views all of it. The storage routes through
  /// BufferPool, so when the last alias drops, the bytes are recycled for a
  /// future rent() instead of freed.
  explicit SharedBuffer(Buffer b)
      : buf_(BufferPool::global().adopt(std::move(b))),
        off_(0),
        len_(buf_->size()) {}

  [[nodiscard]] const std::byte* data() const {
    return buf_ == nullptr ? nullptr : buf_->data() + off_;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] ConstBytes view() const { return {data(), len_}; }

  /// O(1) sub-slice relative to this slice; shares the same allocation.
  [[nodiscard]] SharedBuffer slice(std::size_t off, std::size_t len) const {
    SharedBuffer out;
    if (off > len_ || len > len_ - off) return out;  // empty on bad range
    out.buf_ = buf_;
    out.off_ = off_ + off;
    out.len_ = len;
    return out;
  }

  /// Re-anchors a ConstBytes view (obtained e.g. from a Reader over this
  /// buffer) as an owning slice. `sub` must point into this buffer's bytes.
  [[nodiscard]] SharedBuffer slice_of(ConstBytes sub) const {
    if (sub.empty()) return SharedBuffer{};
    const std::byte* base = data();
    if (sub.data() < base || sub.data() + sub.size() > base + len_) {
      return SharedBuffer{};
    }
    return slice(static_cast<std::size_t>(sub.data() - base), sub.size());
  }

  /// Materializes an owned copy (the one deliberate copy when a consumer
  /// needs mutable/exclusive bytes).
  [[nodiscard]] Buffer copy() const {
    return Buffer(view().begin(), view().end());
  }

  /// Number of aliases of the underlying allocation (tests/GC asserts).
  [[nodiscard]] long use_count() const { return buf_.use_count(); }

  friend bool operator==(const SharedBuffer& a, const SharedBuffer& b) {
    ConstBytes va = a.view(), vb = b.view();
    return va.size() == vb.size() &&
           (va.empty() || std::memcmp(va.data(), vb.data(), va.size()) == 0);
  }
  /// Content comparison against an owned buffer (test convenience).
  friend bool operator==(const SharedBuffer& a, const Buffer& b) {
    ConstBytes va = a.view();
    return va.size() == b.size() &&
           (b.empty() || std::memcmp(va.data(), b.data(), b.size()) == 0);
  }

 private:
  std::shared_ptr<const Buffer> buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// Copies a trivially-copyable value into a fresh buffer.
template <typename T>
Buffer to_buffer(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  Buffer b(sizeof(T));
  std::memcpy(b.data(), &value, sizeof(T));
  return b;
}

/// Makes a buffer out of an arbitrary byte view.
inline Buffer to_buffer(ConstBytes bytes) {
  return Buffer(bytes.begin(), bytes.end());
}

/// Views any trivially-copyable object as bytes.
template <typename T>
ConstBytes as_bytes_of(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::as_bytes(std::span<const T, 1>(&value, 1));
}

/// Views a vector of trivially-copyable elements as bytes.
template <typename T>
ConstBytes as_bytes_of(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::as_bytes(std::span<const T>(v.data(), v.size()));
}

/// FNV-1a 64-bit checksum; used for payload integrity checks in tests and
/// for cheap content fingerprints in the fault-equivalence property tests.
inline std::uint64_t fnv1a(ConstBytes bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// Human-readable byte count ("12.3 KiB").
std::string format_bytes(std::uint64_t n);

}  // namespace mpiv
