// Byte buffer primitives shared by every subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace mpiv {

/// Owning, contiguous byte buffer. All wire messages, checkpoint images and
/// logged payloads are Buffers.
using Buffer = std::vector<std::byte>;

/// Read-only view over raw bytes.
using ConstBytes = std::span<const std::byte>;

/// Mutable view over raw bytes.
using MutBytes = std::span<std::byte>;

/// Copies a trivially-copyable value into a fresh buffer.
template <typename T>
Buffer to_buffer(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  Buffer b(sizeof(T));
  std::memcpy(b.data(), &value, sizeof(T));
  return b;
}

/// Makes a buffer out of an arbitrary byte view.
inline Buffer to_buffer(ConstBytes bytes) {
  return Buffer(bytes.begin(), bytes.end());
}

/// Views any trivially-copyable object as bytes.
template <typename T>
ConstBytes as_bytes_of(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::as_bytes(std::span<const T, 1>(&value, 1));
}

/// Views a vector of trivially-copyable elements as bytes.
template <typename T>
ConstBytes as_bytes_of(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::as_bytes(std::span<const T>(v.data(), v.size()));
}

/// FNV-1a 64-bit checksum; used for payload integrity checks in tests and
/// for cheap content fingerprints in the fault-equivalence property tests.
inline std::uint64_t fnv1a(ConstBytes bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// Human-readable byte count ("12.3 KiB").
std::string format_bytes(std::uint64_t n);

}  // namespace mpiv
