// Deterministic pseudo-random numbers (xoshiro256**). Every source of
// randomness in the simulator (fault plans, scheduling jitter, workload
// generators) is seeded explicitly so runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace mpiv {

/// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (for fault inter-arrival).
  double exponential(double mean);

  /// Derives an independent child generator (for per-rank streams).
  Rng fork() { return Rng(next() ^ 0x2545f4914f6cdd1dull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mpiv
