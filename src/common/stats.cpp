#include "common/stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mpiv {

void CounterRegistry::add(const std::string& name, std::int64_t value,
                          MergeKind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{name, value, kind});
    return;
  }
  Entry& e = entries_[it->second];
  if (e.kind == MergeKind::kMax) {
    e.value = std::max(e.value, value);
  } else {
    e.value += value;
  }
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const Entry& e : other.entries_) add(e.name, e.value, e.kind);
}

std::int64_t CounterRegistry::get(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : entries_[it->second].value;
}

bool CounterRegistry::contains(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::string CounterRegistry::json_object() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ',';
    os << '"' << entries_[i].name << "\":" << entries_[i].value;
  }
  os << '}';
  return os.str();
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::percentile(double p) const {
  if (data_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  double idx = (p / 100.0) * static_cast<double>(data_.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  auto hi = std::min(lo + 1, data_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double Samples::mean() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mpiv
