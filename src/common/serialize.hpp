// Little-endian binary serialization used for every wire message and
// checkpoint image. Deliberately simple: fixed-width integers, explicit
// lengths, no implicit versioning. Reader throws SerializeError on truncated
// or malformed input so protocol bugs surface immediately.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace mpiv {

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growing buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(Buffer initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte blob.
  void blob(ConstBytes bytes);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(const void* data, std::size_t n);

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& per_element) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) per_element(*this, e);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Buffer take() { return std::move(buf_); }
  [[nodiscard]] const Buffer& buffer() const { return buf_; }

 private:
  Buffer buf_;
};

/// Consumes primitive values from a byte view.
class Reader {
 public:
  explicit Reader(ConstBytes bytes) : data_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }

  Buffer blob();
  /// Length-prefixed blob as a non-owning view (zero-copy decode); the view
  /// is valid for the lifetime of the bytes the Reader was built over.
  ConstBytes blob_view() {
    std::uint32_t n = u32();
    return take(n);
  }
  std::string str();
  void raw(void* out, std::size_t n);
  /// View into the remaining unparsed bytes (does not consume).
  [[nodiscard]] ConstBytes rest() const { return data_.subspan(pos_); }
  /// Consumes n bytes and returns a view of them.
  ConstBytes take(std::size_t n);

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& per_element) {
    std::uint32_t n = u32();
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(per_element(*this));
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  ConstBytes data_;
  std::size_t pos_ = 0;
};

}  // namespace mpiv
