#include "common/serialize.hpp"

#include <bit>
#include <cstring>

namespace mpiv {

namespace {
template <typename T>
void put_le(Buffer& buf, T v) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
T get_le(ConstBytes data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}
}  // namespace

void Writer::u16(std::uint16_t v) { put_le(buf_, v); }
void Writer::u32(std::uint32_t v) { put_le(buf_, v); }
void Writer::u64(std::uint64_t v) { put_le(buf_, v); }

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::blob(ConstBytes bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  raw(bytes.data(), bytes.size());
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void Writer::raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw SerializeError("truncated input: need " + std::to_string(n) +
                         " bytes at offset " + std::to_string(pos_) +
                         " of " + std::to_string(data_.size()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Reader::u16() {
  need(2);
  auto v = get_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  auto v = get_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  auto v = get_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Buffer Reader::blob() {
  std::uint32_t n = u32();
  need(n);
  Buffer out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

void Reader::raw(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

ConstBytes Reader::take(std::size_t n) {
  need(n);
  ConstBytes view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

}  // namespace mpiv
