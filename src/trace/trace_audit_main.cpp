// trace_audit: offline protocol auditor CLI.
//
//   trace_audit <run.jsonl> [more.jsonl ...] [--chrome out.json] [--quiet]
//
// Loads one or more JSONL trace dumps (merging them into one global run),
// checks the MPICH-V2 pessimistic-logging invariants and prints a report.
// Exit status: 0 = pass, 1 = invariant violation, 2 = inconclusive or
// unreadable input.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/audit.hpp"
#include "trace/sinks.hpp"

int main(int argc, char** argv) {
  using namespace mpiv::trace;
  std::vector<std::string> inputs;
  std::string chrome_out;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--chrome" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: trace_audit <run.jsonl> [more.jsonl ...] "
          "[--chrome out.json] [--quiet]\n");
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "trace_audit: no input files (see --help)\n");
    return 2;
  }

  LoadedTrace trace;
  for (const std::string& path : inputs) {
    std::string error;
    if (!read_jsonl_file(path, trace, &error)) {
      std::fprintf(stderr, "trace_audit: %s: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t != b.t ? a.t < b.t : a.seq < b.seq;
            });

  if (!chrome_out.empty() && !write_chrome_trace_file(chrome_out, trace.events)) {
    std::fprintf(stderr, "trace_audit: cannot write %s\n", chrome_out.c_str());
    return 2;
  }

  AuditReport report = audit(trace.events, trace.dropped);
  if (!quiet || !report.pass) {
    std::fputs(report.summary().c_str(), stdout);
  }
  if (report.pass) return 0;
  return report.violations.empty() ? 2 : 1;
}
