// Causal trace recorder for the MPICH-V2 protocol stack.
//
// Every actor (daemon, event logger, checkpoint server, scheduler, runtime)
// can own a TraceRecorder — a fixed-capacity ring of structured TraceEvents
// stamped with the actor's identity, its incarnation, the relevant logical
// clocks and the simulator's virtual time. Recorders hang off a per-job
// TraceBook which hands out a globally ordered sequence number, so the full
// run can be reconstructed offline and checked against the paper's
// invariants (see trace/audit.hpp) or exported for timeline visualization
// (see trace/sinks.hpp).
//
// Recording compiles out entirely when MPIV_TRACE_DISABLED is defined (the
// CMake option MPIV_TRACE=OFF): record() becomes an empty inline and every
// instrumentation site folds to nothing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace mpiv::trace {

#ifdef MPIV_TRACE_DISABLED
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

/// Which protocol actor recorded an event.
enum class Role : std::uint8_t {
  kDaemon = 0,
  kEventLogger,
  kCkptServer,
  kScheduler,
  kRuntime,
};

/// Structured event kinds. The generic fields (peer/c1/c2/c3/n/flag) carry
/// kind-specific payloads — see docs/observability.md for the schema of
/// every kind.
enum class Kind : std::uint8_t {
  // Send path (daemon).
  kSendIssued = 0,  // peer=dest, c1=send clock, n=required events (gate)
  kSendSuppressed,  // peer=dest, c1=send clock, c2=HS bound that killed it
  kSendWire,        // peer=dest, c1=send clock, c2=quorum acked, n=required,
                    // flag=stalled on WAITLOGGED at least once
  kStallStart,      // peer=dest, c1=send clock, c2=quorum acked, n=required
  kStallEnd,        // peer=dest, c1=send clock
  kSavedResend,     // peer=dest, c1=peer's HR, n=entries re-enqueued
  // Receive path (daemon).
  kDeliver,   // peer=sender, c1=send clock, c2=recv clock after delivery,
              // n=probes since last delivery, flag=replayed
  kDupDrop,   // peer=sender, c1=send clock, c2=HR bound, flag=window dup
  // Event-logger client side (daemon).
  kElAppend,    // peer=event sender, c1=send clock, c2=recv clock,
                // c3=log sequence number, flag=probe batch
  kElAck,       // peer=replica index, n=cumulative events acked
  kElQuorum,    // n=new quorum-acked event count
  kElDownload,  // c1=pruned base of merged log, n=events downloaded
  kElPrune,     // c1=prune bound (recv clock of stable ckpt)
  kReplayPlan,  // peer=sender, c1=send clock, c2=recv clock, n=probes,
                // flag=probe batch; one per downloaded event, in plan order
  // Restart handshake (daemon).
  kRestart1Send,    // peer=q, c1=our HR[q]
  kRestart1Recv,    // peer=q, c1=q's HR (our resend lower bound)
  kRestart2Send,    // peer=q, c1=our HR[q]
  kRestart2Recv,    // peer=q, c1=new HS bound
  kResendDoneSend,  // peer=q, c1=send-clock marker
  kResendDoneRecv,  // peer=q, c1=marker
  // Checkpointing + GC (daemon).
  kCkptBegin,       // n=ckpt seq, c2=recv clock at capture
  kCkptStable,      // n=ckpt seq, c1=recv clock of the image (EL prune bound)
  kCkptAbandon,     // n=ckpt seq
  kCkptRestore,     // n=ckpt seq, c2=restored recv clock
  kCkptNotifySend,  // peer=q, c1=stable HR[q] (q may GC SAVED up to c1)
  kCkptNotifyRecv,  // peer=q, c1=q's stable HR toward us
  kGcPrune,         // peer=q, c1=prune bound, n=SAVED entries dropped
  // Lifecycle.
  kSpawn,       // flag=restarted (incarnation > 0)
  kCrash,       // injected kill of this actor's node
  kFinish,      // app completed on this rank
  kWatermarks,  // peer=q, c1=restored HS[q], c2=restored HR[q] (one per
                // peer after checkpoint restore; baselines the audit)
  // Event-logger server side.
  kElSrvAppend,    // peer=client rank, c1=send clock, c2=recv clock,
                   // c3=event sender, flag=probe batch
  kElSrvPrune,     // peer=client rank, c1=prune bound
  kElSrvTruncate,  // peer=client rank, n=events dropped (new incarnation)
  // Checkpoint scheduler.
  kCkptOrder,  // peer=rank ordered to checkpoint
  // App/device side.
  kAppCkptImage,  // n=image bytes handed to the daemon
  // Recovery fast path (daemon): the three restart stages as spans, so the
  // chrome timeline shows how far the image fetch, the event download and
  // the replay overlap. c3=RestartPhase; End carries n=bytes fetched /
  // events merged / deliveries replayed.
  kRestartPhaseBegin,  // c3=phase
  kRestartPhaseEnd,    // c3=phase, n=phase-specific volume
};

/// c3 payload of kRestartPhaseBegin/kRestartPhaseEnd.
enum class RestartPhase : std::int64_t {
  kFetch = 1,     // striped checkpoint-image fetch
  kDownload = 2,  // event-logger download up to the quorum merge
  kReplay = 3,    // plan adoption until the last logged re-delivery
};

[[nodiscard]] std::string_view kind_name(Kind kind);
[[nodiscard]] std::string_view role_name(Role role);

/// One recorded event. POD; the meaning of peer/c1/c2/c3/n/flag depends on
/// `kind` (documented on the Kind enumerators above).
struct TraceEvent {
  SimTime t = 0;             // sim virtual time (ns)
  std::uint64_t seq = 0;     // global record order within the job
  Role role = Role::kDaemon;
  std::int32_t id = 0;       // rank / replica index / stripe index
  std::int32_t incarnation = 0;
  Kind kind = Kind::kSendIssued;
  std::int32_t peer = -1;
  std::int64_t c1 = 0;
  std::int64_t c2 = 0;
  std::int64_t c3 = 0;
  std::uint64_t n = 0;
  bool flag = false;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Kind-specific payload for TraceRecorder::record, so call sites read as
/// named fields: record(Kind::kSendWire, {.peer = q, .c1 = clock}).
struct Fields {
  std::int32_t peer = -1;
  std::int64_t c1 = 0;
  std::int64_t c2 = 0;
  std::int64_t c3 = 0;
  std::uint64_t n = 0;
  bool flag = false;
};

struct TraceConfig {
  bool enabled = false;
  /// Ring capacity per recorder. Oldest events are dropped (and counted)
  /// past this; the auditor then reports "inconclusive" rather than pass.
  std::size_t ring_capacity = std::size_t{1} << 18;
  /// When non-empty, run_job writes the merged trace here as JSONL.
  std::string jsonl_path;
  /// When non-empty, run_job writes a Chrome-trace timeline here.
  std::string chrome_path;
};

/// Test-only fault injection for the auditor's self-test: each mode breaks
/// exactly one protocol invariant so tests can assert trace_audit catches it.
enum class Mutation : std::uint8_t {
  kNone = 0,
  /// Transmit payload frames even while their reception events are not yet
  /// quorum-acked (violates no-orphan / WAITLOGGED).
  kSkipWaitLogged,
  /// Swap the first two re-deliveries of the downloaded replay plan
  /// (violates replay-order ≡ logged-order).
  kReplayOutOfOrder,
  /// Prune one SAVED sender-log entry without a covering CkptNotify
  /// (violates GC safety / sender-log coverage).
  kPruneSavedEarly,
};

class TraceBook;

/// Per-actor ring buffer of TraceEvents. Cheap enough to call from the
/// daemon hot path: one branch, a ring slot write and a relaxed global
/// sequence fetch. Not thread-safe per recorder — each actor records only
/// from its own fiber (the sim engine is single-threaded).
class TraceRecorder {
 public:
  TraceRecorder(TraceBook& book, Role role, std::int32_t id,
                std::size_t capacity);

  void set_incarnation(std::int32_t incarnation) {
    incarnation_ = incarnation;
  }
  [[nodiscard]] std::int32_t incarnation() const { return incarnation_; }
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] std::int32_t id() const { return id_; }

  void record(Kind kind, Fields f = {});

  /// Events still held, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// How many events the ring evicted (0 = the trace is complete).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

 private:
  TraceBook& book_;
  Role role_;
  std::int32_t id_;
  std::int32_t incarnation_ = 0;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write position once the ring wrapped
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
};

/// Owns every recorder of one job and the global sequence counter. Merged
/// output is totally ordered by (t, seq): seq breaks virtual-time ties in
/// record order, which respects causality inside the single-threaded sim.
class TraceBook {
 public:
  explicit TraceBook(TraceConfig config, const sim::Engine* engine = nullptr);

  /// Returns the recorder for (role, id), creating it on first use.
  /// Recorders are stable for the life of the book (daemons keep theirs
  /// across incarnations).
  TraceRecorder* recorder(Role role, std::int32_t id);

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] SimTime now() const;
  std::uint64_t next_seq() { return seq_++; }
  /// Unit tests drive time manually when no engine is attached.
  void set_manual_time(SimTime t) { manual_time_ = t; }

  /// All surviving events across recorders, sorted by (t, seq).
  [[nodiscard]] std::vector<TraceEvent> merged() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::uint64_t total_recorded() const;

 private:
  TraceConfig config_;
  const sim::Engine* engine_;
  SimTime manual_time_ = 0;
  std::uint64_t seq_ = 0;
  std::map<std::pair<int, std::int32_t>, std::unique_ptr<TraceRecorder>>
      recorders_;
};

inline void TraceRecorder::record(Kind kind, Fields f) {
  if constexpr (!kCompiled) {
    (void)kind;
    (void)f;
    return;
  } else {
    TraceEvent e;
    e.t = book_.now();
    e.seq = book_.next_seq();
    e.role = role_;
    e.id = id_;
    e.incarnation = incarnation_;
    e.kind = kind;
    e.peer = f.peer;
    e.c1 = f.c1;
    e.c2 = f.c2;
    e.c3 = f.c3;
    e.n = f.n;
    e.flag = f.flag;
    ++recorded_;
    if (!wrapped_ && ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    wrapped_ = true;
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

}  // namespace mpiv::trace

// Instrumentation helper: records iff a recorder is attached and tracing is
// compiled in. Field commas inside the braced Fields initializer split into
// macro arguments and reassemble through __VA_ARGS__.
#ifndef MPIV_TRACE_DISABLED
#define MPIV_TRACE(rec, ...)                              \
  do {                                                    \
    if ((rec) != nullptr) (rec)->record(__VA_ARGS__);     \
  } while (0)
#else
#define MPIV_TRACE(rec, ...) \
  do {                       \
  } while (0)
#endif
