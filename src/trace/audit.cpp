#include "trace/audit.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace mpiv::trace {
namespace {

constexpr std::size_t kMaxViolations = 64;

// Per-peer watermark state within one (rank, incarnation).
struct PeerState {
  std::int64_t hs_bound = 0;     // highest clock known sent to this peer
  std::int64_t notified_hr = 0;  // highest CkptNotify received from peer
  std::int64_t pruned_upto = 0;  // highest SAVED prune bound toward peer
  std::int64_t last_r1 = -1;     // last Restart1 HR sent to peer
  std::int64_t last_r2 = -1;     // last Restart2 HR sent to peer
  std::int64_t last_notify = -1; // last CkptNotify value sent to peer
};

// State of one incarnation of one rank.
struct IncState {
  std::set<std::pair<std::int32_t, std::int64_t>> delivered;
  std::int64_t recv_clock = 0;   // last delivery clock observed
  std::vector<TraceEvent> plan;          // every kReplayPlan, in order
  std::vector<TraceEvent> plan_deliv;    // delivery subset of the plan
  std::size_t next_replay = 0;
  bool has_stable = false;       // stable ckpt reached (or restored from one)
  std::map<std::int32_t, PeerState> peers;
};

// Append key: (event sender, send clock, recv clock, probe-batch flag).
using AppendKey = std::tuple<std::int32_t, std::int64_t, std::int64_t, bool>;

struct RankState {
  std::map<std::int32_t, IncState> incs;
  std::map<AppendKey, std::int32_t> append_min_inc;
  std::int64_t el_pruned = 0;    // event-log prune bound (recv clock)
};

class Auditor {
 public:
  explicit Auditor(std::uint64_t dropped) { report_.dropped = dropped; }

  AuditReport run(const std::vector<TraceEvent>& events) {
    for (const TraceEvent& e : events) {
      ++report_.events_checked;
      if (e.role == Role::kDaemon) daemon_event(e);
    }
    if (report_.dropped > 0) {
      report_.inconclusive = true;
    }
    if (report_.events_checked == 0) {
      report_.inconclusive = true;
    }
    report_.pass = report_.violations.empty() && !report_.inconclusive;
    return std::move(report_);
  }

 private:
  void flag(Invariant inv, const TraceEvent& e, std::string detail,
            const TraceEvent* context = nullptr) {
    if (report_.violations.size() >= kMaxViolations) return;
    Violation v;
    v.invariant = inv;
    v.detail = std::move(detail);
    if (context != nullptr) v.evidence.push_back(*context);
    v.evidence.push_back(e);
    report_.violations.push_back(std::move(v));
  }

  IncState& inc_state(const TraceEvent& e) {
    return ranks_[e.id].incs[e.incarnation];
  }

  void daemon_event(const TraceEvent& e) {
    RankState& rank = ranks_[e.id];
    IncState& inc = inc_state(e);
    switch (e.kind) {
      case Kind::kSendWire: {
        // No-orphan: the frame's required reception events (n) must be
        // quorum-acked (c2) when the last chunk leaves the node.
        if (e.n > static_cast<std::uint64_t>(std::max<std::int64_t>(e.c2, 0))) {
          std::ostringstream os;
          os << "rank " << e.id << " sent clock " << e.c1 << " to rank "
             << e.peer << " with only " << e.c2 << "/" << e.n
             << " reception events quorum-acked (WAITLOGGED violated)";
          flag(Invariant::kNoOrphan, e, os.str());
        }
        break;
      }
      case Kind::kSendIssued:
        touch_hs(inc, e.peer, e.c1);
        break;
      case Kind::kRestart2Recv:
        touch_hs(inc, e.peer, e.c1);
        break;
      case Kind::kWatermarks:
        touch_hs(inc, e.peer, e.c1);
        break;
      case Kind::kSendSuppressed: {
        // Monotonic-H: suppression may only fire at or below the HS bound
        // established by prior sends / RESTART2 / the restored watermark.
        std::int64_t bound = inc.peers[e.peer].hs_bound;
        if (e.c1 > bound) {
          std::ostringstream os;
          os << "rank " << e.id << " suppressed send clock " << e.c1
             << " to rank " << e.peer << " above its HS bound " << bound;
          flag(Invariant::kMonotonicH, e, os.str());
        }
        break;
      }
      case Kind::kDeliver:
        deliver(rank, inc, e);
        break;
      case Kind::kReplayPlan:
        replay_plan(rank, inc, e);
        break;
      case Kind::kElAppend: {
        AppendKey key{e.peer, e.c1, e.c2, e.flag};
        auto it = rank.append_min_inc.find(key);
        if (it == rank.append_min_inc.end() || it->second > e.incarnation) {
          rank.append_min_inc[key] = e.incarnation;
        }
        break;
      }
      case Kind::kElPrune:
        rank.el_pruned = std::max(rank.el_pruned, e.c1);
        break;
      case Kind::kElDownload: {
        // GC safety: the restored delivery clock must cover everything the
        // event log pruned, or part of the history is unrecoverable.
        if (e.c1 < rank.el_pruned) {
          std::ostringstream os;
          os << "rank " << e.id << " restarted at delivery clock " << e.c1
             << " but its event log was pruned up to " << rank.el_pruned;
          flag(Invariant::kGcSafety, e, os.str());
        }
        break;
      }
      case Kind::kCkptStable:
      case Kind::kCkptRestore:
        inc.has_stable = true;
        if (e.kind == Kind::kCkptRestore) inc.recv_clock = e.c2;
        break;
      case Kind::kCkptNotifySend: {
        PeerState& ps = inc.peers[e.peer];
        if (e.c1 > 0 && !inc.has_stable) {
          std::ostringstream os;
          os << "rank " << e.id << " advertised GC watermark " << e.c1
             << " to rank " << e.peer << " without a stable checkpoint";
          flag(Invariant::kSenderLogCoverage, e, os.str());
        }
        if (e.c1 < ps.last_notify) {
          std::ostringstream os;
          os << "rank " << e.id << " CkptNotify to rank " << e.peer
             << " regressed from " << ps.last_notify << " to " << e.c1;
          flag(Invariant::kMonotonicH, e, os.str());
        }
        ps.last_notify = e.c1;
        notify_sent_.insert({e.id, e.peer, e.c1});
        break;
      }
      case Kind::kCkptNotifyRecv: {
        // Sender-log coverage: a GC permission must originate from a real
        // CkptNotify send by that peer (i.e. from a stable checkpoint).
        if (notify_sent_.find({e.peer, e.id, e.c1}) == notify_sent_.end()) {
          std::ostringstream os;
          os << "rank " << e.id << " observed CkptNotify h=" << e.c1
             << " from rank " << e.peer << " that rank " << e.peer
             << " never sent";
          flag(Invariant::kSenderLogCoverage, e, os.str());
        }
        PeerState& ps = inc.peers[e.peer];
        ps.notified_hr = std::max(ps.notified_hr, e.c1);
        break;
      }
      case Kind::kGcPrune: {
        PeerState& ps = inc.peers[e.peer];
        if (e.c1 > ps.notified_hr) {
          std::ostringstream os;
          os << "rank " << e.id << " pruned SAVED toward rank " << e.peer
             << " up to clock " << e.c1 << " but rank " << e.peer
             << " only notified stability up to " << ps.notified_hr;
          flag(Invariant::kGcSafety, e, os.str());
        }
        ps.pruned_upto = std::max(ps.pruned_upto, e.c1);
        break;
      }
      case Kind::kRestart1Recv: {
        // GC safety: the restarting peer asks for everything above its HR;
        // if we pruned beyond that, the resend is unsatisfiable.
        PeerState& ps = inc.peers[e.peer];
        if (e.c1 < ps.pruned_upto) {
          std::ostringstream os;
          os << "rank " << e.id << " received Restart1 hr=" << e.c1
             << " from rank " << e.peer << " after pruning SAVED up to "
             << ps.pruned_upto << " (pruned payload re-requested)";
          flag(Invariant::kGcSafety, e, os.str());
        }
        // Restart1 re-seeds HS from the peer's HR, so resend suppression up
        // to that clock is legitimate.
        touch_hs(inc, e.peer, e.c1);
        break;
      }
      case Kind::kRestart1Send: {
        PeerState& ps = inc.peers[e.peer];
        if (e.c1 < ps.last_r1) {
          std::ostringstream os;
          os << "rank " << e.id << " Restart1 HR toward rank " << e.peer
             << " regressed from " << ps.last_r1 << " to " << e.c1;
          flag(Invariant::kMonotonicH, e, os.str());
        }
        ps.last_r1 = e.c1;
        break;
      }
      case Kind::kRestart2Send: {
        PeerState& ps = inc.peers[e.peer];
        if (e.c1 < ps.last_r2) {
          std::ostringstream os;
          os << "rank " << e.id << " Restart2 HR toward rank " << e.peer
             << " regressed from " << ps.last_r2 << " to " << e.c1;
          flag(Invariant::kMonotonicH, e, os.str());
        }
        ps.last_r2 = e.c1;
        break;
      }
      default:
        break;
    }
  }

  static void touch_hs(IncState& inc, std::int32_t peer, std::int64_t clock) {
    PeerState& ps = inc.peers[peer];
    ps.hs_bound = std::max(ps.hs_bound, clock);
  }

  void deliver(RankState& rank, IncState& inc, const TraceEvent& e) {
    (void)rank;
    // At-most-once per (sender, sender clock) within this incarnation.
    auto key = std::make_pair(e.peer, e.c1);
    if (!inc.delivered.insert(key).second) {
      std::ostringstream os;
      os << "rank " << e.id << " delivered (sender " << e.peer << ", clock "
         << e.c1 << ") twice in incarnation " << e.incarnation;
      flag(Invariant::kAtMostOnce, e, os.str());
    }
    // The delivery clock advances by exactly one per delivery.
    if (e.c2 != inc.recv_clock + 1) {
      std::ostringstream os;
      os << "rank " << e.id << " delivery clock jumped from " << inc.recv_clock
         << " to " << e.c2 << " (sender " << e.peer << ", clock " << e.c1
         << ")";
      flag(Invariant::kAtMostOnce, e, os.str());
    }
    inc.recv_clock = e.c2;
    // Replay-order: replayed deliveries must match the downloaded plan
    // position-by-position, and no fresh delivery may preempt the replay.
    if (e.flag) {
      if (inc.next_replay >= inc.plan_deliv.size()) {
        flag(Invariant::kReplayOrder, e,
             "replayed delivery has no corresponding logged event");
      } else {
        const TraceEvent& want = inc.plan_deliv[inc.next_replay];
        if (want.peer != e.peer || want.c1 != e.c1 || want.c2 != e.c2) {
          std::ostringstream os;
          os << "rank " << e.id << " replay diverged from the logged order: "
             << "logged (sender " << want.peer << ", clock " << want.c1
             << ", recv " << want.c2 << ") but delivered (sender " << e.peer
             << ", clock " << e.c1 << ", recv " << e.c2 << ")";
          flag(Invariant::kReplayOrder, e, os.str(), &want);
        }
        ++inc.next_replay;
      }
    } else if (inc.next_replay < inc.plan_deliv.size()) {
      std::ostringstream os;
      os << "rank " << e.id << " delivered a fresh message with "
         << (inc.plan_deliv.size() - inc.next_replay)
         << " logged re-deliveries still pending";
      flag(Invariant::kReplayOrder, e, os.str());
    }
  }

  void replay_plan(RankState& rank, IncState& inc, const TraceEvent& e) {
    // The plan itself must be ordered the way the event log orders events:
    // delivery clocks non-decreasing, probe batches before the delivery
    // that closes the same clock slot.
    if (!inc.plan.empty()) {
      const TraceEvent& prev = inc.plan.back();
      bool ordered = e.c2 > prev.c2 || (e.c2 == prev.c2 && prev.flag);
      if (!ordered) {
        std::ostringstream os;
        os << "rank " << e.id << " downloaded a replay plan out of logged "
           << "order: recv " << prev.c2 << " then recv " << e.c2;
        flag(Invariant::kReplayOrder, e, os.str(), &prev);
      }
    }
    // Every planned event must have been appended by an earlier
    // incarnation of this rank (otherwise the log invented history).
    AppendKey key{e.peer, e.c1, e.c2, e.flag};
    auto it = rank.append_min_inc.find(key);
    if (it == rank.append_min_inc.end() || it->second >= e.incarnation) {
      std::ostringstream os;
      os << "rank " << e.id << " replay plan contains (sender " << e.peer
         << ", clock " << e.c1 << ", recv " << e.c2
         << ") never appended by an earlier incarnation";
      flag(Invariant::kReplayOrder, e, os.str());
    }
    inc.plan.push_back(e);
    if (!e.flag) inc.plan_deliv.push_back(e);
  }

  AuditReport report_;
  std::map<std::int32_t, RankState> ranks_;
  std::set<std::tuple<std::int32_t, std::int32_t, std::int64_t>> notify_sent_;
};

}  // namespace

std::string_view invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kNoOrphan: return "no-orphan";
    case Invariant::kAtMostOnce: return "at-most-once";
    case Invariant::kReplayOrder: return "replay-order";
    case Invariant::kSenderLogCoverage: return "sender-log-coverage";
    case Invariant::kGcSafety: return "gc-safety";
    case Invariant::kMonotonicH: return "monotonic-h";
  }
  return "unknown";
}

bool AuditReport::has(Invariant inv) const {
  return std::any_of(violations.begin(), violations.end(),
                     [inv](const Violation& v) { return v.invariant == inv; });
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  if (pass) {
    os << "PASS: " << events_checked << " events, all invariants hold\n";
    return os.str();
  }
  if (inconclusive) {
    os << "INCONCLUSIVE: " << dropped << " events dropped by ring eviction, "
       << events_checked << " checked";
    if (events_checked == 0) os << " (empty trace)";
    os << "\n";
  }
  for (const Violation& v : violations) {
    os << "FAIL " << invariant_name(v.invariant) << ": " << v.detail << "\n";
    for (const TraceEvent& e : v.evidence) {
      os << "  evidence: t=" << e.t << "ns seq=" << e.seq << " "
         << role_name(e.role) << " " << e.id << " inc=" << e.incarnation
         << " " << kind_name(e.kind) << " peer=" << e.peer << " c1=" << e.c1
         << " c2=" << e.c2 << " n=" << e.n << " flag="
         << (e.flag ? "true" : "false") << "\n";
    }
  }
  return os.str();
}

AuditReport audit(const std::vector<TraceEvent>& events,
                  std::uint64_t dropped) {
  return Auditor(dropped).run(events);
}

AuditReport audit(const TraceBook& book) {
  return audit(book.merged(), book.total_dropped());
}

}  // namespace mpiv::trace
