// Trace sinks: JSONL dump (one event per line, lossless, re-readable by
// the offline auditor) and a Chrome-trace / Perfetto export for timeline
// visualization of WAITLOGGED stalls, node outages and replay.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mpiv::trace {

/// One JSON object per line:
///   {"t":1234,"seq":7,"role":"daemon","id":0,"inc":1,"kind":"deliver",
///    "peer":2,"c1":5,"c2":9,"c3":0,"n":0,"flag":true}
/// The header line {"trace":"mpich-v2","dropped":N} carries the total ring
/// eviction count so the auditor can degrade to "inconclusive".
void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events,
                 std::uint64_t dropped);
bool write_jsonl_file(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      std::uint64_t dropped);

struct LoadedTrace {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Parses the JSONL format emitted by write_jsonl. Returns false on any
/// malformed line (partial results are kept in `out`).
bool read_jsonl(std::istream& in, LoadedTrace& out, std::string* error = nullptr);
bool read_jsonl_file(const std::string& path, LoadedTrace& out,
                     std::string* error = nullptr);

/// Chrome-trace (chrome://tracing, Perfetto) JSON. Each actor becomes a
/// pid/tid pair; WAITLOGGED stalls and crash→respawn outages become
/// duration ("X") slices, everything else instant ("i") events with the
/// structured fields in args.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events);

}  // namespace mpiv::trace
