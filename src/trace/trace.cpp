#include "trace/trace.hpp"

#include <algorithm>

namespace mpiv::trace {

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kSendIssued: return "send_issued";
    case Kind::kSendSuppressed: return "send_suppressed";
    case Kind::kSendWire: return "send_wire";
    case Kind::kStallStart: return "stall_start";
    case Kind::kStallEnd: return "stall_end";
    case Kind::kSavedResend: return "saved_resend";
    case Kind::kDeliver: return "deliver";
    case Kind::kDupDrop: return "dup_drop";
    case Kind::kElAppend: return "el_append";
    case Kind::kElAck: return "el_ack";
    case Kind::kElQuorum: return "el_quorum";
    case Kind::kElDownload: return "el_download";
    case Kind::kElPrune: return "el_prune";
    case Kind::kReplayPlan: return "replay_plan";
    case Kind::kRestart1Send: return "restart1_send";
    case Kind::kRestart1Recv: return "restart1_recv";
    case Kind::kRestart2Send: return "restart2_send";
    case Kind::kRestart2Recv: return "restart2_recv";
    case Kind::kResendDoneSend: return "resend_done_send";
    case Kind::kResendDoneRecv: return "resend_done_recv";
    case Kind::kCkptBegin: return "ckpt_begin";
    case Kind::kCkptStable: return "ckpt_stable";
    case Kind::kCkptAbandon: return "ckpt_abandon";
    case Kind::kCkptRestore: return "ckpt_restore";
    case Kind::kCkptNotifySend: return "ckpt_notify_send";
    case Kind::kCkptNotifyRecv: return "ckpt_notify_recv";
    case Kind::kGcPrune: return "gc_prune";
    case Kind::kSpawn: return "spawn";
    case Kind::kCrash: return "crash";
    case Kind::kFinish: return "finish";
    case Kind::kWatermarks: return "watermarks";
    case Kind::kElSrvAppend: return "el_srv_append";
    case Kind::kElSrvPrune: return "el_srv_prune";
    case Kind::kElSrvTruncate: return "el_srv_truncate";
    case Kind::kCkptOrder: return "ckpt_order";
    case Kind::kAppCkptImage: return "app_ckpt_image";
    case Kind::kRestartPhaseBegin: return "restart_phase_begin";
    case Kind::kRestartPhaseEnd: return "restart_phase_end";
  }
  return "unknown";
}

std::string_view role_name(Role role) {
  switch (role) {
    case Role::kDaemon: return "daemon";
    case Role::kEventLogger: return "event_logger";
    case Role::kCkptServer: return "ckpt_server";
    case Role::kScheduler: return "scheduler";
    case Role::kRuntime: return "runtime";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(TraceBook& book, Role role, std::int32_t id,
                             std::size_t capacity)
    : book_(book), role_(role), id_(id), capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (!wrapped_) {
    out = ring_;
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

TraceBook::TraceBook(TraceConfig config, const sim::Engine* engine)
    : config_(std::move(config)), engine_(engine) {}

SimTime TraceBook::now() const {
  return engine_ != nullptr ? engine_->now() : manual_time_;
}

TraceRecorder* TraceBook::recorder(Role role, std::int32_t id) {
  auto key = std::make_pair(static_cast<int>(role), id);
  auto it = recorders_.find(key);
  if (it == recorders_.end()) {
    it = recorders_
             .emplace(key, std::make_unique<TraceRecorder>(
                               *this, role, id, config_.ring_capacity))
             .first;
  }
  return it->second.get();
}

std::vector<TraceEvent> TraceBook::merged() const {
  std::vector<TraceEvent> out;
  for (const auto& [key, rec] : recorders_) {
    auto events = rec->events();
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  });
  return out;
}

std::uint64_t TraceBook::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& [key, rec] : recorders_) n += rec->dropped();
  return n;
}

std::uint64_t TraceBook::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& [key, rec] : recorders_) n += rec->recorded();
  return n;
}

}  // namespace mpiv::trace
