// Offline protocol auditor: reconstructs a global MPICH-V2 run from the
// merged trace and checks the pessimistic-logging invariants the paper's
// safety argument rests on (§3–§4 of MPICH-V2):
//
//   no-orphan            no payload leaves a node while the reception
//                        events that causally precede the send are not yet
//                        quorum-acked by the event-logger replicas
//                        (WAITLOGGED, §4.4)
//   at-most-once         per receiver incarnation, each (sender, sender
//                        clock) is delivered at most once, and the delivery
//                        clock advances by exactly one per delivery
//   replay-order         after a restart, re-deliveries follow exactly the
//                        order the event log recorded, every replayed event
//                        was logged by an earlier incarnation, and no fresh
//                        delivery happens before replay completes (§4.6)
//   sender-log-coverage  a rank only learns it may GC via a CkptNotify its
//                        peer really sent after reaching a stable
//                        checkpoint (§4.3, §4.6 GC)
//   gc-safety            SAVED prunes stay within the notified watermark,
//                        no restart ever re-requests a pruned payload, and
//                        no restart downloads below the event-log prune
//                        bound
//   monotonic-h          HS/HR watermarks only advance within an
//                        incarnation; duplicate suppression never fires
//                        above the established HS bound (§4.6)
//
// The auditor is deliberately conservative: state is re-baselined at every
// incarnation (from the kWatermarks/kCkptRestore snapshot events), so a
// legitimate rollback is never a false positive. If any recorder ring
// dropped events the verdict degrades to "inconclusive" — never to a false
// pass.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mpiv::trace {

enum class Invariant : std::uint8_t {
  kNoOrphan = 0,
  kAtMostOnce,
  kReplayOrder,
  kSenderLogCoverage,
  kGcSafety,
  kMonotonicH,
};

[[nodiscard]] std::string_view invariant_name(Invariant inv);

struct Violation {
  Invariant invariant = Invariant::kNoOrphan;
  std::string detail;                 // human-readable counterexample
  std::vector<TraceEvent> evidence;   // offending event(s), causal order
};

struct AuditReport {
  /// True iff no violations and the trace is complete (nothing dropped).
  bool pass = false;
  /// True when ring eviction (or an empty trace) makes the verdict
  /// unreliable; never reported as a pass.
  bool inconclusive = false;
  std::uint64_t dropped = 0;
  std::size_t events_checked = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool has(Invariant inv) const;
  [[nodiscard]] std::string summary() const;
};

/// Audits a merged, (t, seq)-ordered event stream. `dropped` is the total
/// ring-eviction count across recorders.
AuditReport audit(const std::vector<TraceEvent>& events, std::uint64_t dropped);

/// Convenience: audits everything a job's TraceBook holds.
AuditReport audit(const TraceBook& book);

}  // namespace mpiv::trace
