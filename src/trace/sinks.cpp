#include "trace/sinks.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <tuple>

namespace mpiv::trace {
namespace {

constexpr int kLastKind = static_cast<int>(Kind::kRestartPhaseEnd);
constexpr int kLastRole = static_cast<int>(Role::kRuntime);

bool kind_from_name(std::string_view name, Kind& out) {
  for (int k = 0; k <= kLastKind; ++k) {
    if (kind_name(static_cast<Kind>(k)) == name) {
      out = static_cast<Kind>(k);
      return true;
    }
  }
  return false;
}

bool role_from_name(std::string_view name, Role& out) {
  for (int r = 0; r <= kLastRole; ++r) {
    if (role_name(static_cast<Role>(r)) == name) {
      out = static_cast<Role>(r);
      return true;
    }
  }
  return false;
}

// Minimal parser for the flat JSON objects write_jsonl emits: string,
// integer and boolean values only, no nesting, no escapes.
class FlatJson {
 public:
  explicit FlatJson(std::string_view line) { ok_ = parse(line); }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool has(std::string_view key) const {
    return fields_.count(std::string(key)) > 0;
  }
  [[nodiscard]] std::string str(std::string_view key) const {
    auto it = fields_.find(std::string(key));
    return it == fields_.end() ? std::string() : it->second;
  }
  [[nodiscard]] std::int64_t num(std::string_view key,
                                 std::int64_t def = 0) const {
    auto it = fields_.find(std::string(key));
    if (it == fields_.end()) return def;
    return std::strtoll(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::uint64_t unum(std::string_view key,
                                   std::uint64_t def = 0) const {
    auto it = fields_.find(std::string(key));
    if (it == fields_.end()) return def;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] bool boolean(std::string_view key) const {
    return str(key) == "true";
  }

 private:
  bool parse(std::string_view s) {
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    };
    skip_ws();
    if (i >= s.size() || s[i] != '{') return false;
    ++i;
    for (;;) {
      skip_ws();
      if (i < s.size() && s[i] == '}') return true;
      if (i >= s.size() || s[i] != '"') return false;
      auto key_end = s.find('"', i + 1);
      if (key_end == std::string_view::npos) return false;
      std::string key(s.substr(i + 1, key_end - i - 1));
      i = key_end + 1;
      skip_ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      skip_ws();
      if (i >= s.size()) return false;
      std::string value;
      if (s[i] == '"') {
        auto val_end = s.find('"', i + 1);
        if (val_end == std::string_view::npos) return false;
        value = std::string(s.substr(i + 1, val_end - i - 1));
        i = val_end + 1;
      } else {
        std::size_t start = i;
        while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
        value = std::string(s.substr(start, i - start));
        while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
          value.pop_back();
        if (value.empty()) return false;
      }
      fields_[key] = value;
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') return true;
      return false;
    }
  }

  bool ok_ = false;
  std::map<std::string, std::string> fields_;
};

void write_event_line(std::ostream& out, const TraceEvent& e) {
  out << "{\"t\":" << e.t << ",\"seq\":" << e.seq << ",\"role\":\""
      << role_name(e.role) << "\",\"id\":" << e.id << ",\"inc\":"
      << e.incarnation << ",\"kind\":\"" << kind_name(e.kind) << "\""
      << ",\"peer\":" << e.peer << ",\"c1\":" << e.c1 << ",\"c2\":" << e.c2
      << ",\"c3\":" << e.c3 << ",\"n\":" << e.n << ",\"flag\":"
      << (e.flag ? "true" : "false") << "}\n";
}

}  // namespace

void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events,
                 std::uint64_t dropped) {
  out << "{\"trace\":\"mpich-v2\",\"version\":1,\"dropped\":" << dropped
      << ",\"events\":" << events.size() << "}\n";
  for (const TraceEvent& e : events) write_event_line(out, e);
}

bool write_jsonl_file(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      std::uint64_t dropped) {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out, events, dropped);
  return static_cast<bool>(out);
}

bool read_jsonl(std::istream& in, LoadedTrace& out, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    FlatJson obj(line);
    if (!obj.ok()) return fail("malformed JSON object");
    if (obj.has("trace")) {  // header
      out.dropped += obj.unum("dropped");
      continue;
    }
    TraceEvent e;
    Role role{};
    Kind kind{};
    if (!role_from_name(obj.str("role"), role)) return fail("unknown role");
    if (!kind_from_name(obj.str("kind"), kind)) return fail("unknown kind");
    e.role = role;
    e.kind = kind;
    e.t = obj.num("t");
    e.seq = obj.unum("seq");
    e.id = static_cast<std::int32_t>(obj.num("id"));
    e.incarnation = static_cast<std::int32_t>(obj.num("inc"));
    e.peer = static_cast<std::int32_t>(obj.num("peer", -1));
    e.c1 = obj.num("c1");
    e.c2 = obj.num("c2");
    e.c3 = obj.num("c3");
    e.n = obj.unum("n");
    e.flag = obj.boolean("flag");
    out.events.push_back(e);
  }
  return true;
}

bool read_jsonl_file(const std::string& path, LoadedTrace& out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return read_jsonl(in, out, error);
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  auto pid = [](Role role) { return static_cast<int>(role) + 1; };
  auto us = [](SimTime t) { return static_cast<double>(t) / 1000.0; };

  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Process/thread naming metadata.
  std::map<int, bool> roles_seen;
  std::map<std::pair<int, std::int32_t>, bool> actors_seen;
  for (const TraceEvent& e : events) {
    int p = pid(e.role);
    if (!roles_seen.count(p)) {
      roles_seen[p] = true;
      sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << p
            << ",\"args\":{\"name\":\"" << role_name(e.role) << "\"}}";
    }
    auto key = std::make_pair(p, e.id);
    if (!actors_seen.count(key)) {
      actors_seen[key] = true;
      sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << p
            << ",\"tid\":" << e.id << ",\"args\":{\"name\":\""
            << role_name(e.role) << " " << e.id << "\"}}";
    }
  }

  // Duration slices: WAITLOGGED stalls (kStallStart..kStallEnd matched by
  // (actor, peer, clock)), outages (kCrash..kSpawn per actor), and restart
  // phases (kRestartPhaseBegin..End matched by (actor, phase)) — the three
  // phase slices side by side are the recovery overlap picture.
  auto phase_name = [](std::int64_t c3) {
    switch (static_cast<RestartPhase>(c3)) {
      case RestartPhase::kFetch: return "restart fetch";
      case RestartPhase::kDownload: return "restart download";
      case RestartPhase::kReplay: return "restart replay";
    }
    return "restart ?";
  };
  std::map<std::tuple<int, std::int32_t, std::int32_t, std::int64_t>, SimTime>
      open_stalls;
  std::map<std::pair<int, std::int32_t>, SimTime> open_outages;
  std::map<std::tuple<int, std::int32_t, std::int64_t>, SimTime> open_phases;
  for (const TraceEvent& e : events) {
    int p = pid(e.role);
    if (e.kind == Kind::kRestartPhaseBegin) {
      open_phases[{p, e.id, e.c3}] = e.t;
    } else if (e.kind == Kind::kRestartPhaseEnd) {
      auto it = open_phases.find({p, e.id, e.c3});
      if (it != open_phases.end()) {
        sep() << "{\"name\":\"" << phase_name(e.c3)
              << "\",\"cat\":\"restart\",\"ph\":\"X\",\"pid\":" << p
              << ",\"tid\":" << e.id << ",\"ts\":" << us(it->second)
              << ",\"dur\":" << us(e.t - it->second) << ",\"args\":{\"n\":"
              << e.n << "}}";
        open_phases.erase(it);
      }
    } else if (e.kind == Kind::kStallStart) {
      open_stalls[{p, e.id, e.peer, e.c1}] = e.t;
    } else if (e.kind == Kind::kStallEnd) {
      auto it = open_stalls.find({p, e.id, e.peer, e.c1});
      if (it != open_stalls.end()) {
        sep() << "{\"name\":\"WAITLOGGED dest=" << e.peer << " clock=" << e.c1
              << "\",\"cat\":\"stall\",\"ph\":\"X\",\"pid\":" << p
              << ",\"tid\":" << e.id << ",\"ts\":" << us(it->second)
              << ",\"dur\":" << us(e.t - it->second) << "}";
        open_stalls.erase(it);
      }
    } else if (e.kind == Kind::kCrash) {
      open_outages[{p, e.id}] = e.t;
    } else if (e.kind == Kind::kSpawn) {
      auto it = open_outages.find({p, e.id});
      if (it != open_outages.end()) {
        sep() << "{\"name\":\"outage\",\"cat\":\"fault\",\"ph\":\"X\",\"pid\":"
              << p << ",\"tid\":" << e.id << ",\"ts\":" << us(it->second)
              << ",\"dur\":" << us(e.t - it->second) << "}";
        open_outages.erase(it);
      }
    }
  }

  // Everything as instant events with structured args.
  for (const TraceEvent& e : events) {
    sep() << "{\"name\":\"" << kind_name(e.kind)
          << "\",\"cat\":\"proto\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
          << pid(e.role) << ",\"tid\":" << e.id << ",\"ts\":" << us(e.t)
          << ",\"args\":{\"inc\":" << e.incarnation << ",\"peer\":" << e.peer
          << ",\"c1\":" << e.c1 << ",\"c2\":" << e.c2 << ",\"c3\":" << e.c3
          << ",\"n\":" << e.n << ",\"flag\":" << (e.flag ? "true" : "false")
          << ",\"seq\":" << e.seq << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, events);
  return static_cast<bool>(out);
}

}  // namespace mpiv::trace
