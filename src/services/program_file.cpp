#include "services/program_file.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mpiv::services {

const char* role_name(Role role) {
  switch (role) {
    case Role::kCompute: return "compute";
    case Role::kDispatcher: return "dispatcher";
    case Role::kEventLogger: return "event_logger";
    case Role::kCkptServer: return "ckpt_server";
    case Role::kCkptScheduler: return "ckpt_scheduler";
    case Role::kSpare: return "spare";
  }
  return "?";
}

namespace {
Role role_from(const std::string& s, int line) {
  if (s == "compute") return Role::kCompute;
  if (s == "dispatcher") return Role::kDispatcher;
  if (s == "event_logger") return Role::kEventLogger;
  if (s == "ckpt_server") return Role::kCkptServer;
  if (s == "ckpt_scheduler") return Role::kCkptScheduler;
  if (s == "spare") return Role::kSpare;
  throw ConfigError("program file line " + std::to_string(line) +
                    ": unknown role '" + s + "'");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    auto next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    if (next > pos) out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}
}  // namespace

bool Machine::has_role(Role r) const {
  return std::find(roles.begin(), roles.end(), r) != roles.end();
}

ProgramFile ProgramFile::parse(const std::string& text) {
  ProgramFile pf;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  int next_rank = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string name, roles_spec;
    if (!(ls >> name)) continue;  // blank / comment line
    if (!(ls >> roles_spec)) {
      throw ConfigError("program file line " + std::to_string(lineno) +
                        ": machine '" + name + "' has no role");
    }
    Machine m;
    m.name = name;
    for (const std::string& r : split(roles_spec, ',')) {
      m.roles.push_back(role_from(r, lineno));
    }
    std::string opt;
    while (ls >> opt) {
      auto eq = opt.find('=');
      if (eq == std::string::npos) {
        m.options[opt] = "true";
      } else {
        m.options[opt.substr(0, eq)] = opt.substr(eq + 1);
      }
    }
    if (m.has_role(Role::kCompute)) {
      auto it = m.options.find("rank");
      m.rank = it != m.options.end() ? std::stoi(it->second) : next_rank;
      next_rank = std::max(next_rank, m.rank + 1);
    }
    pf.machines_.push_back(std::move(m));
  }
  pf.validate();
  return pf;
}

void ProgramFile::validate() const {
  if (count(Role::kDispatcher) != 1) {
    throw ConfigError("program file: exactly one dispatcher is required");
  }
  if (count(Role::kEventLogger) < 1) {
    throw ConfigError("program file: at least one event logger is required");
  }
  int ncompute = count(Role::kCompute);
  if (ncompute < 1) {
    throw ConfigError("program file: at least one computing node is required");
  }
  std::vector<bool> seen(static_cast<std::size_t>(ncompute), false);
  for (const Machine& m : machines_) {
    if (!m.has_role(Role::kCompute)) continue;
    if (m.rank < 0 || m.rank >= ncompute) {
      throw ConfigError("program file: rank " + std::to_string(m.rank) +
                        " out of range (ranks must be 0.." +
                        std::to_string(ncompute - 1) + ")");
    }
    if (seen[static_cast<std::size_t>(m.rank)]) {
      throw ConfigError("program file: duplicate rank " +
                        std::to_string(m.rank));
    }
    seen[static_cast<std::size_t>(m.rank)] = true;
  }
  if (count(Role::kCkptScheduler) > 1) {
    throw ConfigError("program file: at most one checkpoint scheduler");
  }
}

int ProgramFile::count(Role role) const {
  int n = 0;
  for (const Machine& m : machines_) n += m.has_role(role) ? 1 : 0;
  return n;
}

const Machine* ProgramFile::machine_of_rank(int rank) const {
  for (const Machine& m : machines_) {
    if (m.has_role(Role::kCompute) && m.rank == rank) return &m;
  }
  return nullptr;
}

runtime::JobConfig ProgramFile::to_job_config() const {
  runtime::JobConfig cfg;
  cfg.device = runtime::DeviceKind::kV2;
  cfg.nprocs = count(Role::kCompute);
  cfg.n_event_loggers = count(Role::kEventLogger);
  // Several ckpt_server machines stripe the checkpoint store across that
  // many servers (chunks placed by content hash).
  cfg.n_ckpt_servers = std::max(1, count(Role::kCkptServer));
  cfg.spare_nodes = count(Role::kSpare);
  cfg.checkpointing = count(Role::kCkptScheduler) > 0;
  // Event-logger placement: `port=` and `replicas=` on event_logger lines
  // (first occurrence wins), an explicit replica group `el=0,1,2` per
  // compute line. Ranks without an explicit group get the default
  // (rank, rank+1, ...) placement — sized by `replicas=` — in JobConfig.
  bool any_group = false;
  for (const Machine& m : machines_) {
    if (m.has_role(Role::kEventLogger)) {
      auto pit = m.options.find("port");
      if (pit != m.options.end()) cfg.el_port = std::stoi(pit->second);
      auto rit = m.options.find("replicas");
      if (rit != m.options.end()) {
        cfg.el_replication = std::stoi(rit->second);
        if (cfg.el_replication < 1 ||
            cfg.el_replication > cfg.n_event_loggers) {
          throw ConfigError(
              "program file: replicas=" + rit->second + " needs between 1 and " +
              std::to_string(cfg.n_event_loggers) + " event loggers");
        }
      }
    }
    if (m.has_role(Role::kCompute)) {
      any_group = any_group || m.options.count("el") > 0;
    }
  }
  if (any_group) {
    cfg.el_groups.assign(static_cast<std::size_t>(cfg.nprocs), {});
    for (const Machine& m : machines_) {
      if (!m.has_role(Role::kCompute)) continue;
      std::vector<int>& group =
          cfg.el_groups[static_cast<std::size_t>(m.rank)];
      auto it = m.options.find("el");
      if (it != m.options.end()) {
        for (const std::string& tok : split(it->second, ',')) {
          int idx = std::stoi(tok);
          if (idx < 0 || idx >= cfg.n_event_loggers) {
            throw ConfigError("program file: event-logger index " + tok +
                              " out of range for rank " +
                              std::to_string(m.rank));
          }
          group.push_back(idx);
        }
      } else {
        for (int j = 0; j < cfg.el_replication; ++j) {
          group.push_back((m.rank + j) % cfg.n_event_loggers);
        }
      }
    }
  }
  for (const Machine& m : machines_) {
    if (!m.has_role(Role::kCkptScheduler)) continue;
    auto it = m.options.find("policy");
    if (it == m.options.end()) continue;
    if (it->second == "round_robin") {
      cfg.ckpt_policy = PolicyKind::kRoundRobin;
    } else if (it->second == "adaptive") {
      cfg.ckpt_policy = PolicyKind::kAdaptive;
    } else if (it->second == "random") {
      cfg.ckpt_policy = PolicyKind::kRandom;
    } else {
      throw ConfigError("program file: unknown checkpoint policy '" +
                        it->second + "'");
    }
  }
  return cfg;
}

std::string ProgramFile::describe() const {
  TextTable t({"machine", "roles", "rank", "options"});
  for (const Machine& m : machines_) {
    std::string roles;
    for (std::size_t i = 0; i < m.roles.size(); ++i) {
      roles += (i ? "," : "") + std::string(role_name(m.roles[i]));
    }
    std::string opts;
    for (const auto& [k, v] : m.options) {
      if (k == "rank") continue;
      opts += (opts.empty() ? "" : " ") + k + "=" + v;
    }
    t.add_row({m.name, roles, m.rank >= 0 ? std::to_string(m.rank) : "",
               opts});
  }
  return t.render();
}

}  // namespace mpiv::services
