#include "services/event_logger.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

namespace {

// The (rank, incarnation) a connection announced in its Hello, packed into
// the connection's user tag.
std::uint64_t pack_client(mpi::Rank rank, std::int32_t incarnation) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(incarnation))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank));
}

mpi::Rank client_rank(const net::Conn* conn) {
  return static_cast<mpi::Rank>(
      static_cast<std::int32_t>(conn->user_tag & 0xffffffffu));
}

std::int32_t client_incarnation(const net::Conn* conn) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(conn->user_tag >> 32));
}

}  // namespace

void EventLoggerServer::run(sim::Context& ctx) {
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;  // rank learned from the Hello
      case net::NetEvent::Type::kClosed:
        break;  // client died; state is kept for its re-incarnation
      case net::NetEvent::Type::kData:
        handle(ctx, ev.conn, std::move(ev.data));
        break;
    }
  }
}

void EventLoggerServer::handle(sim::Context& ctx, net::Conn* conn,
                               Buffer data) {
  Reader r(data);
  auto type = static_cast<v2::ElMsg>(r.u8());
  switch (type) {
    case v2::ElMsg::kHello: {
      mpi::Rank rank = r.i32();
      std::int32_t incarnation = r.i32();
      conn->user_tag = pack_client(rank, incarnation);
      return;
    }
    case v2::ElMsg::kQuery: {
      PerRank& pr = store_[client_rank(conn)];
      // A different stored incarnation answers 0: the client must (re)send
      // its whole live log, which truncates whatever we hold.
      std::uint64_t next =
          pr.incarnation == client_incarnation(conn) ? pr.next_seq : 0;
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::ElMsg::kQueryR));
      w.u64(next);
      conn->send(ctx, w.take());
      return;
    }
    case v2::ElMsg::kAppend: {
      std::int32_t incarnation = client_incarnation(conn);
      PerRank& pr = store_[client_rank(conn)];
      if (incarnation < pr.incarnation) return;  // stale client: drop, no ack
      if (incarnation > pr.incarnation) {
        pr.incarnation = incarnation;
        pr.next_seq = 0;
        pr.truncate_pending = true;
      }
      std::uint64_t first_seq = r.u64();
      bool resync = r.boolean();
      std::uint32_t n = r.u32();
      if (first_seq > pr.next_seq) {
        // Forward gap: only legal on a resync after the client pruned the
        // skipped history below a stable checkpoint.
        MPIV_CHECK(resync, "event logger: append sequence gap");
        pr.next_seq = first_seq;
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        v2::ReceptionEvent e = v2::read_event(r);
        if (first_seq + i < pr.next_seq) continue;  // duplicate retransmit
        if (pr.truncate_pending) {
          // Drop the stale suffix a previous incarnation appended: the new
          // incarnation's (merged or re-executed) history supersedes it.
          auto first_stale =
              std::find_if(pr.events.begin(), pr.events.end(),
                           [&e](const v2::ReceptionEvent& old) {
                             return !v2::event_before(old, e);
                           });
          MPIV_TRACE(config_.trace, trace::Kind::kElSrvTruncate,
                     {.peer = client_rank(conn),
                      .n = static_cast<std::uint64_t>(pr.events.end() -
                                                      first_stale)});
          pr.events.erase(first_stale, pr.events.end());
          pr.truncate_pending = false;
        }
        MPIV_TRACE(config_.trace, trace::Kind::kElSrvAppend,
                   {.peer = client_rank(conn),
                    .c1 = e.send_clock,
                    .c2 = e.recv_clock,
                    .c3 = e.sender,
                    .flag = e.kind == v2::ReceptionEvent::Kind::kProbeBatch});
        // Replayed events are never re-appended, so delivery clocks must
        // advance; probe batches are stamped with the upcoming delivery
        // clock and may share it with the delivery that follows.
        if (!pr.events.empty()) {
          const v2::ReceptionEvent& last = pr.events.back();
          MPIV_CHECK(v2::event_before(last, e),
                     "event logger: non-monotonic reception clock");
        }
        pr.events.push_back(e);
        ++pr.next_seq;
      }
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::ElMsg::kAck));
      w.u64(pr.next_seq);
      conn->send(ctx, w.take());
      return;
    }
    case v2::ElMsg::kDownload: {
      v2::Clock after = r.i64();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::ElMsg::kEvents));
      const auto& events = store_[client_rank(conn)].events;
      auto first = std::find_if(events.begin(), events.end(),
                                [after](const v2::ReceptionEvent& e) {
                                  return e.recv_clock > after;
                                });
      w.u32(static_cast<std::uint32_t>(events.end() - first));
      for (auto it = first; it != events.end(); ++it) v2::write_event(w, *it);
      conn->send(ctx, w.take());
      return;
    }
    case v2::ElMsg::kPrune: {
      v2::Clock upto = r.i64();
      MPIV_TRACE(config_.trace, trace::Kind::kElSrvPrune,
                 {.peer = client_rank(conn), .c1 = upto});
      auto& events = store_[client_rank(conn)].events;
      auto first_kept = std::find_if(events.begin(), events.end(),
                                     [upto](const v2::ReceptionEvent& e) {
                                       return e.recv_clock > upto;
                                     });
      events.erase(events.begin(), first_kept);
      return;
    }
    case v2::ElMsg::kAck:
    case v2::ElMsg::kEvents:
    case v2::ElMsg::kQueryR:
      break;
  }
  throw ProtocolError("event logger: unexpected message type");
}

const std::vector<v2::ReceptionEvent>& EventLoggerServer::events_for(
    mpi::Rank rank) const {
  static const std::vector<v2::ReceptionEvent> kEmpty;
  auto it = store_.find(rank);
  return it == store_.end() ? kEmpty : it->second.events;
}

std::uint64_t EventLoggerServer::total_events_stored() const {
  std::uint64_t n = 0;
  for (const auto& [rank, pr] : store_) n += pr.events.size();
  return n;
}

bool EventLoggerServer::store_consistent() const {
  for (const auto& [rank, pr] : store_) {
    for (std::size_t i = 1; i < pr.events.size(); ++i) {
      if (!v2::event_before(pr.events[i - 1], pr.events[i])) return false;
    }
  }
  return true;
}

}  // namespace mpiv::services
