#include "services/event_logger.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

void EventLoggerServer::run(sim::Context& ctx) {
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;  // rank learned from the Hello
      case net::NetEvent::Type::kClosed:
        break;  // client died; state is kept for its re-incarnation
      case net::NetEvent::Type::kData:
        handle(ctx, ev.conn, std::move(ev.data));
        break;
    }
  }
}

void EventLoggerServer::handle(sim::Context& ctx, net::Conn* conn,
                               Buffer data) {
  Reader r(data);
  auto type = static_cast<v2::ElMsg>(r.u8());
  switch (type) {
    case v2::ElMsg::kHello: {
      conn->user_tag = static_cast<std::uint64_t>(r.i32());
      return;
    }
    case v2::ElMsg::kAppend: {
      auto rank = static_cast<mpi::Rank>(conn->user_tag);
      auto& events = store_[rank];
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        v2::ReceptionEvent e = v2::read_event(r);
        // Replayed events are never re-appended, so delivery clocks must
        // advance; probe batches are stamped with the upcoming delivery
        // clock and may share it with the delivery that follows.
        if (!events.empty()) {
          const v2::ReceptionEvent& last = events.back();
          bool ok = e.recv_clock > last.recv_clock ||
                    (e.recv_clock == last.recv_clock &&
                     last.kind == v2::ReceptionEvent::Kind::kProbeBatch);
          MPIV_CHECK(ok, "event logger: non-monotonic reception clock");
        }
        events.push_back(e);
      }
      appended_[rank] += n;
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::ElMsg::kAck));
      w.u64(n);  // batch size: the daemon tracks per-incarnation totals
      conn->send(ctx, w.take());
      return;
    }
    case v2::ElMsg::kDownload: {
      auto rank = static_cast<mpi::Rank>(conn->user_tag);
      v2::Clock after = r.i64();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::ElMsg::kEvents));
      const auto& events = store_[rank];
      auto first = std::find_if(events.begin(), events.end(),
                                [after](const v2::ReceptionEvent& e) {
                                  return e.recv_clock > after;
                                });
      w.u32(static_cast<std::uint32_t>(events.end() - first));
      for (auto it = first; it != events.end(); ++it) v2::write_event(w, *it);
      conn->send(ctx, w.take());
      return;
    }
    case v2::ElMsg::kPrune: {
      auto rank = static_cast<mpi::Rank>(conn->user_tag);
      v2::Clock upto = r.i64();
      auto& events = store_[rank];
      auto first_kept = std::find_if(events.begin(), events.end(),
                                     [upto](const v2::ReceptionEvent& e) {
                                       return e.recv_clock > upto;
                                     });
      events.erase(events.begin(), first_kept);
      return;
    }
    case v2::ElMsg::kAck:
    case v2::ElMsg::kEvents:
      break;
  }
  throw ProtocolError("event logger: unexpected message type");
}

const std::vector<v2::ReceptionEvent>& EventLoggerServer::events_for(
    mpi::Rank rank) const {
  static const std::vector<v2::ReceptionEvent> kEmpty;
  auto it = store_.find(rank);
  return it == store_.end() ? kEmpty : it->second;
}

std::uint64_t EventLoggerServer::total_events_stored() const {
  std::uint64_t n = 0;
  for (const auto& [rank, events] : store_) n += events.size();
  return n;
}

}  // namespace mpiv::services
