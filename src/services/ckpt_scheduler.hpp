// Checkpoint Scheduler (§4.6.2): orders checkpoints one at a time across
// the computing nodes, according to a pluggable policy. Daemons register on
// startup (each incarnation re-registers); orders to dead daemons are
// skipped; a daemon dying mid-checkpoint simply forfeits that slot.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "services/ckpt_policies.hpp"
#include "sim/process.hpp"
#include "trace/trace.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class CkptScheduler {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kSchedulerPort;
    /// Optional causal trace recorder (Role::kScheduler).
    trace::TraceRecorder* trace = nullptr;
    mpi::Rank nranks = 0;
    PolicyKind policy = PolicyKind::kRoundRobin;
    std::uint64_t seed = 1;
    /// Delay before the first checkpoint order.
    SimDuration first_order_after = seconds(1);
    /// Pause between a completed checkpoint and the next order
    /// (0 = continuous checkpointing, the paper's fig. 11 mode).
    SimDuration period = 0;
    /// How long to wait for status replies / checkpoint completion.
    SimDuration status_timeout = milliseconds(200);
    SimDuration ckpt_timeout = seconds(60);
  };

  CkptScheduler(net::Network& net, Config config)
      : net_(net), config_(config), policy_(make_policy(config.policy, config.seed)) {}

  /// Fiber body; returns on dispatcher Shutdown.
  void run(sim::Context& ctx);

  [[nodiscard]] std::uint64_t orders_issued() const { return orders_; }
  [[nodiscard]] std::uint64_t completions_seen() const { return completions_; }

 private:
  /// Processes one network event; updates registration/ack state.
  void handle(net::NetEvent ev);

  net::Network& net_;
  Config config_;
  std::unique_ptr<CkptPolicy> policy_;
  std::vector<net::Conn*> daemon_conns_;
  std::vector<std::optional<v2::DaemonStatus>> statuses_;
  std::optional<std::uint64_t> done_for_rank_;  // set when kCkptDone arrives
  mpi::Rank awaiting_ = -1;
  bool shutdown_ = false;
  std::uint64_t orders_ = 0;
  std::uint64_t completions_ = 0;
};

}  // namespace mpiv::services
