// Analytic checkpoint-scheduling simulator (§4.6.2).
//
// The paper compares the round-robin and adaptive policies on classical
// communication schemes with a purpose-built simulator; this is that
// simulator. Nodes exchange bytes at fixed per-pair rates; one checkpoint
// runs at a time (fixed duration); completing node k's checkpoint clears
// every sender's log destined to k and ships an image containing k's base
// state plus k's own sender log. Two costs are tracked:
//   * time-averaged total sender-log occupancy (memory pressure), and
//   * checkpoint traffic per unit time (bandwidth utilization — the
//     paper's headline metric: adaptive is never worse, and up to n times
//     better for the asynchronous broadcast scheme).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "services/ckpt_policies.hpp"

namespace mpiv::services {

struct SchedSimConfig {
  int nodes = 8;
  /// rate[i][j]: application bytes/s flowing i -> j (logged at i).
  std::vector<std::vector<double>> rate;
  double ckpt_duration_s = 1.0;  // time one checkpoint occupies
  double base_image_bytes = 1e6;
  double horizon_s = 200.0;
  PolicyKind policy = PolicyKind::kRoundRobin;
  std::uint64_t seed = 1;
};

struct SchedSimResult {
  double avg_log_bytes = 0;    // time-averaged total sender-log occupancy
  double peak_log_bytes = 0;
  double ckpt_traffic_bps = 0; // checkpoint image bytes per second
  int checkpoints = 0;
};

SchedSimResult run_sched_sim(const SchedSimConfig& config);

/// Classical communication schemes, as in the paper's comparison.
std::vector<std::vector<double>> scheme_point_to_point(int n, double bps);
std::vector<std::vector<double>> scheme_all_to_all(int n, double bps);
/// Asynchronous broadcast: node 0 streams to everyone.
std::vector<std::vector<double>> scheme_broadcast(int n, double bps);
/// Reduce: everyone streams to node 0.
std::vector<std::vector<double>> scheme_reduce(int n, double bps);

}  // namespace mpiv::services
