// Checkpoint scheduling policies (§4.6.2).
//
// The scheduler orders one checkpoint at a time; a policy decides the order.
//   * round-robin: fixed cyclic order, needs no communication;
//   * adaptive:    sweeps ranks in decreasing (received / sent) byte ratio —
//                  checkpointing heavy receivers first lets their peers
//                  garbage-collect the most sender-log storage;
//   * random:      uniform choice (the paper's fig. 11 setup).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

enum class PolicyKind { kRoundRobin, kAdaptive, kRandom };

class CkptPolicy {
 public:
  virtual ~CkptPolicy() = default;
  /// True if sweep() wants fresh DaemonStatus snapshots.
  [[nodiscard]] virtual bool needs_status() const = 0;
  /// Produces the next sweep of ranks to checkpoint, in order. `statuses`
  /// has one entry per rank (nullopt when the daemon did not answer).
  virtual std::vector<mpi::Rank> sweep(
      const std::vector<std::optional<v2::DaemonStatus>>& statuses,
      mpi::Rank nranks) = 0;
};

std::unique_ptr<CkptPolicy> make_policy(PolicyKind kind,
                                        std::uint64_t seed = 1);

class RoundRobinPolicy final : public CkptPolicy {
 public:
  [[nodiscard]] bool needs_status() const override { return false; }
  std::vector<mpi::Rank> sweep(
      const std::vector<std::optional<v2::DaemonStatus>>& statuses,
      mpi::Rank nranks) override;
};

class AdaptivePolicy final : public CkptPolicy {
 public:
  [[nodiscard]] bool needs_status() const override { return true; }
  std::vector<mpi::Rank> sweep(
      const std::vector<std::optional<v2::DaemonStatus>>& statuses,
      mpi::Rank nranks) override;

 private:
  std::vector<std::int64_t> last_pick_;  // slot of each rank's last order
  std::int64_t slot_ = 0;
};

class RandomPolicy final : public CkptPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] bool needs_status() const override { return false; }
  std::vector<mpi::Rank> sweep(
      const std::vector<std::optional<v2::DaemonStatus>>& statuses,
      mpi::Rank nranks) override;

 private:
  Rng rng_;
};

}  // namespace mpiv::services
