// Event Logger: the reliable repository of reception events (§4.5).
//
// Stores, per computing rank, the ordered list of reception events
// (sender, sender clock, receiver clock, probe count). Appends are
// acknowledged — the daemon-side WAITLOGGED gate counts these acks. On
// restart a daemon downloads every event after its checkpoint clock.
// Several event loggers may serve one system (each daemon binds to exactly
// one); loggers never talk to each other.
#pragma once

#include <map>
#include <vector>

#include "net/network.hpp"
#include "sim/process.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class EventLoggerServer {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kEventLoggerPort;
  };

  EventLoggerServer(net::Network& net, Config config)
      : net_(net), config_(config) {}

  /// Fiber body; serves until killed (the EL lives on a reliable node).
  void run(sim::Context& ctx);

  // ---- test/bench introspection ----
  [[nodiscard]] const std::vector<v2::ReceptionEvent>& events_for(
      mpi::Rank rank) const;
  [[nodiscard]] std::uint64_t total_events_stored() const;

 private:
  void handle(sim::Context& ctx, net::Conn* conn, Buffer data);

  net::Network& net_;
  Config config_;
  std::map<mpi::Rank, std::vector<v2::ReceptionEvent>> store_;
  // Cumulative number of events appended per rank (ack payload).
  std::map<mpi::Rank, std::uint64_t> appended_;
};

}  // namespace mpiv::services
