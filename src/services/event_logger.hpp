// Event Logger: a repository of reception events (§4.5), replicated.
//
// Stores, per computing rank, the ordered list of reception events
// (sender, sender clock, receiver clock, probe count). Appends carry a
// sequence number within the client's (rank, incarnation) and are acked
// cumulatively — the daemon-side WAITLOGGED gate counts an event as logged
// when a majority of its replica group acked it. On restart a daemon
// downloads every event after its checkpoint clock from all reachable
// replicas and merges the lists. Loggers never talk to each other: the
// daemon is the replication engine, each logger is a dumb store.
//
// A logger's store is volatile: when its node is killed and revived the
// runner calls clear(), and the owning daemons resync it from their own
// in-memory copy of the log (kQuery/kQueryR + retransmission).
#pragma once

#include <map>
#include <vector>

#include "net/network.hpp"
#include "sim/process.hpp"
#include "trace/trace.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class EventLoggerServer {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kEventLoggerPort;
    /// Optional causal trace recorder (Role::kEventLogger).
    trace::TraceRecorder* trace = nullptr;
  };

  EventLoggerServer(net::Network& net, Config config)
      : net_(net), config_(config) {}

  /// Fiber body; serves until killed.
  void run(sim::Context& ctx);

  /// Volatile reboot: a revived replica comes back with empty memory.
  void clear() { store_.clear(); }

  // ---- test/bench introspection ----
  [[nodiscard]] const std::vector<v2::ReceptionEvent>& events_for(
      mpi::Rank rank) const;
  [[nodiscard]] std::uint64_t total_events_stored() const;
  /// Every per-rank list strictly ordered by the restart-merge order (and
  /// therefore duplicate-free).
  [[nodiscard]] bool store_consistent() const;

 private:
  struct PerRank {
    std::vector<v2::ReceptionEvent> events;
    /// Newest client incarnation seen appending; older incarnations are
    /// ignored, a newer one truncates the stale suffix it re-appends over.
    std::int32_t incarnation = -1;
    /// Events accepted for that incarnation (resync gaps count as accepted:
    /// they are history the daemon pruned below a stable checkpoint).
    std::uint64_t next_seq = 0;
    /// First accepted append of a new incarnation drops stored events at or
    /// above its receiver clock — the re-executed history supersedes them.
    bool truncate_pending = false;
  };

  void handle(sim::Context& ctx, net::Conn* conn, Buffer data);

  net::Network& net_;
  Config config_;
  std::map<mpi::Rank, PerRank> store_;
};

}  // namespace mpiv::services
