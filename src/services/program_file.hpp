// The run-description "program file" (§4.7) — the MPICH-V2 equivalent of
// MPICH's P4PGFILE. Each line names a machine, its role(s) inside the
// system and per-machine options:
//
//     # machine        roles                          options
//     frontend         dispatcher,ckpt_scheduler      policy=adaptive
//     logger0          event_logger                   replicas=3 port=7001
//     logger1          event_logger
//     logger2          event_logger
//     storage0         ckpt_server
//     node0            compute                        rank=0 el=0,1,2
//     node1            compute
//     standby0         spare
//
// Ranks are assigned in file order unless given explicitly. Event-logger
// options: `replicas=` (group size for default placement) and `port=` on
// event_logger lines, an explicit per-rank replica group `el=i,j,k` on
// compute lines. The parser validates the topology (exactly one
// dispatcher, at least one event logger, at least one computing node,
// contiguous ranks) and converts it into a runtime::JobConfig.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/job.hpp"

namespace mpiv::services {

enum class Role {
  kCompute,
  kDispatcher,
  kEventLogger,
  kCkptServer,
  kCkptScheduler,
  kSpare,
};

const char* role_name(Role role);

struct Machine {
  std::string name;
  std::vector<Role> roles;
  std::map<std::string, std::string> options;
  int rank = -1;  // computing nodes only

  [[nodiscard]] bool has_role(Role r) const;
};

class ProgramFile {
 public:
  /// Parses the text; throws ConfigError with a line number on bad input.
  static ProgramFile parse(const std::string& text);

  [[nodiscard]] const std::vector<Machine>& machines() const {
    return machines_;
  }
  [[nodiscard]] int count(Role role) const;
  [[nodiscard]] const Machine* machine_of_rank(int rank) const;

  /// Maps the described deployment onto a JobConfig (device fixed to V2:
  /// program files describe MPICH-V2 deployments).
  [[nodiscard]] runtime::JobConfig to_job_config() const;

  /// Renders the parsed deployment as a table (the mpirun "run plan").
  [[nodiscard]] std::string describe() const;

 private:
  void validate() const;
  std::vector<Machine> machines_;
};

}  // namespace mpiv::services
