#include "services/ckpt_scheduler.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

void CkptScheduler::handle(net::NetEvent ev) {
  switch (ev.type) {
    case net::NetEvent::Type::kAccepted:
      return;
    case net::NetEvent::Type::kClosed: {
      std::uint64_t tag = ev.conn->user_tag;
      if (tag < daemon_conns_.size() && daemon_conns_[tag] == ev.conn) {
        daemon_conns_[tag] = nullptr;
        if (awaiting_ == static_cast<mpi::Rank>(tag)) awaiting_ = -1;
      }
      return;
    }
    case net::NetEvent::Type::kData:
      break;
  }
  Reader r(ev.data);
  auto type = static_cast<v2::CtlMsg>(r.u8());
  switch (type) {
    case v2::CtlMsg::kRegister: {
      mpi::Rank rank = r.i32();
      ev.conn->user_tag = static_cast<std::uint64_t>(rank);
      daemon_conns_[static_cast<std::size_t>(rank)] = ev.conn;
      return;
    }
    case v2::CtlMsg::kStatus: {
      v2::DaemonStatus s = v2::read_status(r);
      statuses_[static_cast<std::size_t>(s.rank)] = s;
      return;
    }
    case v2::CtlMsg::kCkptDone: {
      mpi::Rank rank = r.i32();
      ++completions_;
      if (rank == awaiting_) awaiting_ = -1;
      return;
    }
    case v2::CtlMsg::kShutdown:
      shutdown_ = true;
      return;
    default:
      throw ProtocolError("scheduler: unexpected message");
  }
}

void CkptScheduler::run(sim::Context& ctx) {
  daemon_conns_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  statuses_.assign(static_cast<std::size_t>(config_.nranks), std::nullopt);
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);

  auto pump_until = [&](SimTime deadline) {
    while (!shutdown_ && ctx.now() < deadline) {
      auto ev = ep.wait_until(ctx, deadline);
      if (!ev) return;
      handle(std::move(*ev));
    }
  };

  pump_until(ctx.now() + config_.first_order_after);

  std::vector<mpi::Rank> queue;
  while (!shutdown_) {
    if (queue.empty()) {
      if (policy_->needs_status()) {
        statuses_.assign(static_cast<std::size_t>(config_.nranks), std::nullopt);
        Writer w;
        w.u8(static_cast<std::uint8_t>(v2::CtlMsg::kStatusReq));
        Buffer req = w.take();
        int asked = 0;
        for (net::Conn* c : daemon_conns_) {
          if (c != nullptr) {
            c->send(ctx, Buffer(req));
            ++asked;
          }
        }
        // Collect replies; stop as soon as every live daemon answered so a
        // status round costs one round trip, not the full timeout.
        SimTime deadline = ctx.now() + config_.status_timeout;
        while (!shutdown_ && ctx.now() < deadline) {
          int have = 0;
          for (const auto& st : statuses_) have += st.has_value() ? 1 : 0;
          if (have >= asked) break;
          auto ev = ep.wait_until(ctx, deadline);
          if (!ev) break;
          handle(std::move(*ev));
        }
        if (shutdown_) break;
      }
      queue = policy_->sweep(statuses_, config_.nranks);
    }
    mpi::Rank target = queue.front();
    queue.erase(queue.begin());
    net::Conn* c = daemon_conns_[static_cast<std::size_t>(target)];
    if (c == nullptr) {
      // Daemon down (crashed or not yet re-registered): skip this slot but
      // keep time flowing so we do not spin.
      pump_until(ctx.now() + std::max<SimDuration>(config_.period, milliseconds(10)));
      continue;
    }
    Writer w;
    w.u8(static_cast<std::uint8_t>(v2::CtlMsg::kCkptOrder));
    c->send(ctx, w.take());
    MPIV_TRACE(config_.trace, trace::Kind::kCkptOrder, {.peer = target});
    ++orders_;
    awaiting_ = target;
    SimTime deadline = ctx.now() + config_.ckpt_timeout;
    while (!shutdown_ && awaiting_ == target && ctx.now() < deadline) {
      auto ev = ep.wait_until(ctx, deadline);
      if (!ev) break;
      handle(std::move(*ev));
    }
    awaiting_ = -1;
    if (config_.period > 0) pump_until(ctx.now() + config_.period);
  }
  MPIV_INFO("scheduler", ctx.now(), "shut down after ", orders_, " orders");
}

}  // namespace mpiv::services
