#include "services/sched_sim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mpiv::services {

std::vector<std::vector<double>> scheme_point_to_point(int n, double bps) {
  // Neighbour pairs: 0<->1, 2<->3, ...
  std::vector<std::vector<double>> r(static_cast<std::size_t>(n),
                                     std::vector<double>(n, 0.0));
  for (int i = 0; i + 1 < n; i += 2) {
    r[static_cast<std::size_t>(i)][static_cast<std::size_t>(i + 1)] = bps;
    r[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(i)] = bps;
  }
  return r;
}

std::vector<std::vector<double>> scheme_all_to_all(int n, double bps) {
  std::vector<std::vector<double>> r(static_cast<std::size_t>(n),
                                     std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          bps / (n - 1);
    }
  }
  return r;
}

std::vector<std::vector<double>> scheme_broadcast(int n, double bps) {
  std::vector<std::vector<double>> r(static_cast<std::size_t>(n),
                                     std::vector<double>(n, 0.0));
  for (int j = 1; j < n; ++j) {
    r[0][static_cast<std::size_t>(j)] = bps;
  }
  return r;
}

std::vector<std::vector<double>> scheme_reduce(int n, double bps) {
  std::vector<std::vector<double>> r(static_cast<std::size_t>(n),
                                     std::vector<double>(n, 0.0));
  for (int i = 1; i < n; ++i) {
    r[static_cast<std::size_t>(i)][0] = bps;
  }
  return r;
}

SchedSimResult run_sched_sim(const SchedSimConfig& config) {
  const int n = config.nodes;
  MPIV_CHECK(static_cast<int>(config.rate.size()) == n, "rate matrix size");
  auto policy = make_policy(config.policy, config.seed);

  // log[i][j]: bytes at sender i destined to j since j's last checkpoint.
  std::vector<std::vector<double>> log(static_cast<std::size_t>(n),
                                       std::vector<double>(n, 0.0));
  std::vector<double> sent(static_cast<std::size_t>(n), 0.0);
  std::vector<double> recv(static_cast<std::size_t>(n), 0.0);

  SchedSimResult out;
  double t = 0;
  double log_time_integral = 0;
  double ckpt_bytes = 0;
  std::vector<mpi::Rank> queue;

  while (t < config.horizon_s) {
    if (queue.empty()) {
      std::vector<std::optional<v2::DaemonStatus>> statuses(
          static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        v2::DaemonStatus s;
        s.rank = i;
        s.sent_bytes = static_cast<std::uint64_t>(sent[static_cast<std::size_t>(i)]);
        s.recv_bytes = static_cast<std::uint64_t>(recv[static_cast<std::size_t>(i)]);
        statuses[static_cast<std::size_t>(i)] = s;
      }
      queue = policy->sweep(statuses, n);
    }
    mpi::Rank target = queue.front();
    queue.erase(queue.begin());

    // Advance one checkpoint slot: logs grow during the transfer.
    double dt = std::min(config.ckpt_duration_s, config.horizon_s - t);
    double total_before = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        auto ui = static_cast<std::size_t>(i);
        auto uj = static_cast<std::size_t>(j);
        total_before += log[ui][uj];
        log[ui][uj] += config.rate[ui][uj] * dt;
        sent[ui] += config.rate[ui][uj] * dt;
        recv[uj] += config.rate[ui][uj] * dt;
      }
    }
    double total_after = 0;
    for (const auto& row : log) {
      for (double v : row) total_after += v;
    }
    log_time_integral += 0.5 * (total_before + total_after) * dt;
    out.peak_log_bytes = std::max(out.peak_log_bytes, total_after);
    t += dt;
    if (dt < config.ckpt_duration_s) break;  // horizon reached mid-slot

    // Checkpoint completes: image = base + target's own sender log; every
    // sender's log toward the target is garbage collected.
    auto ut = static_cast<std::size_t>(target);
    double own_log = 0;
    for (double v : log[ut]) own_log += v;
    ckpt_bytes += config.base_image_bytes + own_log;
    for (int i = 0; i < n; ++i) log[static_cast<std::size_t>(i)][ut] = 0;
    out.checkpoints += 1;
  }

  out.avg_log_bytes = log_time_integral / t;
  out.ckpt_traffic_bps = ckpt_bytes / t;
  return out;
}

}  // namespace mpiv::services
