// Checkpoint Server: reliable storage for checkpoint images (§4.6.1).
//
// Two storage paths share one port:
//
//  * Legacy full images (kStoreBegin/kStoreChunk/kStoreEnd/kFetch): the
//    daemon streams the whole image every round; only the newest image per
//    rank is kept. Retained for the A/B ablation and raw-wire tests.
//
//  * Chunked deltas (kDeltaBegin/kDeltaChunk/kDeltaEnd): the daemon ships
//    the per-chunk hash table of the whole image plus data only for chunks
//    this stripe owns (hash % stripe_count == stripe_index) that changed
//    since the last stable image. Chunk bytes live in a content-addressed
//    store with refcounts shared across ranks; per rank the two newest
//    tables are pinned (current + previous), so a daemon that crashes
//    mid-upload can still restart from the previous complete image, and
//    unchanged chunks referenced by a new table are guaranteed present.
//    Restarting daemons locate and fetch images chunk-wise (kChunkQuery /
//    kFetchChunk), in parallel across stripes.
#pragma once

#include <deque>
#include <map>

#include "net/network.hpp"
#include "sim/process.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class CkptServer {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kCkptServerPort;
    /// Which stripe this server is, out of how many. Chunk data for index
    /// i belongs here iff hashes[i] % stripe_count == stripe_index.
    int stripe_index = 0;
    int stripe_count = 1;
  };

  CkptServer(net::Network& net, Config config) : net_(net), config_(config) {}

  /// Fiber body; serves until killed.
  void run(sim::Context& ctx);

  // ---- test/bench introspection ----
  [[nodiscard]] bool has_image(mpi::Rank rank) const {
    return images_.count(rank) > 0 || tables_.count(rank) > 0;
  }
  [[nodiscard]] std::uint64_t stored_bytes() const;
  [[nodiscard]] std::uint64_t images_stored() const { return store_count_; }
  /// Chunk-data bytes received over the wire (before dedup the daemon did
  /// not perform; equal-content chunks land here only once).
  [[nodiscard]] std::uint64_t chunk_bytes_received() const {
    return chunk_bytes_received_;
  }
  [[nodiscard]] std::size_t content_entries() const { return content_.size(); }

 private:
  struct Image {
    std::uint64_t ckpt_seq = 0;
    Buffer data;
  };
  struct Upload {
    mpi::Rank rank = -1;
    std::uint64_t ckpt_seq = 0;
    std::uint64_t total = 0;
    Buffer data;
  };
  /// In-flight delta upload; chunk data is staged here and touches the
  /// content store only at kDeltaEnd, so an abandoned upload (daemon died
  /// mid-stream) rolls back by discarding the session.
  struct DeltaUpload {
    mpi::Rank rank = -1;
    v2::ChunkTable table;
    std::map<std::uint32_t, SharedBuffer> chunks;  // index -> bytes
  };
  struct ContentEntry {
    SharedBuffer bytes;
    std::uint32_t refs = 0;
  };

  void handle(sim::Context& ctx, net::Conn* conn, Buffer data);
  void install_table(mpi::Rank rank, const v2::ChunkTable& table);
  void drop_table(const v2::ChunkTable& table);
  [[nodiscard]] bool owns(const v2::ChunkTable& t, std::size_t index) const;
  [[nodiscard]] bool owned_complete(const v2::ChunkTable& t) const;
  const v2::ChunkTable* find_table(mpi::Rank rank, std::uint64_t seq) const;

  net::Network& net_;
  Config config_;
  std::map<mpi::Rank, Image> images_;        // legacy full images
  std::map<std::uint64_t, Upload> uploads_;  // keyed by connection id
  std::map<std::uint64_t, DeltaUpload> delta_uploads_;  // keyed by conn id
  /// Newest-last; at most the two newest tables per rank are retained.
  std::map<mpi::Rank, std::deque<v2::ChunkTable>> tables_;
  std::map<std::uint64_t, ContentEntry> content_;  // hash -> chunk bytes
  std::uint64_t store_count_ = 0;
  std::uint64_t chunk_bytes_received_ = 0;
};

}  // namespace mpiv::services
