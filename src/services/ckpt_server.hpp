// Checkpoint Server: reliable storage for checkpoint images (§4.6.1).
//
// Daemons stream images in chunks (so the upload interleaves with normal
// traffic) and fetch the latest image on restart. Only the newest image per
// rank is kept — once a checkpoint is stable, older ones are dead weight.
#pragma once

#include <map>

#include "net/network.hpp"
#include "sim/process.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class CkptServer {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kCkptServerPort;
  };

  CkptServer(net::Network& net, Config config) : net_(net), config_(config) {}

  /// Fiber body; serves until killed.
  void run(sim::Context& ctx);

  // ---- test/bench introspection ----
  [[nodiscard]] bool has_image(mpi::Rank rank) const {
    return images_.count(rank) > 0;
  }
  [[nodiscard]] std::uint64_t stored_bytes() const;
  [[nodiscard]] std::uint64_t images_stored() const { return store_count_; }

 private:
  struct Image {
    std::uint64_t ckpt_seq = 0;
    Buffer data;
  };
  struct Upload {
    mpi::Rank rank = -1;
    std::uint64_t ckpt_seq = 0;
    std::uint64_t total = 0;
    Buffer data;
  };

  void handle(sim::Context& ctx, net::Conn* conn, Buffer data);

  net::Network& net_;
  Config config_;
  std::map<mpi::Rank, Image> images_;
  std::map<std::uint64_t, Upload> uploads_;  // keyed by connection id
  std::uint64_t store_count_ = 0;
};

}  // namespace mpiv::services
