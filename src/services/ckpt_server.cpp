#include "services/ckpt_server.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

void CkptServer::run(sim::Context& ctx) {
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;
      case net::NetEvent::Type::kClosed:
        // Abandoned upload from a crashed daemon: discard the partial image.
        uploads_.erase(ev.conn->id());
        break;
      case net::NetEvent::Type::kData:
        handle(ctx, ev.conn, std::move(ev.data));
        break;
    }
  }
}

void CkptServer::handle(sim::Context& ctx, net::Conn* conn, Buffer data) {
  Reader r(data);
  auto type = static_cast<v2::CsMsg>(r.u8());
  switch (type) {
    case v2::CsMsg::kStoreBegin: {
      Upload up;
      up.rank = r.i32();
      up.ckpt_seq = r.u64();
      up.total = r.u64();
      up.data.reserve(up.total);
      uploads_[conn->id()] = std::move(up);
      return;
    }
    case v2::CsMsg::kStoreChunk: {
      auto it = uploads_.find(conn->id());
      MPIV_CHECK(it != uploads_.end(), "ckpt server: chunk without begin");
      ConstBytes chunk = r.rest();
      it->second.data.insert(it->second.data.end(), chunk.begin(), chunk.end());
      return;
    }
    case v2::CsMsg::kStoreEnd: {
      auto it = uploads_.find(conn->id());
      MPIV_CHECK(it != uploads_.end(), "ckpt server: end without begin");
      Upload up = std::move(it->second);
      uploads_.erase(it);
      MPIV_CHECK(up.data.size() == up.total, "ckpt server: truncated image");
      images_[up.rank] = Image{up.ckpt_seq, std::move(up.data)};
      ++store_count_;
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreOk));
      w.u64(up.ckpt_seq);
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kFetch: {
      mpi::Rank rank = r.i32();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kImage));
      auto it = images_.find(rank);
      if (it == images_.end()) {
        w.boolean(false);
        w.u64(0);
        w.blob({});
      } else {
        w.boolean(true);
        w.u64(it->second.ckpt_seq);
        w.blob(it->second.data);
      }
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kStoreOk:
    case v2::CsMsg::kImage:
      break;
  }
  throw ProtocolError("ckpt server: unexpected message type");
}

std::uint64_t CkptServer::stored_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [rank, img] : images_) n += img.data.size();
  return n;
}

}  // namespace mpiv::services
