#include "services/ckpt_server.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

void CkptServer::run(sim::Context& ctx) {
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;
      case net::NetEvent::Type::kClosed:
        // Abandoned upload from a crashed daemon: discard the partial
        // image/session. Nothing reached the durable stores.
        uploads_.erase(ev.conn->id());
        delta_uploads_.erase(ev.conn->id());
        break;
      case net::NetEvent::Type::kData:
        handle(ctx, ev.conn, std::move(ev.data));
        break;
    }
  }
}

bool CkptServer::owns(const v2::ChunkTable& t, std::size_t index) const {
  return t.owner_of(index, static_cast<std::size_t>(config_.stripe_count)) ==
         static_cast<std::size_t>(config_.stripe_index);
}

bool CkptServer::owned_complete(const v2::ChunkTable& t) const {
  for (std::size_t i = 0; i < t.hashes.size(); ++i) {
    if (owns(t, i) && content_.count(t.hashes[i]) == 0) return false;
  }
  return true;
}

const v2::ChunkTable* CkptServer::find_table(mpi::Rank rank,
                                             std::uint64_t seq) const {
  auto it = tables_.find(rank);
  if (it == tables_.end()) return nullptr;
  for (const v2::ChunkTable& t : it->second) {
    if (t.ckpt_seq == seq) return &t;
  }
  return nullptr;
}

void CkptServer::drop_table(const v2::ChunkTable& table) {
  for (std::size_t i = 0; i < table.hashes.size(); ++i) {
    if (!owns(table, i)) continue;
    auto it = content_.find(table.hashes[i]);
    if (it == content_.end()) continue;
    if (--it->second.refs == 0) content_.erase(it);
  }
}

void CkptServer::install_table(mpi::Rank rank, const v2::ChunkTable& table) {
  // Incref the new table's owned chunks *before* evicting old tables, so
  // content shared between the evictee and the new image survives.
  for (std::size_t i = 0; i < table.hashes.size(); ++i) {
    if (owns(table, i)) ++content_[table.hashes[i]].refs;
  }
  auto& dq = tables_[rank];
  // A restarted daemon can reuse a seq a dead incarnation partially
  // uploaded; the fresh table replaces it.
  for (auto it = dq.begin(); it != dq.end();) {
    if (it->ckpt_seq == table.ckpt_seq) {
      drop_table(*it);
      it = dq.erase(it);
    } else {
      ++it;
    }
  }
  dq.push_back(table);
  while (dq.size() > 2) {
    drop_table(dq.front());
    dq.pop_front();
  }
}

void CkptServer::handle(sim::Context& ctx, net::Conn* conn, Buffer data) {
  Reader r(data);
  auto type = static_cast<v2::CsMsg>(r.u8());
  switch (type) {
    case v2::CsMsg::kStoreBegin: {
      Upload up;
      up.rank = r.i32();
      up.ckpt_seq = r.u64();
      up.total = r.u64();
      up.data.reserve(up.total);
      uploads_[conn->id()] = std::move(up);
      return;
    }
    case v2::CsMsg::kStoreChunk: {
      auto it = uploads_.find(conn->id());
      MPIV_CHECK(it != uploads_.end(), "ckpt server: chunk without begin");
      ConstBytes chunk = r.rest();
      it->second.data.insert(it->second.data.end(), chunk.begin(), chunk.end());
      return;
    }
    case v2::CsMsg::kStoreEnd: {
      auto it = uploads_.find(conn->id());
      MPIV_CHECK(it != uploads_.end(), "ckpt server: end without begin");
      Upload up = std::move(it->second);
      uploads_.erase(it);
      MPIV_CHECK(up.data.size() == up.total, "ckpt server: truncated image");
      images_[up.rank] = Image{up.ckpt_seq, std::move(up.data)};
      ++store_count_;
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreOk));
      w.u64(up.ckpt_seq);
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kFetch: {
      mpi::Rank rank = r.i32();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kImage));
      auto it = images_.find(rank);
      if (it != images_.end()) {
        w.boolean(true);
        w.u64(it->second.ckpt_seq);
        w.blob(it->second.data);
      } else if (config_.stripe_count == 1 && tables_.count(rank) > 0) {
        // Single-stripe delta store: reconstruct the newest complete image
        // from the content store.
        const std::deque<v2::ChunkTable>& dq = tables_.at(rank);
        const v2::ChunkTable* best = nullptr;
        for (const v2::ChunkTable& t : dq) {
          if (owned_complete(t) &&
              (best == nullptr || t.ckpt_seq > best->ckpt_seq)) {
            best = &t;
          }
        }
        if (best == nullptr) {
          w.boolean(false);
          w.u64(0);
          w.blob({});
        } else {
          Buffer image;
          image.reserve(best->total_bytes);
          for (std::uint64_t h : best->hashes) {
            ConstBytes b = content_.at(h).bytes.view();
            image.insert(image.end(), b.begin(), b.end());
          }
          MPIV_CHECK(image.size() == best->total_bytes,
                     "ckpt server: reconstructed image size mismatch");
          w.boolean(true);
          w.u64(best->ckpt_seq);
          w.blob(image);
        }
      } else {
        w.boolean(false);
        w.u64(0);
        w.blob({});
      }
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kDeltaBegin: {
      DeltaUpload up;
      up.rank = r.i32();
      up.table = v2::read_chunk_table(r);
      delta_uploads_[conn->id()] = std::move(up);
      return;
    }
    case v2::CsMsg::kDeltaChunk: {
      auto it = delta_uploads_.find(conn->id());
      MPIV_CHECK(it != delta_uploads_.end(),
                 "ckpt server: delta chunk without begin");
      DeltaUpload& up = it->second;
      std::uint64_t seq = r.u64();
      std::uint32_t index = r.u32();
      MPIV_CHECK(seq == up.table.ckpt_seq && index < up.table.hashes.size(),
                 "ckpt server: delta chunk outside the announced table");
      ConstBytes bytes = r.rest();
      chunk_bytes_received_ += bytes.size();
      // Stage the bytes zero-copy: the wire frame backs the session entry.
      SharedBuffer frame{std::move(data)};
      up.chunks[index] = frame.slice_of(bytes);
      return;
    }
    case v2::CsMsg::kDeltaEnd: {
      auto it = delta_uploads_.find(conn->id());
      MPIV_CHECK(it != delta_uploads_.end(),
                 "ckpt server: delta end without begin");
      DeltaUpload up = std::move(it->second);
      delta_uploads_.erase(it);
      MPIV_CHECK(r.u64() == up.table.ckpt_seq,
                 "ckpt server: delta end for a different checkpoint");
      // Verify this stripe can serve every chunk it owns: either fresh
      // bytes arrived in this session, or the content store already holds
      // the hash (unchanged since a table that is still pinned). Anything
      // else means the daemon's delta base diverged from our store — do
      // not install, do not ack; the daemon treats the missing StoreOk as
      // an incomplete (never-stable) checkpoint.
      for (std::size_t i = 0; i < up.table.hashes.size(); ++i) {
        if (!owns(up.table, i)) continue;
        std::uint64_t h = up.table.hashes[i];
        auto ci = up.chunks.find(static_cast<std::uint32_t>(i));
        if (ci != up.chunks.end()) {
          MPIV_CHECK(hash64(ci->second.view()) == h,
                     "ckpt server: chunk content does not match its hash");
          MPIV_CHECK(ci->second.size() ==
                         chunk_len(up.table.total_bytes, up.table.chunk_size, i),
                     "ckpt server: chunk length mismatch");
          continue;
        }
        if (content_.count(h) == 0) {
          MPIV_WARN("ckpt-server", ctx.now(), "stripe ", config_.stripe_index,
                    " rank ", up.rank, " seq ", up.table.ckpt_seq,
                    ": chunk ", i, " neither uploaded nor in store; "
                    "dropping the upload");
          return;
        }
      }
      for (auto& [index, bytes] : up.chunks) {
        std::uint64_t h = up.table.hashes[index];
        auto ci = content_.find(h);
        if (ci == content_.end()) content_[h].bytes = std::move(bytes);
      }
      install_table(up.rank, up.table);
      ++store_count_;
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kStoreOk));
      w.u64(up.table.ckpt_seq);
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kChunkQuery: {
      mpi::Rank rank = r.i32();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kChunkInfo));
      auto it = tables_.find(rank);
      std::uint32_t n =
          it == tables_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
      w.u32(n);
      if (it != tables_.end()) {
        for (const v2::ChunkTable& t : it->second) {
          v2::write_chunk_table(w, t);
          w.boolean(owned_complete(t));
        }
      }
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kFetchChunk: {
      mpi::Rank rank = r.i32();
      std::uint64_t seq = r.u64();
      std::uint32_t index = r.u32();
      Writer w;
      w.u8(static_cast<std::uint8_t>(v2::CsMsg::kChunk));
      w.u32(index);
      const v2::ChunkTable* t = find_table(rank, seq);
      auto ci = t != nullptr && index < t->hashes.size()
                    ? content_.find(t->hashes[index])
                    : content_.end();
      if (ci == content_.end()) {
        w.boolean(false);
        w.blob({});
      } else {
        w.boolean(true);
        w.blob(ci->second.bytes.view());
      }
      conn->send(ctx, w.take());
      return;
    }
    case v2::CsMsg::kStoreOk:
    case v2::CsMsg::kImage:
    case v2::CsMsg::kChunkInfo:
    case v2::CsMsg::kChunk:
      break;
  }
  throw ProtocolError("ckpt server: unexpected message type");
}

std::uint64_t CkptServer::stored_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [rank, img] : images_) n += img.data.size();
  for (const auto& [hash, entry] : content_) n += entry.bytes.size();
  return n;
}

}  // namespace mpiv::services
