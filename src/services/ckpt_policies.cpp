#include "services/ckpt_policies.hpp"

#include <algorithm>
#include <numeric>

namespace mpiv::services {

std::unique_ptr<CkptPolicy> make_policy(PolicyKind kind, std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kAdaptive: return std::make_unique<AdaptivePolicy>();
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(seed);
  }
  return nullptr;
}

std::vector<mpi::Rank> RoundRobinPolicy::sweep(
    const std::vector<std::optional<v2::DaemonStatus>>& /*statuses*/,
    mpi::Rank nranks) {
  std::vector<mpi::Rank> order(static_cast<std::size_t>(nranks));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<mpi::Rank> AdaptivePolicy::sweep(
    const std::vector<std::optional<v2::DaemonStatus>>& statuses,
    mpi::Rank nranks) {
  // Greedy: one pick per sweep, the node with the highest received/sent
  // ratio (checkpointing a heavy receiver garbage-collects the most
  // sender-log storage and keeps heavy senders' images small). The paper
  // notes the scheduling "does not have to be fair" — a pure sender may
  // simply never be checkpointed while the ratio order holds.
  std::vector<mpi::Rank> order(static_cast<std::size_t>(nranks));
  std::iota(order.begin(), order.end(), 0);
  auto ratio = [&statuses](mpi::Rank r) {
    const auto& s = statuses[static_cast<std::size_t>(r)];
    if (!s.has_value()) return -1.0;  // silent daemons go last
    double sent = static_cast<double>(s->sent_bytes) + 1.0;
    return static_cast<double>(s->recv_bytes) / sent;
  };
  if (last_pick_.size() != static_cast<std::size_t>(nranks)) {
    last_pick_.assign(static_cast<std::size_t>(nranks), -1);
  }
  // Equal ratios (symmetric schemes) fall back to least-recently
  // checkpointed, i.e. round-robin — "never provides a worse scheduling".
  std::stable_sort(order.begin(), order.end(), [&](mpi::Rank a, mpi::Rank b) {
    double ra = ratio(a), rb = ratio(b);
    if (ra != rb) return ra > rb;
    return last_pick_[static_cast<std::size_t>(a)] <
           last_pick_[static_cast<std::size_t>(b)];
  });
  mpi::Rank pick = order.front();
  last_pick_[static_cast<std::size_t>(pick)] = slot_++;
  return {pick};
}

std::vector<mpi::Rank> RandomPolicy::sweep(
    const std::vector<std::optional<v2::DaemonStatus>>& /*statuses*/,
    mpi::Rank nranks) {
  // One random pick per sweep: the scheduler asks again for each order.
  return {static_cast<mpi::Rank>(rng_.below(static_cast<std::uint64_t>(nranks)))};
}

}  // namespace mpiv::services
