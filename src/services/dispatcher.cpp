#include "services/dispatcher.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"

namespace mpiv::services {

void Dispatcher::run(sim::Context& ctx) {
  conns_.assign(static_cast<std::size_t>(config_.nranks), nullptr);
  done_.assign(static_cast<std::size_t>(config_.nranks), false);
  incarnation_.assign(static_cast<std::size_t>(config_.nranks), 0);
  net::Endpoint ep(net_, config_.node);
  ep.listen(config_.port);

  while (done_count_ < config_.nranks) {
    net::NetEvent ev = ep.wait(ctx);
    switch (ev.type) {
      case net::NetEvent::Type::kAccepted:
        break;
      case net::NetEvent::Type::kClosed: {
        std::uint64_t tag = ev.conn->user_tag;
        if (tag >= conns_.size() || conns_[tag] != ev.conn) break;
        auto rank = static_cast<mpi::Rank>(tag);
        conns_[tag] = nullptr;
        // Socket disconnection == fault detection. Restart after the delay
        // (even if the rank already finished: its sender log may still be
        // needed by a peer that is replaying).
        MPIV_WARN("dispatcher", ctx.now(), "rank ", rank,
                  " disconnected; restarting in ",
                  format_duration(config_.restart_delay));
        int inc = ++incarnation_[tag];
        ++restarts_;
        net_.engine().schedule_in(config_.restart_delay, [this, rank, inc] {
          if (!complete_) config_.respawn(rank, inc);
        });
        break;
      }
      case net::NetEvent::Type::kData: {
        Reader r(ev.data);
        auto type = static_cast<v2::CtlMsg>(r.u8());
        if (type == v2::CtlMsg::kRegister) {
          mpi::Rank rank = r.i32();
          ev.conn->user_tag = static_cast<std::uint64_t>(rank);
          conns_[static_cast<std::size_t>(rank)] = ev.conn;
        } else if (type == v2::CtlMsg::kDone) {
          mpi::Rank rank = r.i32();
          if (!done_[static_cast<std::size_t>(rank)]) {
            done_[static_cast<std::size_t>(rank)] = true;
            ++done_count_;
          }
        } else if (type == v2::CtlMsg::kWhereIs) {
          mpi::Rank rank = r.i32();
          net::Address addr =
              config_.locate ? config_.locate(rank) : net::Address{};
          Writer w;
          w.u8(static_cast<std::uint8_t>(v2::CtlMsg::kAddr));
          w.i32(rank);
          w.i32(addr.node);
          w.i32(addr.port);
          ev.conn->send(ctx, w.take());
        } else {
          throw ProtocolError("dispatcher: unexpected message");
        }
        break;
      }
    }
  }

  complete_ = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(v2::CtlMsg::kShutdown));
  Buffer shutdown = w.take();
  for (net::Conn* c : conns_) {
    if (c != nullptr) c->send(ctx, Buffer(shutdown));
  }
  if (config_.scheduler.node != net::kNoNode) {
    net::Conn* sc = net_.connect(ctx, ep, config_.scheduler);
    if (sc != nullptr) sc->send(ctx, Buffer(shutdown));
  }
  MPIV_INFO("dispatcher", ctx.now(), "job complete after ", restarts_,
            " restarts");
}

}  // namespace mpiv::services
