// Dispatcher (the mpirun execution monitor, §4.7).
//
// Launches nothing itself — the runtime provides a respawn hook — but owns
// fault detection and the job lifecycle: every daemon keeps a connection to
// the dispatcher open; a disconnection is the failure detector. On failure
// the dispatcher waits the restart delay and re-spawns the rank (new
// incarnation). When every rank has reported Finalize, it broadcasts
// Shutdown to all daemons and to the checkpoint scheduler.
#pragma once

#include <functional>
#include <vector>

#include "net/network.hpp"
#include "sim/process.hpp"
#include "v2/wire.hpp"

namespace mpiv::services {

class Dispatcher {
 public:
  struct Config {
    net::NodeId node = net::kNoNode;
    std::int32_t port = v2::kDispatcherPort;
    mpi::Rank nranks = 0;
    SimDuration restart_delay = milliseconds(100);
    /// Runtime hook: revive the node of `rank` and spawn a fresh daemon +
    /// MPI process with the given incarnation number.
    std::function<void(mpi::Rank rank, int incarnation)> respawn;
    /// Runtime hook: current daemon address of a rank (spare-node restarts
    /// move ranks; daemons ask via the WhereIs message).
    std::function<net::Address(mpi::Rank rank)> locate;
    net::Address scheduler{net::kNoNode, 0};  // shut it down at job end
  };

  Dispatcher(net::Network& net, Config config)
      : net_(net), config_(std::move(config)) {}

  /// Fiber body; returns once the job completed and shutdowns are sent.
  void run(sim::Context& ctx);

  [[nodiscard]] bool job_complete() const { return complete_; }
  [[nodiscard]] int total_restarts() const { return restarts_; }

 private:
  net::Network& net_;
  Config config_;
  std::vector<net::Conn*> conns_;
  std::vector<bool> done_;
  std::vector<int> incarnation_;
  int done_count_ = 0;
  int restarts_ = 0;
  bool complete_ = false;
};

}  // namespace mpiv::services
