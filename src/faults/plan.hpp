// Fault plans: when to kill which rank's node — or which service node.
//
// Plans are data (scripted or generated from a seeded RNG), applied by the
// runtime as kill_node events — identical runs with identical plans are
// bit-reproducible.
#pragma once

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mpi/types.hpp"

namespace mpiv::faults {

/// What a fault event kills. Compute faults kill the node hosting a rank
/// (daemon + app); service faults kill a fault-tolerance service node —
/// testing that the services themselves survive faults.
enum class FaultTarget : std::uint8_t {
  kCompute = 0,
  kEventLogger,   // rank = replica index; volatile store (cleared on revive)
  kCkptServer,    // rank = stripe index; stable store (kept across reboot)
};

struct FaultEvent {
  SimTime at = 0;
  /// Rank for compute faults; service instance index otherwise.
  mpi::Rank rank = 0;
  FaultTarget target = FaultTarget::kCompute;
  /// Service faults only: revive the node (after the runtime's restart
  /// delay). A non-revived service stays down for the rest of the run.
  bool revive = true;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  static FaultPlan none() { return {}; }

  /// One fault every `interval`, starting at `first`, round-robin over
  /// ranks chosen by `rng` (the paper's fig. 11: a termination signal to a
  /// randomly selected MPI process, ~1 fault / 45 s).
  static FaultPlan periodic_random(int count, SimTime first,
                                   SimDuration interval, mpi::Rank nranks,
                                   std::uint64_t seed) {
    FaultPlan plan;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      plan.events.push_back(
          FaultEvent{first + i * interval,
                     static_cast<mpi::Rank>(rng.below(
                         static_cast<std::uint64_t>(nranks)))});
    }
    return plan;
  }

  /// Poisson-ish fault arrivals over a window: volatile desktop-grid nodes.
  static FaultPlan random_arrivals(double mean_interarrival_s, SimTime start,
                                   SimTime end, mpi::Rank nranks,
                                   std::uint64_t seed) {
    FaultPlan plan;
    Rng rng(seed);
    double t = to_seconds(start);
    for (;;) {
      t += rng.exponential(mean_interarrival_s);
      SimTime at = seconds(t);
      if (at >= end) break;
      plan.events.push_back(FaultEvent{
          at, static_cast<mpi::Rank>(
                  rng.below(static_cast<std::uint64_t>(nranks)))});
    }
    return plan;
  }

  /// Kill specific ranks at one instant (massive correlated failure).
  static FaultPlan simultaneous(SimTime at, std::vector<mpi::Rank> ranks) {
    FaultPlan plan;
    for (mpi::Rank r : ranks) plan.events.push_back(FaultEvent{at, r});
    return plan;
  }

  /// Kill service instance `index` at `at`; revived after the runtime's
  /// restart delay unless `revive` is false.
  static FaultPlan service_kill(SimTime at, FaultTarget target, int index,
                                bool revive = true) {
    FaultPlan plan;
    plan.events.push_back(FaultEvent{at, index, target, revive});
    return plan;
  }

  /// Appends another plan's events (keeps the whole list time-sorted).
  FaultPlan& merge(const FaultPlan& other) {
    events.insert(events.end(), other.events.begin(), other.events.end());
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    return *this;
  }

  /// Torture generator: `compute_kills` uniform over [first, first+window)
  /// across all ranks, plus `el_kills` event-logger replica reboots on a
  /// jittered grid with at least `el_min_spacing` between them. Serializing
  /// the EL outages keeps at most one replica down at a time, which a 2f+1
  /// group with f >= 1 tolerates by design; concurrent EL losses beyond f
  /// are out of contract.
  static FaultPlan random_mixed(int compute_kills, int el_kills, SimTime first,
                                SimDuration window, mpi::Rank nranks,
                                int n_event_loggers,
                                SimDuration el_min_spacing,
                                std::uint64_t seed) {
    FaultPlan plan;
    Rng rng(seed);
    for (int i = 0; i < compute_kills; ++i) {
      SimTime at = first + static_cast<SimTime>(
                               rng.uniform() * static_cast<double>(window));
      plan.events.push_back(FaultEvent{
          at, static_cast<mpi::Rank>(
                  rng.below(static_cast<std::uint64_t>(nranks)))});
    }
    for (int i = 0; i < el_kills; ++i) {
      SimTime at = first + i * el_min_spacing +
                   static_cast<SimTime>(rng.uniform() *
                                        static_cast<double>(el_min_spacing) / 2);
      plan.events.push_back(FaultEvent{
          at,
          static_cast<mpi::Rank>(
              rng.below(static_cast<std::uint64_t>(n_event_loggers))),
          FaultTarget::kEventLogger, /*revive=*/true});
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    return plan;
  }
};

}  // namespace mpiv::faults
