// Fault plans: when to kill which rank's node.
//
// Plans are data (scripted or generated from a seeded RNG), applied by the
// runtime as kill_node events — identical runs with identical plans are
// bit-reproducible.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mpi/types.hpp"

namespace mpiv::faults {

struct FaultEvent {
  SimTime at = 0;
  mpi::Rank rank = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  static FaultPlan none() { return {}; }

  /// One fault every `interval`, starting at `first`, round-robin over
  /// ranks chosen by `rng` (the paper's fig. 11: a termination signal to a
  /// randomly selected MPI process, ~1 fault / 45 s).
  static FaultPlan periodic_random(int count, SimTime first,
                                   SimDuration interval, mpi::Rank nranks,
                                   std::uint64_t seed) {
    FaultPlan plan;
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      plan.events.push_back(
          FaultEvent{first + i * interval,
                     static_cast<mpi::Rank>(rng.below(
                         static_cast<std::uint64_t>(nranks)))});
    }
    return plan;
  }

  /// Poisson-ish fault arrivals over a window: volatile desktop-grid nodes.
  static FaultPlan random_arrivals(double mean_interarrival_s, SimTime start,
                                   SimTime end, mpi::Rank nranks,
                                   std::uint64_t seed) {
    FaultPlan plan;
    Rng rng(seed);
    double t = to_seconds(start);
    for (;;) {
      t += rng.exponential(mean_interarrival_s);
      SimTime at = seconds(t);
      if (at >= end) break;
      plan.events.push_back(FaultEvent{
          at, static_cast<mpi::Rank>(
                  rng.below(static_cast<std::uint64_t>(nranks)))});
    }
    return plan;
  }

  /// Kill specific ranks at one instant (massive correlated failure).
  static FaultPlan simultaneous(SimTime at, std::vector<mpi::Rank> ranks) {
    FaultPlan plan;
    for (mpi::Rank r : ranks) plan.events.push_back(FaultEvent{at, r});
    return plan;
  }
};

}  // namespace mpiv::faults
