// Collective algorithms over point-to-point, as MPICH builds them.
//
// Binomial trees for bcast/reduce, dissemination barrier, ring allgather,
// shifted pairwise exchange for alltoall. Each collective consumes one
// internal tag round so back-to-back collectives cannot cross-match; within
// a round, per-pair FIFO ordering disambiguates the algorithm's phases.
#include <cstring>

#include "common/error.hpp"
#include "mpi/comm.hpp"

namespace mpiv::mpi {

namespace {

struct Timed {
  Profiler::Scope scope;
  sim::Context& ctx;
  Timed(Profiler& p, MpiFunc f, sim::Context& c) : scope(p, f, c.now()), ctx(c) {}
  ~Timed() { scope.finish(ctx.now()); }
};

void combine(std::span<double> acc, std::span<const double> in, ReduceOp op) {
  MPIV_CHECK(acc.size() == in.size(), "reduce size mismatch");
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], in[i]);
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], in[i]);
      return;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= in[i];
      return;
  }
}

}  // namespace

// Each collective claims a distinct internal tag; 2^20 rounds before reuse,
// far beyond any window in which stale messages could linger.
static Tag coll_tag(std::uint64_t round) {
  return kInternalTagBase + static_cast<Tag>(round % (1u << 20));
}

void Comm::barrier(sim::Context& ctx) {
  Timed t(profiler_, MpiFunc::kBarrier, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const Rank r = rank();
  std::byte token{};
  for (Rank dist = 1; dist < n; dist *= 2) {
    Rank to = (r + dist) % n;
    Rank from = (r - dist + n) % n;
    Request rr = adi_.irecv(ctx, MutBytes(&token, 1), from, tag);
    Request sr = adi_.isend(ctx, ConstBytes(&token, 1), to, tag);
    adi_.wait(ctx, sr);
    adi_.wait(ctx, rr);
  }
}

void Comm::bcast(sim::Context& ctx, MutBytes data, Rank root) {
  Timed t(profiler_, MpiFunc::kBcast, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  if (n == 1) return;
  const Rank vr = (rank() - root + n) % n;  // relative rank, root -> 0
  Rank mask = 1;
  while (mask < n) {
    if (vr & mask) {
      Rank src = (vr - mask + root) % n;
      Request rr = adi_.irecv(ctx, data, src, tag);
      adi_.wait(ctx, rr);
      break;
    }
    mask *= 2;
  }
  mask /= 2;
  while (mask > 0) {
    if (vr + mask < n) {
      Rank dest = (vr + mask + root) % n;
      Request sr = adi_.isend(ctx, data, dest, tag);
      adi_.wait(ctx, sr);
    }
    mask /= 2;
  }
}

void Comm::reduce(sim::Context& ctx, std::span<const double> sendbuf,
                  std::span<double> recvbuf, ReduceOp op, Rank root) {
  Timed t(profiler_, MpiFunc::kReduce, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const Rank vr = (rank() - root + n) % n;
  std::vector<double> acc(sendbuf.begin(), sendbuf.end());
  std::vector<double> incoming(sendbuf.size());
  Rank mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      Rank partner = vr + mask;
      if (partner < n) {
        Rank src = (partner + root) % n;
        Request rr = adi_.irecv(ctx, std::as_writable_bytes(std::span(incoming)),
                                src, tag);
        adi_.wait(ctx, rr);
        combine(acc, incoming, op);
      }
    } else {
      Rank dest = (vr - mask + root) % n;
      Request sr =
          adi_.isend(ctx, std::as_bytes(std::span<const double>(acc)), dest, tag);
      adi_.wait(ctx, sr);
      break;
    }
    mask *= 2;
  }
  if (rank() == root) {
    MPIV_CHECK(recvbuf.size() == sendbuf.size(), "reduce recvbuf size");
    std::memcpy(recvbuf.data(), acc.data(), acc.size() * sizeof(double));
  }
}

void Comm::allreduce(sim::Context& ctx, std::span<const double> sendbuf,
                     std::span<double> recvbuf, ReduceOp op) {
  Timed t(profiler_, MpiFunc::kAllreduce, ctx);
  MPIV_CHECK(recvbuf.size() == sendbuf.size(), "allreduce size mismatch");
  reduce(ctx, sendbuf, recvbuf, op, 0);
  bcast(ctx, std::as_writable_bytes(recvbuf), 0);
}

double Comm::allreduce(sim::Context& ctx, double value, ReduceOp op) {
  double out = 0;
  allreduce(ctx, std::span<const double>(&value, 1), std::span<double>(&out, 1),
            op);
  return out;
}

void Comm::alltoall(sim::Context& ctx, ConstBytes sendbuf, MutBytes recvbuf,
                    std::size_t block_bytes) {
  Timed t(profiler_, MpiFunc::kAlltoall, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const Rank r = rank();
  MPIV_CHECK(sendbuf.size() == block_bytes * static_cast<std::size_t>(n),
             "alltoall sendbuf size");
  MPIV_CHECK(recvbuf.size() == block_bytes * static_cast<std::size_t>(n),
             "alltoall recvbuf size");
  // Local block.
  std::memcpy(recvbuf.data() + block_bytes * static_cast<std::size_t>(r),
              sendbuf.data() + block_bytes * static_cast<std::size_t>(r),
              block_bytes);
  for (Rank i = 1; i < n; ++i) {
    Rank dest = (r + i) % n;
    Rank src = (r - i + n) % n;
    Request rr = adi_.irecv(
        ctx,
        recvbuf.subspan(block_bytes * static_cast<std::size_t>(src), block_bytes),
        src, tag);
    Request sr = adi_.isend(
        ctx,
        sendbuf.subspan(block_bytes * static_cast<std::size_t>(dest), block_bytes),
        dest, tag);
    adi_.wait(ctx, sr);
    adi_.wait(ctx, rr);
  }
}

void Comm::allgather(sim::Context& ctx, ConstBytes sendblock, MutBytes recvbuf) {
  Timed t(profiler_, MpiFunc::kAllgather, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const Rank r = rank();
  const std::size_t bs = sendblock.size();
  MPIV_CHECK(recvbuf.size() == bs * static_cast<std::size_t>(n),
             "allgather recvbuf size");
  std::memcpy(recvbuf.data() + bs * static_cast<std::size_t>(r),
              sendblock.data(), bs);
  // Ring: in step s we forward the block that originated at (r - s).
  Rank right = (r + 1) % n;
  Rank left = (r - 1 + n) % n;
  for (Rank s = 0; s < n - 1; ++s) {
    Rank send_origin = (r - s + n) % n;
    Rank recv_origin = (r - s - 1 + n) % n;
    Request rr = adi_.irecv(
        ctx, recvbuf.subspan(bs * static_cast<std::size_t>(recv_origin), bs),
        left, tag);
    Request sr = adi_.isend(
        ctx,
        ConstBytes(recvbuf.data() + bs * static_cast<std::size_t>(send_origin),
                   bs),
        right, tag);
    adi_.wait(ctx, sr);
    adi_.wait(ctx, rr);
  }
}

void Comm::gather(sim::Context& ctx, ConstBytes sendblock, MutBytes recvbuf,
                  Rank root) {
  Timed t(profiler_, MpiFunc::kGather, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const std::size_t bs = sendblock.size();
  if (rank() == root) {
    MPIV_CHECK(recvbuf.size() == bs * static_cast<std::size_t>(n),
               "gather recvbuf size");
    std::memcpy(recvbuf.data() + bs * static_cast<std::size_t>(root),
                sendblock.data(), bs);
    std::vector<Request> reqs;
    for (Rank src = 0; src < n; ++src) {
      if (src == root) continue;
      reqs.push_back(adi_.irecv(
          ctx, recvbuf.subspan(bs * static_cast<std::size_t>(src), bs), src,
          tag));
    }
    for (Request& rq : reqs) adi_.wait(ctx, rq);
  } else {
    Request sr = adi_.isend(ctx, sendblock, root, tag);
    adi_.wait(ctx, sr);
  }
}

void Comm::scatter(sim::Context& ctx, ConstBytes sendbuf, MutBytes recvblock,
                   Rank root) {
  Timed t(profiler_, MpiFunc::kScatter, ctx);
  Tag tag = coll_tag(coll_round_++);
  const Rank n = size();
  const std::size_t bs = recvblock.size();
  if (rank() == root) {
    MPIV_CHECK(sendbuf.size() == bs * static_cast<std::size_t>(n),
               "scatter sendbuf size");
    std::memcpy(recvblock.data(),
                sendbuf.data() + bs * static_cast<std::size_t>(root), bs);
    for (Rank dest = 0; dest < n; ++dest) {
      if (dest == root) continue;
      Request sr = adi_.isend(
          ctx, sendbuf.subspan(bs * static_cast<std::size_t>(dest), bs), dest,
          tag);
      adi_.wait(ctx, sr);
    }
  } else {
    Request rr = adi_.irecv(ctx, recvblock, root, tag);
    adi_.wait(ctx, rr);
  }
}

}  // namespace mpiv::mpi
