// Abstract Device Interface: message matching and the progress engine.
//
// Sits between the MPI API (Comm) and the channel Device. Implements
// posted-receive/unexpected-message matching with tag and ANY_SOURCE
// wildcards, the short/eager/rendezvous protocols, and request completion.
// MPI's non-overtaking rule holds because each (sender, receiver) pair is a
// FIFO at the channel level and both queues are scanned in order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "mpi/device.hpp"
#include "mpi/envelope.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"

namespace mpiv::mpi {

class Adi {
 public:
  explicit Adi(Device& dev) : dev_(dev) {}

  void init(sim::Context& ctx) { dev_.init(ctx); }
  void finish(sim::Context& ctx) { dev_.finish(ctx); }

  [[nodiscard]] Rank rank() const { return dev_.rank(); }
  [[nodiscard]] Rank size() const { return dev_.size(); }
  [[nodiscard]] Device& device() { return dev_; }
  [[nodiscard]] const Device& device() const { return dev_; }

  /// Starts a send. Short/eager payloads are handed to the channel here
  /// (the request completes immediately); rendezvous sends emit an RTS and
  /// complete when the CTS is serviced by progress. The caller must keep
  /// `data` alive until the request completes.
  Request isend(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag);

  /// Posts a receive into `buf` (must outlive completion).
  Request irecv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag);

  /// Blocks until the request completes; recycles it.
  void wait(sim::Context& ctx, Request& req, Status* status = nullptr);
  /// Non-blocking completion check (runs one progress poll).
  bool test(sim::Context& ctx, Request& req, Status* status = nullptr);

  /// Blocking probe: waits for a matching incoming envelope.
  Status probe(sim::Context& ctx, Rank src, Tag tag);
  /// Non-blocking probe.
  std::optional<Status> iprobe(sim::Context& ctx, Rank src, Tag tag);

  /// Drains every packet currently available from the channel.
  void progress_poll(sim::Context& ctx);
  /// Receives (blocking) one packet and dispatches it.
  void progress_block(sim::Context& ctx);

  /// True when no operation is in flight (checkpoint precondition);
  /// unexpected messages may still be queued — they go into the image.
  [[nodiscard]] bool idle() const;

  /// Serializes matching-engine state that must survive a checkpoint:
  /// unexpected queue and sequence counters.
  void serialize(Writer& w) const;
  void restore(Reader& r);

 private:
  struct ReqState {
    bool done = false;
    bool is_recv = false;
    Status status;
    // recv: destination buffer
    std::byte* buf = nullptr;
    std::uint32_t capacity = 0;
    Rank want_src = kAnySource;
    Tag want_tag = kAnyTag;
    // rendezvous send: payload to ship on CTS
    const std::byte* send_data = nullptr;
    std::uint32_t send_size = 0;
    Rank dest = kAnySource;
    Tag tag = kAnyTag;
    std::uint64_t seq = 0;
  };

  struct Unexpected {
    Envelope env;
    Buffer payload;  // empty for RTS
  };

  void dispatch(sim::Context& ctx, Packet pkt);
  void deliver_to(sim::Context& ctx, ReqState& rs, const Envelope& env,
                  ConstBytes payload);
  /// Finds the first posted receive matching (src, tag); removes and
  /// returns its request id, or 0.
  std::uint64_t match_posted(Rank src, Tag tag);
  static bool matches(Rank want_src, Tag want_tag, Rank src, Tag tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }
  ReqState& state_of(Request req);

  Device& dev_;
  std::uint64_t next_req_ = 1;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, ReqState> reqs_;
  std::vector<std::uint64_t> posted_;            // recv request ids, post order
  std::deque<Unexpected> unexpected_;            // arrival order
  std::map<std::pair<Rank, std::uint64_t>, std::uint64_t>
      rndv_waiting_data_;                        // (src, seq) -> recv req
  std::map<std::uint64_t, std::uint64_t> rndv_pending_sends_;  // seq -> req
};

}  // namespace mpiv::mpi
