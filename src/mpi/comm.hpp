// The MPI-level API handed to applications.
//
// A thin, typed facade over the ADI plus the collective algorithms. Every
// entry point is instrumented through the Profiler so benches can decompose
// execution time per MPI function (paper Table 1 / Figure 8).
#pragma once

#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "mpi/adi.hpp"
#include "mpi/profiler.hpp"
#include "mpi/types.hpp"

namespace mpiv::mpi {

class Comm {
 public:
  explicit Comm(Device& dev) : adi_(dev) {}

  void init(sim::Context& ctx);
  void finalize(sim::Context& ctx);

  [[nodiscard]] Rank rank() const { return adi_.rank(); }
  [[nodiscard]] Rank size() const { return adi_.size(); }

  // ---- Point-to-point (byte spans) ----
  void send(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag);
  void recv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag,
            Status* status = nullptr);
  Request isend(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag);
  Request irecv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag);
  void wait(sim::Context& ctx, Request& req, Status* status = nullptr);
  void waitall(sim::Context& ctx, std::span<Request> reqs);
  bool test(sim::Context& ctx, Request& req, Status* status = nullptr);
  Status probe(sim::Context& ctx, Rank src, Tag tag);
  std::optional<Status> iprobe(sim::Context& ctx, Rank src, Tag tag);
  void sendrecv(sim::Context& ctx, ConstBytes sendbuf, Rank dest, Tag sendtag,
                MutBytes recvbuf, Rank src, Tag recvtag,
                Status* status = nullptr);

  // ---- Typed convenience wrappers ----
  template <typename T>
  void send(sim::Context& ctx, std::span<const T> data, Rank dest, Tag tag) {
    send(ctx, std::as_bytes(data), dest, tag);
  }
  template <typename T>
  void recv(sim::Context& ctx, std::span<T> buf, Rank src, Tag tag,
            Status* status = nullptr) {
    recv(ctx, std::as_writable_bytes(buf), src, tag, status);
  }
  template <typename T>
  Request isend(sim::Context& ctx, std::span<const T> data, Rank dest, Tag tag) {
    return isend(ctx, std::as_bytes(data), dest, tag);
  }
  template <typename T>
  Request irecv(sim::Context& ctx, std::span<T> buf, Rank src, Tag tag) {
    return irecv(ctx, std::as_writable_bytes(buf), src, tag);
  }
  template <typename T>
  void send_value(sim::Context& ctx, const T& v, Rank dest, Tag tag) {
    send(ctx, std::span<const T>(&v, 1), dest, tag);
  }
  template <typename T>
  T recv_value(sim::Context& ctx, Rank src, Tag tag) {
    T v{};
    recv(ctx, std::span<T>(&v, 1), src, tag);
    return v;
  }

  // ---- Collectives ----
  void barrier(sim::Context& ctx);
  void bcast(sim::Context& ctx, MutBytes data, Rank root);
  /// Element-wise reduction of doubles/int64s; recvbuf only valid at root.
  void reduce(sim::Context& ctx, std::span<const double> sendbuf,
              std::span<double> recvbuf, ReduceOp op, Rank root);
  void allreduce(sim::Context& ctx, std::span<const double> sendbuf,
                 std::span<double> recvbuf, ReduceOp op);
  double allreduce(sim::Context& ctx, double value, ReduceOp op);
  /// sendbuf holds size() blocks of block_bytes; block i goes to rank i.
  void alltoall(sim::Context& ctx, ConstBytes sendbuf, MutBytes recvbuf,
                std::size_t block_bytes);
  void allgather(sim::Context& ctx, ConstBytes sendblock, MutBytes recvbuf);
  void gather(sim::Context& ctx, ConstBytes sendblock, MutBytes recvbuf,
              Rank root);
  void scatter(sim::Context& ctx, ConstBytes sendbuf, MutBytes recvblock,
               Rank root);

  // ---- Fault-tolerance hooks ----
  /// Cheap: true if the daemon requested a checkpoint (piggybacked flag).
  [[nodiscard]] bool checkpoint_requested() const {
    return adi_.device().checkpoint_requested();
  }
  /// Ships an application+ADI image through the device. The caller must
  /// have no outstanding requests.
  void take_checkpoint(sim::Context& ctx, ConstBytes app_state);
  /// If this process is restarting from a checkpoint, returns the app-state
  /// blob saved by take_checkpoint and restores the ADI part.
  std::optional<Buffer> restore_checkpoint(sim::Context& ctx);

  [[nodiscard]] Profiler& profiler() { return profiler_; }
  [[nodiscard]] const Profiler& profiler() const { return profiler_; }
  [[nodiscard]] Adi& adi() { return adi_; }

 private:
  Adi adi_;
  Profiler profiler_;
  std::uint64_t coll_round_ = 0;  // distinguishes back-to-back collectives
};

}  // namespace mpiv::mpi
