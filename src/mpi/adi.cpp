#include "mpi/adi.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mpiv::mpi {

Adi::ReqState& Adi::state_of(Request req) {
  auto it = reqs_.find(req.id_);
  MPIV_CHECK(it != reqs_.end(), "unknown or already-recycled request");
  return it->second;
}

Request Adi::isend(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag) {
  MPIV_CHECK(dest >= 0 && dest < size(), "isend: bad destination rank");
  MPIV_CHECK(dest != rank(), "isend to self is not supported");
  std::uint64_t id = next_req_++;
  std::uint64_t seq = next_seq_++;
  ReqState rs;
  rs.is_recv = false;
  rs.dest = dest;
  rs.tag = tag;
  rs.seq = seq;

  Envelope env;
  env.src = rank();
  env.tag = tag;
  env.payload_size = static_cast<std::uint32_t>(data.size());
  env.seq = seq;

  if (data.size() > dev_.eager_threshold()) {
    // Rendezvous: RTS now, payload when the CTS comes back.
    env.kind = PacketKind::kRndvRts;
    rs.send_data = data.data();
    rs.send_size = static_cast<std::uint32_t>(data.size());
    rndv_pending_sends_[seq] = id;
    reqs_.emplace(id, rs);
    dev_.bsend(ctx, dest, make_block(env, {}));
    return Request(id);
  }

  env.kind = data.size() <= dev_.short_threshold() ? PacketKind::kShort
                                                   : PacketKind::kEager;
  rs.done = true;  // completes locally once the channel accepted the block
  reqs_.emplace(id, rs);
  dev_.bsend(ctx, dest, make_block(env, data));
  return Request(id);
}

Request Adi::irecv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag) {
  std::uint64_t id = next_req_++;
  ReqState rs;
  rs.is_recv = true;
  rs.buf = buf.data();
  rs.capacity = static_cast<std::uint32_t>(buf.size());
  rs.want_src = src;
  rs.want_tag = tag;
  reqs_.emplace(id, rs);

  // Opportunistically drain the channel so the unexpected queue is current.
  progress_poll(ctx);

  // Match against already-arrived messages first (in arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(src, tag, it->env.src, it->env.tag)) continue;
    Unexpected um = std::move(*it);
    unexpected_.erase(it);
    ReqState& state = reqs_.at(id);
    if (um.env.kind == PacketKind::kRndvRts) {
      // Clear the sender to ship the payload; complete on RndvData.
      rndv_waiting_data_[{um.env.src, um.env.seq}] = id;
      state.status = Status{um.env.src, um.env.tag, um.env.payload_size};
      Envelope cts;
      cts.kind = PacketKind::kRndvCts;
      cts.src = rank();
      cts.seq = um.env.seq;
      dev_.bsend(ctx, um.env.src, make_block(cts, {}));
    } else {
      deliver_to(ctx, state, um.env, um.payload);
    }
    return Request(id);
  }

  posted_.push_back(id);
  return Request(id);
}

void Adi::deliver_to(sim::Context& /*ctx*/, ReqState& rs, const Envelope& env,
                     ConstBytes payload) {
  MPIV_CHECK(payload.size() <= rs.capacity,
             "receive buffer too small for incoming message");
  if (!payload.empty()) std::memcpy(rs.buf, payload.data(), payload.size());
  rs.status = Status{env.src, env.tag, static_cast<std::uint32_t>(payload.size())};
  rs.done = true;
}

std::uint64_t Adi::match_posted(Rank src, Tag tag) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    ReqState& rs = reqs_.at(*it);
    if (matches(rs.want_src, rs.want_tag, src, tag)) {
      std::uint64_t id = *it;
      posted_.erase(it);
      return id;
    }
  }
  return 0;
}

void Adi::dispatch(sim::Context& ctx, Packet pkt) {
  Reader r(pkt.data);
  Envelope env = read_envelope(r);
  switch (env.kind) {
    case PacketKind::kShort:
    case PacketKind::kEager: {
      ConstBytes payload = r.rest();
      if (std::uint64_t id = match_posted(env.src, env.tag)) {
        deliver_to(ctx, reqs_.at(id), env, payload);
      } else {
        unexpected_.push_back(Unexpected{env, to_buffer(payload)});
      }
      return;
    }
    case PacketKind::kRndvRts: {
      if (std::uint64_t id = match_posted(env.src, env.tag)) {
        rndv_waiting_data_[{env.src, env.seq}] = id;
        reqs_.at(id).status = Status{env.src, env.tag, env.payload_size};
        Envelope cts;
        cts.kind = PacketKind::kRndvCts;
        cts.src = rank();
        cts.seq = env.seq;
        dev_.bsend(ctx, env.src, make_block(cts, {}));
      } else {
        unexpected_.push_back(Unexpected{env, {}});
      }
      return;
    }
    case PacketKind::kRndvCts: {
      auto it = rndv_pending_sends_.find(env.seq);
      MPIV_CHECK(it != rndv_pending_sends_.end(), "CTS for unknown send");
      std::uint64_t id = it->second;
      rndv_pending_sends_.erase(it);
      ReqState& rs = reqs_.at(id);
      Envelope data_env;
      data_env.kind = PacketKind::kRndvData;
      data_env.src = rank();
      data_env.tag = rs.tag;
      data_env.payload_size = rs.send_size;
      data_env.seq = rs.seq;
      dev_.bsend(ctx, rs.dest,
                 make_block(data_env, ConstBytes(rs.send_data, rs.send_size)));
      // Re-lookup: bsend may progress recursively and rehash reqs_.
      reqs_.at(id).done = true;
      return;
    }
    case PacketKind::kRndvData: {
      auto it = rndv_waiting_data_.find({env.src, env.seq});
      MPIV_CHECK(it != rndv_waiting_data_.end(), "data for unknown rendezvous");
      std::uint64_t id = it->second;
      rndv_waiting_data_.erase(it);
      deliver_to(ctx, reqs_.at(id), env, r.rest());
      return;
    }
  }
  throw ProtocolError("unknown packet kind");
}

void Adi::progress_poll(sim::Context& ctx) {
  while (dev_.nprobe(ctx)) dispatch(ctx, dev_.brecv(ctx));
}

void Adi::progress_block(sim::Context& ctx) {
  dispatch(ctx, dev_.brecv(ctx));
}

void Adi::wait(sim::Context& ctx, Request& req, Status* status) {
  ReqState* rs = &state_of(req);
  while (!rs->done) {
    progress_block(ctx);
    rs = &state_of(req);  // map may rehash during dispatch
  }
  if (status != nullptr) *status = rs->status;
  reqs_.erase(req.id_);
  req = Request();
}

bool Adi::test(sim::Context& ctx, Request& req, Status* status) {
  progress_poll(ctx);
  ReqState& rs = state_of(req);
  if (!rs.done) return false;
  if (status != nullptr) *status = rs.status;
  reqs_.erase(req.id_);
  req = Request();
  return true;
}

std::optional<Status> Adi::iprobe(sim::Context& ctx, Rank src, Tag tag) {
  progress_poll(ctx);
  for (const Unexpected& um : unexpected_) {
    if (matches(src, tag, um.env.src, um.env.tag)) {
      return Status{um.env.src, um.env.tag, um.env.payload_size};
    }
  }
  return std::nullopt;
}

Status Adi::probe(sim::Context& ctx, Rank src, Tag tag) {
  for (;;) {
    if (auto st = iprobe(ctx, src, tag)) return *st;
    progress_block(ctx);
  }
}

bool Adi::idle() const {
  return posted_.empty() && rndv_waiting_data_.empty() &&
         rndv_pending_sends_.empty() && reqs_.empty();
}

void Adi::serialize(Writer& w) const {
  MPIV_CHECK(idle(), "checkpoint with in-flight MPI operations");
  w.u64(next_seq_);
  w.u32(static_cast<std::uint32_t>(unexpected_.size()));
  for (const Unexpected& um : unexpected_) {
    write_envelope(w, um.env);
    w.blob(um.payload);
  }
}

void Adi::restore(Reader& r) {
  next_seq_ = r.u64();
  unexpected_.clear();
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Envelope env = read_envelope(r);
    unexpected_.push_back(Unexpected{env, r.blob()});
  }
}

}  // namespace mpiv::mpi
