// Protocol-layer packet framing (above the channel, below the ADI).
//
// Three wire protocols, as in MPICH:
//   * short:      envelope + payload in a single channel block
//   * eager:      like short (single unsolicited block) for mid-size payloads
//   * rendezvous: RTS (envelope only) -> CTS -> DATA, for large payloads
// The split point between eager and rendezvous is the device's
// eager_threshold(); the short/eager distinction only affects header
// accounting (both are one unsolicited block).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "mpi/types.hpp"

namespace mpiv::mpi {

enum class PacketKind : std::uint8_t {
  kShort = 1,
  kEager = 2,
  kRndvRts = 3,
  kRndvCts = 4,
  kRndvData = 5,
};

struct Envelope {
  PacketKind kind = PacketKind::kShort;
  Rank src = kAnySource;
  Tag tag = kAnyTag;
  std::uint32_t payload_size = 0;
  /// Per-sender sequence number; pairs RndvData with its RTS/CTS.
  std::uint64_t seq = 0;
};

inline void write_envelope(Writer& w, const Envelope& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.i32(e.src);
  w.i32(e.tag);
  w.u32(e.payload_size);
  w.u64(e.seq);
}

inline Envelope read_envelope(Reader& r) {
  Envelope e;
  e.kind = static_cast<PacketKind>(r.u8());
  e.src = r.i32();
  e.tag = r.i32();
  e.payload_size = r.u32();
  e.seq = r.u64();
  return e;
}

/// Serialized envelope size; the protocol layer's fixed per-message header.
constexpr std::uint32_t kEnvelopeBytes = 1 + 4 + 4 + 4 + 8;

/// Builds a block = envelope followed by (optional) payload bytes.
inline Buffer make_block(const Envelope& e, ConstBytes payload) {
  Writer w;
  write_envelope(w, e);
  w.raw(payload.data(), payload.size());
  return w.take();
}

}  // namespace mpiv::mpi
