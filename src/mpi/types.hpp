// MiniMPI basic types and constants.
#pragma once

#include <cstdint>

namespace mpiv::mpi {

using Rank = std::int32_t;
using Tag = std::int32_t;

constexpr Rank kAnySource = -1;
constexpr Tag kAnyTag = -1;

/// Tags at or above this value are reserved for internal use (collectives).
constexpr Tag kInternalTagBase = 1 << 24;

/// Completion information of a receive.
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::uint32_t count = 0;  // bytes received
};

/// Reduction operators for the typed collective helpers.
enum class ReduceOp { kSum, kMin, kMax, kProd };

}  // namespace mpiv::mpi
