// Nonblocking operation handles.
#pragma once

#include <cstdint>

#include "mpi/types.hpp"

namespace mpiv::mpi {

class Adi;

/// Opaque handle to a pending send/receive. Value type; copies refer to the
/// same underlying operation. Completed requests are recycled by the ADI
/// after wait/test observes completion.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Adi;
  explicit Request(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

}  // namespace mpiv::mpi
