#include "mpi/profiler.hpp"

namespace mpiv::mpi {

std::string_view mpi_func_name(MpiFunc f) {
  switch (f) {
    case MpiFunc::kSend: return "MPI_Send";
    case MpiFunc::kRecv: return "MPI_Recv";
    case MpiFunc::kIsend: return "MPI_Isend";
    case MpiFunc::kIrecv: return "MPI_Irecv";
    case MpiFunc::kWait: return "MPI_Wait";
    case MpiFunc::kWaitall: return "MPI_Waitall";
    case MpiFunc::kTest: return "MPI_Test";
    case MpiFunc::kProbe: return "MPI_Probe";
    case MpiFunc::kIprobe: return "MPI_Iprobe";
    case MpiFunc::kSendrecv: return "MPI_Sendrecv";
    case MpiFunc::kBarrier: return "MPI_Barrier";
    case MpiFunc::kBcast: return "MPI_Bcast";
    case MpiFunc::kReduce: return "MPI_Reduce";
    case MpiFunc::kAllreduce: return "MPI_Allreduce";
    case MpiFunc::kAlltoall: return "MPI_Alltoall";
    case MpiFunc::kAllgather: return "MPI_Allgather";
    case MpiFunc::kGather: return "MPI_Gather";
    case MpiFunc::kScatter: return "MPI_Scatter";
    case MpiFunc::kInit: return "MPI_Init";
    case MpiFunc::kFinalize: return "MPI_Finalize";
    case MpiFunc::kCount: break;
  }
  return "?";
}

SimDuration Profiler::total_mpi_time() const {
  SimDuration sum = 0;
  for (const Entry& e : entries_) sum += e.total;
  return sum;
}

}  // namespace mpiv::mpi
