// The channel interface — the layer MPICH-V2 replaces under MPICH.
//
// Mirrors the six primitives of the paper (§4.4): PIbsend, PIbrecv,
// PInprobe, PIfrom, PIiInit, PIiFinish, plus the runtime extensions our
// devices need (checkpoint/restart plumbing). Everything above this
// interface (protocol layer, ADI, MPI API, collectives) is shared verbatim
// between the P4, V1 and V2 devices — "we only replace the P4 driver".
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "mpi/types.hpp"
#include "sim/process.hpp"

namespace mpiv::mpi {

/// A block received from the channel: opaque bytes plus the sending rank
/// (the PIfrom information).
struct Packet {
  Rank from = kAnySource;
  Buffer data;
};

/// Device-side payload copy accounting (the app-process half of the
/// datapath; daemons keep their own DaemonStats). Benches divide
/// bytes_copied by traffic to report copies-per-message.
struct CopyCounters {
  std::uint64_t blocks_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t payload_copies = 0;  // whole-payload memcpy passes
  std::uint64_t bytes_copied = 0;
  std::uint64_t ckpt_bytes_captured = 0;  // app image bytes handed to daemon
  std::uint64_t ckpt_cow_bytes = 0;       // of those, dirty bytes memcpy'd
};

class Device {
 public:
  virtual ~Device() = default;

  /// PIiInit: connect to peers/services; blocks until the job is ready.
  virtual void init(sim::Context& ctx) = 0;
  /// PIiFinish: flush and tear down.
  virtual void finish(sim::Context& ctx) = 0;

  /// PIbsend: blocking send of one block to `dest`.
  virtual void bsend(sim::Context& ctx, Rank dest, Buffer block) = 0;
  /// PIbrecv: blocking receive of the next incoming block (any source).
  virtual Packet brecv(sim::Context& ctx) = 0;
  /// PInprobe: is a block pending?
  virtual bool nprobe(sim::Context& ctx) = 0;

  [[nodiscard]] virtual Rank rank() const = 0;
  [[nodiscard]] virtual Rank size() const = 0;

  /// Payload size (bytes) above which the protocol layer switches from the
  /// eager to the rendezvous protocol.
  [[nodiscard]] virtual std::uint32_t eager_threshold() const {
    return 64 * 1024;
  }
  /// Payload size up to which the short protocol (single block) is used.
  [[nodiscard]] virtual std::uint32_t short_threshold() const { return 1024; }

  // ---- Fault-tolerance extensions (no-ops on devices without FT). ----

  /// True when the daemon asked for a checkpoint; the MPI layer polls this
  /// at application checkpoint points (piggybacked flag: costs nothing).
  [[nodiscard]] virtual bool checkpoint_requested() const { return false; }
  /// Ships a checkpoint image (app + ADI state) to the daemon.
  virtual void send_checkpoint(sim::Context& /*ctx*/, Buffer /*image*/) {}
  /// Image to restore from, when this process is a restart. Consumed once.
  virtual std::optional<Buffer> take_restart_image(sim::Context& /*ctx*/) {
    return std::nullopt;
  }

  [[nodiscard]] const CopyCounters& copy_counters() const { return copies_; }

 protected:
  CopyCounters copies_;
};

}  // namespace mpiv::mpi
