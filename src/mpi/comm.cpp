#include "mpi/comm.hpp"

#include "common/error.hpp"

namespace mpiv::mpi {

namespace {
/// Profiler scope helper: measures from construction to explicit end.
struct Timed {
  Profiler::Scope scope;
  sim::Context& ctx;
  Timed(Profiler& p, MpiFunc f, sim::Context& c) : scope(p, f, c.now()), ctx(c) {}
  ~Timed() { scope.finish(ctx.now()); }
};
}  // namespace

void Comm::init(sim::Context& ctx) {
  Timed t(profiler_, MpiFunc::kInit, ctx);
  adi_.init(ctx);
}

void Comm::finalize(sim::Context& ctx) {
  Timed t(profiler_, MpiFunc::kFinalize, ctx);
  adi_.finish(ctx);
  profiler_.set_copies(adi_.device().copy_counters());
}

void Comm::send(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag) {
  Timed t(profiler_, MpiFunc::kSend, ctx);
  Request r = adi_.isend(ctx, data, dest, tag);
  adi_.wait(ctx, r);
}

void Comm::recv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag,
                Status* status) {
  Timed t(profiler_, MpiFunc::kRecv, ctx);
  Request r = adi_.irecv(ctx, buf, src, tag);
  adi_.wait(ctx, r, status);
}

Request Comm::isend(sim::Context& ctx, ConstBytes data, Rank dest, Tag tag) {
  Timed t(profiler_, MpiFunc::kIsend, ctx);
  return adi_.isend(ctx, data, dest, tag);
}

Request Comm::irecv(sim::Context& ctx, MutBytes buf, Rank src, Tag tag) {
  Timed t(profiler_, MpiFunc::kIrecv, ctx);
  return adi_.irecv(ctx, buf, src, tag);
}

void Comm::wait(sim::Context& ctx, Request& req, Status* status) {
  Timed t(profiler_, MpiFunc::kWait, ctx);
  adi_.wait(ctx, req, status);
}

void Comm::waitall(sim::Context& ctx, std::span<Request> reqs) {
  Timed t(profiler_, MpiFunc::kWaitall, ctx);
  for (Request& r : reqs) {
    if (r.valid()) adi_.wait(ctx, r);
  }
}

bool Comm::test(sim::Context& ctx, Request& req, Status* status) {
  Timed t(profiler_, MpiFunc::kTest, ctx);
  return adi_.test(ctx, req, status);
}

Status Comm::probe(sim::Context& ctx, Rank src, Tag tag) {
  Timed t(profiler_, MpiFunc::kProbe, ctx);
  return adi_.probe(ctx, src, tag);
}

std::optional<Status> Comm::iprobe(sim::Context& ctx, Rank src, Tag tag) {
  Timed t(profiler_, MpiFunc::kIprobe, ctx);
  return adi_.iprobe(ctx, src, tag);
}

void Comm::sendrecv(sim::Context& ctx, ConstBytes sendbuf, Rank dest,
                    Tag sendtag, MutBytes recvbuf, Rank src, Tag recvtag,
                    Status* status) {
  Timed t(profiler_, MpiFunc::kSendrecv, ctx);
  Request rr = adi_.irecv(ctx, recvbuf, src, recvtag);
  Request sr = adi_.isend(ctx, sendbuf, dest, sendtag);
  adi_.wait(ctx, sr);
  adi_.wait(ctx, rr, status);
}

void Comm::take_checkpoint(sim::Context& ctx, ConstBytes app_state) {
  MPIV_CHECK(adi_.idle(), "take_checkpoint with outstanding requests");
  Writer w;
  w.u64(coll_round_);
  adi_.serialize(w);
  w.blob(app_state);
  adi_.device().send_checkpoint(ctx, w.take());
}

std::optional<Buffer> Comm::restore_checkpoint(sim::Context& ctx) {
  std::optional<Buffer> image = adi_.device().take_restart_image(ctx);
  if (!image) return std::nullopt;
  Reader r(*image);
  coll_round_ = r.u64();
  adi_.restore(r);
  return r.blob();
}

}  // namespace mpiv::mpi
