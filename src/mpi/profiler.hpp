// Per-process accounting of virtual time spent inside MPI calls.
//
// Used to regenerate the paper's Table 1 (time inside MPI_(I)send /
// MPI_Irecv / MPI_Wait) and Figure 8 (compute vs communication breakdown:
// compute = wall - sum of MPI time). Nested calls (collectives built on
// point-to-point) are attributed to the outermost function only.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/units.hpp"
#include "mpi/device.hpp"

namespace mpiv::mpi {

enum class MpiFunc : int {
  kSend = 0,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kWaitall,
  kTest,
  kProbe,
  kIprobe,
  kSendrecv,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kGather,
  kScatter,
  kInit,
  kFinalize,
  kCount
};

std::string_view mpi_func_name(MpiFunc f);

class Profiler {
 public:
  struct Entry {
    SimDuration total = 0;
    std::uint64_t calls = 0;
  };

  [[nodiscard]] const Entry& entry(MpiFunc f) const {
    return entries_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] SimDuration total(MpiFunc f) const { return entry(f).total; }
  /// Sum over all MPI functions — the "communication time" of Figure 8.
  [[nodiscard]] SimDuration total_mpi_time() const;

  /// Device-side payload copy accounting, snapshotted at MPI_Finalize so
  /// benches can report copies-per-message alongside the time breakdown.
  [[nodiscard]] const CopyCounters& copies() const { return copies_; }
  void set_copies(const CopyCounters& c) { copies_ = c; }

  void reset() { *this = Profiler{}; }

  /// RAII guard measuring one call; only the outermost nesting level records.
  class Scope {
   public:
    Scope(Profiler& p, MpiFunc f, SimTime now) : p_(p), f_(f), start_(now) {
      outermost_ = (p_.depth_++ == 0);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    /// Must be called with the end time before destruction.
    void finish(SimTime now) {
      --p_.depth_;
      if (outermost_ && !finished_) {
        auto& e = p_.entries_[static_cast<std::size_t>(f_)];
        e.total += now - start_;
        e.calls += 1;
      }
      finished_ = true;
    }
    ~Scope() {
      // finish() not called => the call unwound (kill); drop the sample but
      // fix the depth.
      if (!finished_) --p_.depth_;
    }

   private:
    Profiler& p_;
    MpiFunc f_;
    SimTime start_;
    bool outermost_ = false;
    bool finished_ = false;
  };

 private:
  std::array<Entry, static_cast<std::size_t>(MpiFunc::kCount)> entries_{};
  CopyCounters copies_{};
  int depth_ = 0;
};

}  // namespace mpiv::mpi
