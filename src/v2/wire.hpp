// Wire and pipe message formats of the MPICH-V2 runtime.
//
// Five conversations, all length-framed Buffers with a leading type byte:
//   app <-> daemon (local pipe), daemon <-> daemon, daemon <-> event logger,
//   daemon <-> checkpoint server, daemon <-> dispatcher / checkpoint
//   scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "mpi/types.hpp"

namespace mpiv::v2 {

using Clock = std::int64_t;  // a process' logical clock value

/// Event logged on the Event Logger. Deliveries carry the paper's
/// dependency information (sender id; sender clock at emission; receiver
/// clock at delivery; number of probes since last delivery). Probe-batch
/// events make failed probes durable *before a subsequent send*: §4.5's
/// bundling of probe counts into the next reception is only sound when no
/// send intervenes — the appendix protocol logs every nondeterministic
/// action, and so do we, lazily (at most one batch per send).
struct ReceptionEvent {
  enum class Kind : std::uint8_t { kDelivery = 0, kProbeBatch = 1 };
  Kind kind = Kind::kDelivery;
  mpi::Rank sender = -1;
  Clock send_clock = 0;
  /// Delivery clock; probe batches are stamped with the *upcoming*
  /// delivery clock so checkpoint-based pruning/filtering keeps them.
  Clock recv_clock = 0;
  /// Deliveries: failed probes since the previous delivery. Probe batches:
  /// the cumulative failed-probe count being made durable.
  std::uint32_t nprobes = 0;
};

inline void write_event(Writer& w, const ReceptionEvent& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.i32(e.sender);
  w.i64(e.send_clock);
  w.i64(e.recv_clock);
  w.u32(e.nprobes);
}

inline ReceptionEvent read_event(Reader& r) {
  ReceptionEvent e;
  e.kind = static_cast<ReceptionEvent::Kind>(r.u8());
  e.sender = r.i32();
  e.send_clock = r.i64();
  e.recv_clock = r.i64();
  e.nprobes = r.u32();
  return e;
}

// ---------------------------------------------------------------- pipe

enum class PipeMsg : std::uint8_t {
  // app -> daemon
  kInit = 1,
  kFinish,
  kBsend,       // {dest, block}
  kBrecv,       // {}
  kNprobe,      // {}
  kCkptImage,   // {blob}  (reply to a checkpoint request)
  kGetImage,    // {}      (restart: fetch app image from checkpoint)
  // daemon -> app  (all carry the piggybacked ckpt_requested flag)
  kInitOk,      // {rank, size}
  kFinishOk,
  kBsendOk,
  kDeliver,     // {from, block}
  kProbeR,      // {pending}
  kCkptOk,
  kImageR,      // {found, blob}
};

struct PipeHeader {
  PipeMsg type;
  bool ckpt_requested = false;  // daemon -> app piggyback
};

inline Writer pipe_writer(PipeMsg type, bool ckpt_requested = false) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.boolean(ckpt_requested);
  return w;
}

inline PipeHeader read_pipe_header(Reader& r) {
  PipeHeader h;
  h.type = static_cast<PipeMsg>(r.u8());
  h.ckpt_requested = r.boolean();
  return h;
}

// ---------------------------------------------------------------- daemon <-> daemon

enum class PeerMsg : std::uint8_t {
  kHello = 1,    // {rank, incarnation}
  kMsgPart,      // {last, bytes...} — chunk of a serialized MsgRecord
  kRestart1,     // {hr}  "resend everything you sent me after clock hr"
  kRestart2,     // {hr}  "I have your sends up to clock hr"
  kCkptNotify,   // {hr}  "I checkpointed; your sends up to hr are stable"
  kResendDone,   // {clock} closes a Restart1-triggered resend pass: every
                 // send at or below {clock} has now been (re)transmitted,
                 // so the receiver's completeness watermark may advance
  kResendBatch,  // {n, n x {clock, len}, payloads...} — several whole SAVED
                 // records shipped as one scatter-gather frame during a
                 // resend pass (backlog ships in O(frames), not O(messages));
                 // never chunked: a batch is capped at one wire chunk
};

/// Per-record overhead inside a kResendBatch frame: [i64 clock][u32 len].
constexpr std::size_t kResendRecordHeaderBytes = 12;

/// Payload-carrying message between daemons (assembled from kMsgPart
/// chunks): the sender's clock at emission plus the opaque channel block.
/// The block is a ref-counted slice, so a record can alias the sender log,
/// an in-flight TX frame and a reassembled RX buffer without copying.
struct MsgRecord {
  Clock send_clock = 0;
  SharedBuffer block;
};

/// Encoded record layout: [i64 send_clock][u32 len][payload]. The TX path
/// never materializes this — it sends the 12-byte header and the payload
/// slice with a scatter-gather Conn::send.
constexpr std::size_t kMsgRecordHeaderBytes = 12;

inline Buffer encode_msg_record_header(Clock send_clock, std::size_t len) {
  Writer w;
  w.i64(send_clock);
  w.u32(static_cast<std::uint32_t>(len));
  return w.take();
}

/// Full materialization (tests and benches only; the daemon datapath sends
/// header + payload slice without assembling them).
inline Buffer encode_msg_record(const MsgRecord& m) {
  Writer w(encode_msg_record_header(m.send_clock, m.block.size()));
  w.raw(m.block.data(), m.block.size());
  return w.take();
}

/// Zero-copy decode: the returned record's block is a slice of `bytes`.
inline MsgRecord decode_msg_record(const SharedBuffer& bytes) {
  Reader r(bytes.view());
  MsgRecord m;
  m.send_clock = r.i64();
  m.block = bytes.slice_of(r.blob_view());
  return m;
}

// ---------------------------------------------------------------- daemon <-> event logger

// Each daemon replicates its reception events to a group of 2f+1 event
// loggers. Appends carry a per-(rank, incarnation) sequence number and are
// acked cumulatively (TCP-style), so the WAITLOGGED gate can count an event
// as logged exactly when a majority of replicas hold it. A replica that
// reboots (volatile store) or reconnects resyncs via kQuery/kQueryR and the
// daemon retransmits the missing tail from its own in-memory copy.
enum class ElMsg : std::uint8_t {
  kHello = 1,   // {rank, incarnation}
  kAppend,      // {first_seq, resync, n, events...}; `resync` permits a
                // forward seq gap (history pruned below a stable checkpoint)
  kAck,         // {next_seq} cumulative: events [0, next_seq) of the conn's
                // incarnation are held (pruned gaps count as held)
  kDownload,    // {after_clock}
  kEvents,      // {events...}
  kPrune,       // {upto_recv_clock}
  kQuery,       // {} -> kQueryR: how far are you for my incarnation?
  kQueryR,      // {next_seq}; 0 when the store holds a different incarnation
};

/// Majority of an EL replica group: f+1 of 2f+1 (1 of 1 degenerates to the
/// unreplicated protocol).
constexpr std::size_t el_quorum(std::size_t replicas) {
  return replicas / 2 + 1;
}

/// Restart-merge order over reception events: receiver-clock order, with
/// probe batches ahead of the delivery that shares their (upcoming) clock.
/// Several batches may share one upcoming clock — one per send issued
/// between two deliveries — each making a strictly larger cumulative probe
/// count durable, so within the clock they are ordered by nprobes.
inline bool event_before(const ReceptionEvent& a, const ReceptionEvent& b) {
  if (a.recv_clock != b.recv_clock) return a.recv_clock < b.recv_clock;
  if (a.kind != b.kind) {
    return a.kind == ReceptionEvent::Kind::kProbeBatch;
  }
  return a.kind == ReceptionEvent::Kind::kProbeBatch && a.nprobes < b.nprobes;
}

inline bool event_equal(const ReceptionEvent& a, const ReceptionEvent& b) {
  return a.kind == b.kind && a.sender == b.sender &&
         a.send_clock == b.send_clock && a.recv_clock == b.recv_clock &&
         a.nprobes == b.nprobes;
}

/// Merges per-replica event lists downloaded on restart: the union of the
/// lists in receiver-clock order, exact duplicates collapsed. Because every
/// quorum-acked event is held by f+1 replicas and at most f replicas are
/// lost, the union over the reachable replicas covers the entire
/// quorum-acked prefix. Conflicting events at the same ordering key (stale
/// suffixes from a previous incarnation) are resolved by majority vote with
/// a deterministic tie-break.
inline std::vector<ReceptionEvent> merge_event_logs(
    const std::vector<std::vector<ReceptionEvent>>& replica_logs) {
  std::vector<ReceptionEvent> all;
  for (const auto& log : replica_logs) all.insert(all.end(), log.begin(), log.end());
  std::stable_sort(all.begin(), all.end(), event_before);
  auto tie_less = [](const ReceptionEvent& a, const ReceptionEvent& b) {
    if (a.sender != b.sender) return a.sender < b.sender;
    if (a.send_clock != b.send_clock) return a.send_clock < b.send_clock;
    return a.nprobes < b.nprobes;
  };
  std::vector<ReceptionEvent> out;
  std::size_t i = 0;
  while (i < all.size()) {
    // [i, j) share the ordering key (same clock and kind): an equivalence
    // class holds one copy per replica that logged this slot.
    std::size_t j = i + 1;
    while (j < all.size() && !event_before(all[i], all[j])) ++j;
    std::size_t best = i, best_votes = 0;
    for (std::size_t k = i; k < j; ++k) {
      std::size_t votes = 0;
      for (std::size_t l = i; l < j; ++l) votes += event_equal(all[k], all[l]);
      if (votes > best_votes ||
          (votes == best_votes && tie_less(all[k], all[best]))) {
        best = k;
        best_votes = votes;
      }
    }
    out.push_back(all[best]);
    i = j;
  }
  return out;
}

// ---------------------------------------------------------------- daemon <-> checkpoint server

enum class CsMsg : std::uint8_t {
  // Legacy full-image path (kept for the A/B ablation and raw-wire tests).
  kStoreBegin = 1,  // {rank, ckpt_seq, total_bytes}
  kStoreChunk,      // {bytes}
  kStoreEnd,        // {}
  kStoreOk,         // {ckpt_seq}  (also acknowledges kDeltaEnd)
  kFetch,           // {rank}
  kImage,           // {found, ckpt_seq, blob}
  // Incremental (chunked-delta) path. The chunk table — per-chunk content
  // hashes of the whole image — is replicated to every stripe server;
  // chunk *data* goes only to the owning stripe (hash % stripe_count) and
  // only when the content differs from the last stable image.
  kDeltaBegin,      // {rank, chunk_table}
  kDeltaChunk,      // {ckpt_seq, index, bytes...}
  kDeltaEnd,        // {ckpt_seq}
  kChunkQuery,      // {rank}  restart: which tables do you hold for me?
  kChunkInfo,       // {n, n x {chunk_table, owned_complete}}
  kFetchChunk,      // {rank, ckpt_seq, index}
  kChunk,           // {index, found, blob}
};

/// Per-image chunk table: the metadata every stripe server replicates.
/// hashes[i] covers image bytes [i*chunk_size, min((i+1)*chunk_size, total));
/// chunk i lives on stripe server hashes[i] % stripe_count.
struct ChunkTable {
  std::uint64_t ckpt_seq = 0;
  std::uint32_t chunk_size = 0;
  std::uint64_t total_bytes = 0;
  std::vector<std::uint64_t> hashes;

  [[nodiscard]] std::size_t owner_of(std::size_t index,
                                     std::size_t stripe_count) const {
    return static_cast<std::size_t>(hashes[index] %
                                    static_cast<std::uint64_t>(stripe_count));
  }
};

inline void write_chunk_table(Writer& w, const ChunkTable& t) {
  w.u64(t.ckpt_seq);
  w.u32(t.chunk_size);
  w.u64(t.total_bytes);
  w.u32(static_cast<std::uint32_t>(t.hashes.size()));
  for (std::uint64_t h : t.hashes) w.u64(h);
}

inline ChunkTable read_chunk_table(Reader& r) {
  ChunkTable t;
  t.ckpt_seq = r.u64();
  t.chunk_size = r.u32();
  t.total_bytes = r.u64();
  std::uint32_t n = r.u32();
  t.hashes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) t.hashes.push_back(r.u64());
  return t;
}

// ---------------------------------------------------------------- daemon <-> dispatcher & scheduler

enum class CtlMsg : std::uint8_t {
  kRegister = 1,   // daemon -> dispatcher {rank, incarnation}
  kDone,           // daemon -> dispatcher {rank}  (app called finalize)
  kShutdown,       // dispatcher -> daemon
  kStatusReq,      // scheduler -> daemon
  kStatus,         // daemon -> scheduler {rank, saved_bytes, sent_bytes, recv_bytes, sent_msgs, recv_msgs}
  kCkptOrder,      // scheduler -> daemon
  kCkptDone,       // daemon -> scheduler {rank, ckpt_seq}
  kWhereIs,        // daemon -> dispatcher {rank}: current address of a peer
  kAddr,           // dispatcher -> daemon {rank, node, port}
};

/// Daemon status snapshot reported to the checkpoint scheduler.
struct DaemonStatus {
  mpi::Rank rank = -1;
  std::uint64_t saved_bytes = 0;   // sender-log occupancy
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t sent_msgs = 0;
  std::uint64_t recv_msgs = 0;
};

inline void write_status(Writer& w, const DaemonStatus& s) {
  w.i32(s.rank);
  w.u64(s.saved_bytes);
  w.u64(s.sent_bytes);
  w.u64(s.recv_bytes);
  w.u64(s.sent_msgs);
  w.u64(s.recv_msgs);
}

inline DaemonStatus read_status(Reader& r) {
  DaemonStatus s;
  s.rank = r.i32();
  s.saved_bytes = r.u64();
  s.sent_bytes = r.u64();
  s.recv_bytes = r.u64();
  s.sent_msgs = r.u64();
  s.recv_msgs = r.u64();
  return s;
}

/// Well-known ports.
constexpr std::int32_t kDaemonPortBase = 6000;  // + rank
constexpr std::int32_t kEventLoggerPort = 7001;
constexpr std::int32_t kCkptServerPort = 7002;
constexpr std::int32_t kSchedulerPort = 7003;
constexpr std::int32_t kDispatcherPort = 7004;
constexpr std::int32_t kChannelMemoryPort = 7100;  // + cm index (MPICH-V1)

}  // namespace mpiv::v2
