// The MPICH-V2 communication daemon (§4.4–4.6).
//
// One daemon runs beside each MPI process (same node, connected by a local
// pipe) and owns all of the fault-tolerance protocol:
//   * logical clock H, advanced on every send and delivery event;
//   * the sender log (SAVED): a copy of every emitted block, with clock;
//   * reception-event logging to the Event Logger, with the WAITLOGGED
//     gate: no block leaves this node while a reception event is unacked;
//   * replay after restart: download events, RESTART1/RESTART2 handshake,
//     re-deliveries forced into logged order, duplicate suppression via the
//     HS/HR clock vectors, forced probe-count replay;
//   * checkpointing: quiesced app+ADI image plus the daemon's own state
//     (clocks, SAVED, undelivered arrivals) streamed in chunks to the
//     checkpoint server; completion notifications drive garbage collection
//     of peers' sender logs and of the event log.
//
// The main loop is a select loop (pipe + network + timers) that transmits
// payloads in chunks so receive traffic interleaves with sends — the
// full-duplex behaviour the paper credits for V2's advantage on
// non-blocking workloads.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "net/pipe.hpp"
#include "trace/trace.hpp"
#include "v2/sender_log.hpp"
#include "v2/wire.hpp"

namespace mpiv {
class CounterRegistry;
}

namespace mpiv::v2 {

struct DaemonConfig {
  mpi::Rank rank = 0;
  mpi::Rank size = 1;
  int incarnation = 0;
  net::NodeId node = net::kNoNode;
  /// Current daemon address of each rank (kDaemonPortBase + rank on its node).
  std::vector<net::Address> peer_addrs;
  /// Event-logger replica group (2f+1 replicas; at least one). Every
  /// reception event is appended to all of them; the WAITLOGGED gate counts
  /// an event as logged once a majority acked it, so up to f replicas may
  /// be down at any time.
  std::vector<net::Address> event_loggers;
  /// Stripe set of checkpoint servers (optional; may be empty). Chunk i of
  /// an image lives on server hashes[i] % ckpt_servers.size().
  std::vector<net::Address> ckpt_servers;
  net::Address scheduler{net::kNoNode, 0};        // optional
  net::Address dispatcher{net::kNoNode, 0};       // optional
  SimDuration peer_retry = milliseconds(20);
  SimDuration connect_timeout = seconds(30);
  /// Per-replica connect budget for event loggers: how long one connect
  /// attempt retries before the replica is declared down and left to the
  /// backoff reconnect path. Setup only requires a quorum to be up.
  SimDuration el_connect_budget = milliseconds(100);
  /// Base delay of the exponential reconnect backoff toward a dead
  /// event-logger replica (doubles per failure, capped at 64x).
  SimDuration el_retry = milliseconds(10);
  /// Connect budget for the *optional* services (checkpoint servers,
  /// scheduler): how long setup stalls trying to reach them before running
  /// without. Kept short by default; fault benches raise it to model slow
  /// checkpoint-server links.
  SimDuration optional_connect_budget = milliseconds(100);
  /// ABLATION ONLY: disable the WAITLOGGED gate (transmit before the event
  /// logger acknowledged pending reception events). Breaks the pessimistic
  /// property — a crash may then lose un-logged-but-observed receptions —
  /// but isolates the gate's latency cost in benchmarks.
  bool gate_sends = true;
  /// ABLATION ONLY: emulate the pre-zero-copy datapath for A/B comparison.
  /// Charges (and counts) the copies the old path performed — pipe blob
  /// decode on bsend, MsgRecord encode on enqueue, unconditional RX
  /// reassembly, deliver-time pipe blob — and flushes one event-logger
  /// append per delivery instead of coalescing.
  bool legacy_datapath = false;
  /// ABLATION ONLY: full-image checkpoint datapath for A/B comparison —
  /// blocking capture (the app waits for kCkptOk) and whole-image uploads
  /// to stripe 0 via kStoreBegin/kStoreChunk/kStoreEnd. The default is the
  /// incremental path: non-blocking capture, chunked delta upload striped
  /// across all checkpoint servers. Must match V2Device::blocking_ckpt.
  bool full_image_ckpt = false;
  /// ABLATION ONLY: serialize the restart datapath (image fetch, then event
  /// download, then the Restart1 fan-out, each run to completion before the
  /// next starts) for A/B benchmarking of the overlapped recovery fast
  /// path. The default overlaps all three from setup, joining only where
  /// the protocol requires it. Implied by full_image_ckpt (the legacy fetch
  /// has no chunk structure to overlap).
  bool serial_restart = false;
  /// Causal trace recorder for this rank (owned by the job's TraceBook;
  /// shared across incarnations). Null = no tracing.
  trace::TraceRecorder* trace = nullptr;
  /// TEST ONLY: deliberately violate one protocol invariant so the offline
  /// auditor's checks can be validated against a known-bad run.
  trace::Mutation trace_mutation = trace::Mutation::kNone;
};

/// Counters exposed to tests and benches.
struct DaemonStats {
  std::uint64_t sent_msgs = 0;
  std::uint64_t recv_msgs = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_bytes = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t replayed_deliveries = 0;
  std::uint64_t events_logged = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t gc_pruned_entries = 0;
  /// Re-sends suppressed by the HS clock bound (receiver already has them).
  std::uint64_t suppressed_sends = 0;
  /// Payload bytes memcpy'd by this daemon (TX gather, RX reassembly,
  /// legacy-emulation passes). Each byte is also charged virtual time at
  /// NetParams::memcpy_bandwidth_bps.
  std::uint64_t bytes_copied = 0;
  /// Whole-payload copy passes on the send path (steady-state zero-copy
  /// target: 1 per message — the wire scatter-gather assembly).
  std::uint64_t payload_copies_tx = 0;
  /// Whole-payload copy passes on the receive path (0 for single-chunk
  /// messages, 1 for multi-chunk reassembly).
  std::uint64_t payload_copies_rx = 0;
  /// kAppend batches flushed to the replica group (coalescing makes this
  /// less than events_logged under batching workloads; one batch fans out
  /// to every connected replica).
  std::uint64_t el_appends = 0;
  /// TX frames that blocked on the WAITLOGGED quorum gate at least once
  /// (the quorum of replicas had not yet acked the frame's events).
  std::uint64_t el_quorum_waits = 0;
  /// Reconnect attempts toward event-logger replicas that were down or
  /// whose connection died (includes failed setup attempts).
  std::uint64_t el_replica_retries = 0;
  /// Per-replica maximum append backlog observed (events appended locally
  /// but not yet acked by that replica) — the lag a replica's loss would
  /// cost if the quorum shrank to it.
  std::vector<std::uint64_t> el_replica_max_lag;
  /// Checkpoint payload bytes actually uploaded to the stripe servers.
  std::uint64_t ckpt_bytes_sent = 0;
  /// Checkpoint bytes *not* uploaded because the chunk matched the last
  /// stable image (the delta datapath's dedup win).
  std::uint64_t ckpt_bytes_deduped = 0;
  /// Restart image fetch: bytes pulled from the stripe servers and the
  /// virtual time the striped fetch took.
  std::uint64_t ckpt_fetch_bytes = 0;
  std::uint64_t ckpt_fetch_ns = 0;
  /// Payload bytes re-delivered to the app from the replay plan (with
  /// restart_replay_ns this is the replay throughput).
  std::uint64_t replayed_bytes = 0;
  /// Batched resend frames shipped (kResendBatch) and the SAVED records
  /// they carried; records too large to share a frame still go chunked.
  std::uint64_t resend_batches = 0;
  std::uint64_t resend_batched_msgs = 0;
  /// Recovery fast-path latencies, restarted incarnations only (merged by
  /// max, so job-level values describe the slowest restarted rank):
  /// time-to-first-send — spawn until the first frame left for a peer.
  std::uint64_t restart_ttfs_ns = 0;
  /// Event download issue until the quorum merge adopted the replay plan.
  std::uint64_t restart_download_ns = 0;
  /// Plan adoption until the last logged re-delivery drained.
  std::uint64_t restart_replay_ns = 0;
  /// Spawn until the replay drained — the recovery latency the restart
  /// bench A/Bs (overlapped vs serial_restart).
  std::uint64_t restart_recover_ns = 0;

  /// All counters as a named registry (el_replica_max_lag entries merge by
  /// max, everything else by sum) — the single aggregation path used by
  /// JobResult and the benches.
  [[nodiscard]] CounterRegistry registry() const;
  /// Inverse of registry(): rebuilds the struct from merged counters.
  static DaemonStats from_registry(const CounterRegistry& reg);
};

class Daemon {
 public:
  Daemon(net::Network& net, net::Pipe& pipe, DaemonConfig config);

  /// Fiber body. Returns after a dispatcher Shutdown (or unwinds on kill).
  void run(sim::Context& ctx);

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] Clock send_clock() const { return send_clock_; }
  [[nodiscard]] Clock recv_clock() const { return recv_clock_; }
  [[nodiscard]] const SenderLog& sender_log() const { return saved_; }
  [[nodiscard]] bool finished() const { return shutdown_; }

 private:
  // An arrived-but-undelivered message (normal mode keeps them in arrival
  // order; replay mode keeps them as a stash searched by (sender, clock)).
  // The block aliases the RX buffer / sender's record — never a copy.
  struct Arrival {
    mpi::Rank from = -1;
    Clock send_clock = 0;
    SharedBuffer block;
  };

  // One frame queued toward a peer. Payload messages are chunked on the
  // wire; control frames go out whole. Frames to one peer stay FIFO.
  // Payload frames never materialize the encoded MsgRecord: `head` is the
  // 12-byte record header and `payload` aliases the same allocation held
  // by SAVED (and originally handed over by the app), so queueing a send
  // costs zero payload copies.
  struct OutFrame {
    bool is_msg = false;   // chunked MsgRecord vs. single control frame
    Buffer head;           // control frame, or encoded MsgRecord header
    SharedBuffer payload;  // record payload slice (is_msg only)
    std::size_t offset = 0;  // chunking progress over head+payload (is_msg)
    // WAITLOGGED: number of reception events that existed when this send
    // was issued; the frame may not leave the node until a quorum of the
    // event-logger replicas acknowledged that many. Events created *after*
    // the send action do not gate it (they are not causal predecessors).
    std::uint64_t required_events = 0;
    // Issued while our own restart's event download was still unmerged:
    // required_events is unknowable until the merged history is adopted
    // (its length *is* the causal-predecessor count), so the frame holds
    // and the merge patches it.
    bool gate_pending_merge = false;
    bool quorum_wait_counted = false;  // el_quorum_waits charged once/frame
    Clock clock = 0;                   // send clock of the record (is_msg)
    // Batched resend (kResendBatch): `head` holds the encoded batch header
    // and each record payload rides as a shared slice, gathered into one
    // wire frame at transmit. is_msg stays true so the WAITLOGGED gate and
    // the Restart1 unstarted-frame drop treat the batch like the records
    // it carries; `clock` is the highest clock in the batch.
    std::vector<SharedBuffer> batch;
    std::vector<Clock> batch_clocks;

    [[nodiscard]] bool is_batch() const { return !batch.empty(); }
    [[nodiscard]] std::size_t total_size() const {
      return head.size() + payload.size();
    }
  };

  struct PendingCkpt {
    std::uint64_t seq = 0;
    SharedBuffer image;
    Clock h_at_ckpt = 0;
    std::vector<Clock> hr_at_ckpt;
    // Legacy full-image upload progress (stripe 0 only).
    std::size_t offset = 0;
    bool begun = false;
    bool done_sent = false;
    // Delta upload: per-chunk hashes of `image`, and per stripe server the
    // dirty chunks it owns plus the begin/chunks/end/ack progress. Chunk
    // frames alias `image` via SharedBuffer slices — no staging copies.
    std::vector<std::uint64_t> hashes;
    std::vector<std::vector<std::uint32_t>> chunks_for;
    std::vector<std::size_t> next_chunk;
    std::vector<std::uint8_t> begun_s;
    std::vector<std::uint8_t> end_sent_s;
    std::vector<std::uint8_t> acked_s;
    std::uint32_t acks = 0;
  };

  // Checkpoint image geometry. The image is laid out
  //   [app bytes][bulk: SAVED + arrivals][scalars][u64 bulk][u64 app]
  // — app first so chunk-delta dedup keeps its alignment, the scalar
  // section (clocks, HS/HR, seq, probe counters) *last* so a restarting
  // daemon can adopt its watermarks from the image suffix (roughly one
  // tail chunk) long before the bulk finished downloading.
  struct ImageLayout {
    std::size_t app_size = 0;
    std::size_t bulk_size = 0;
    [[nodiscard]] std::size_t scalars_begin() const {
      return app_size + bulk_size;
    }
  };
  static constexpr std::size_t kImageTrailerBytes = 16;

  // Overlapped restart bookkeeping (incarnation > 0 on the default path):
  // the striped image fetch, the EL event download and the Restart1
  // fan-out all run concurrently from the main loop; this struct tracks
  // their progress and the two join points (scalars -> fan-out + download;
  // bulk + merge -> replay).
  struct Restart {
    enum class Fetch : std::uint8_t {
      kQuery,   // kChunkQuery fan-out in flight
      kChunks,  // kFetchChunk pipeline in flight
      kDone,    // image assembled, or scratch restart decided
    };
    Fetch fetch = Fetch::kQuery;
    SimTime fetch_t0 = 0;
    // Query phase: one kChunkQuery per live stripe.
    std::vector<bool> query_pending;
    std::size_t queries_left = 0;
    std::map<std::uint64_t, ChunkTable> metas;
    std::map<std::uint64_t, std::vector<bool>> ready;
    // Chunk phase: the chosen table assembles into `image` tail-first.
    ChunkTable table;
    Buffer image;
    std::vector<bool> have_chunk;
    std::size_t chunks_left = 0;
    ImageLayout layout;
    bool layout_known = false;      // trailer bytes arrived
    bool scalars_restored = false;  // stage A: clocks/HS/HR adopted
    bool bulk_restored = false;     // stage B: SAVED/arrivals adopted
    // Event download (first-quorum merge): any f+1 of 2f+1 responses cover
    // the quorum-acked prefix, so merge at the quorum and ignore the rest.
    bool download_issued = false;
    SimTime download_t0 = 0;
    std::vector<bool> dl_pending;
    std::vector<bool> dl_responded;
    std::vector<std::vector<ReceptionEvent>> dl_lists;
    bool plan_merged = false;
    // Deferred work that needs restored state: peer frames held until
    // stage B (pre-restore HR/SAVED would mis-dedup them; mirrors the
    // serial path's setup backlog), and the app's image request.
    struct DeferredFrame {
      mpi::Rank from = -1;
      net::Conn* conn = nullptr;  // drop if the peer reconnected since
      Buffer frame;
    };
    std::deque<DeferredFrame> deferred;
    bool app_image_waiting = false;
  };

  // ---- setup / teardown ----
  void setup(sim::Context& ctx);
  void connect_services(sim::Context& ctx);
  void fetch_checkpoint(sim::Context& ctx);
  void fetch_checkpoint_legacy(sim::Context& ctx);
  void fetch_checkpoint_striped(sim::Context& ctx);
  /// Next event on any checkpoint-server connection (Data or Closed);
  /// stashes everything else for the main loop.
  net::NetEvent wait_for_cs(sim::Context& ctx);
  /// Same, for the event-logger replica connections.
  net::NetEvent wait_for_el(sim::Context& ctx);
  void download_events(sim::Context& ctx);
  // ---- overlapped restart (the recovery fast path) ----
  void begin_overlapped_restart(sim::Context& ctx);
  void restart_handle_chunk_info(sim::Context& ctx, std::size_t stripe,
                                 Reader& r);
  void restart_handle_chunk(sim::Context& ctx, std::size_t stripe, Reader& r);
  void restart_handle_cs_closed(sim::Context& ctx, std::size_t stripe);
  void restart_pick_table(sim::Context& ctx);
  /// No fetchable image (or a stripe died before stage A): restart from
  /// zero state, exactly like the serial path's scratch degradation.
  void restart_enter_scratch(sim::Context& ctx);
  /// Re-evaluates the staged restore after new chunks landed.
  void restart_check_stages(sim::Context& ctx);
  /// Stage A join: scalars restored (or scratch) — fan Restart1 out to the
  /// connected peers and issue the event download.
  void restart_on_scalars(sim::Context& ctx);
  /// Stage B join: bulk restored — drain the deferred peer frames.
  void restart_on_bulk(sim::Context& ctx);
  /// The whole image assembled: hand it to the app, close the fetch phase.
  void restart_image_done(sim::Context& ctx);
  void restart_issue_download(sim::Context& ctx);
  void restart_handle_events(sim::Context& ctx, std::size_t replica,
                             Reader& r);
  /// First-quorum join: adopt the merged history as the replay plan.
  void restart_merge(sim::Context& ctx);
  /// Drops the restart state once every in-flight stage completed.
  void restart_maybe_finish(sim::Context& ctx);
  /// Replay (or image restore) still blocks fresh deliveries/plan probes.
  [[nodiscard]] bool restore_pending() const {
    return restart_.has_value() &&
           (!restart_->plan_merged || !restart_->bulk_restored);
  }
  /// Stamps restart_replay_ns/restart_recover_ns when the plan drains.
  void note_replay_drained(sim::Context& ctx);
  /// Shared by both restart paths: trace the replay plan, apply the
  /// kReplayOutOfOrder mutation, adopt the merged history as el_log_ and
  /// re-append it to the synced replicas under our new incarnation.
  void adopt_merged_events(sim::Context& ctx,
                           std::vector<ReceptionEvent> merged,
                           std::size_t nlists);
  void connect_peer(sim::Context& ctx, mpi::Rank q);
  /// Connects event-logger replicas until a quorum answered kQueryR (setup).
  void connect_el_quorum(sim::Context& ctx);
  /// One reconnect attempt toward replica i (main loop, backoff-scheduled).
  void reconnect_el(sim::Context& ctx, std::size_t i);
  /// Replica i's connection died or could not be made: schedule a retry.
  void el_drop(sim::Context& ctx, std::size_t i);
  /// kQueryR arrived: replica i holds `next_seq` events of our incarnation;
  /// retransmit the missing tail from our in-memory log.
  void el_sync(sim::Context& ctx, std::size_t i, std::uint64_t next_seq);
  /// Sends replica i everything between its el_sent_ position and the head
  /// of our log (with the resync flag when pruned history leaves a gap).
  void el_catch_up(sim::Context& ctx, std::size_t i);
  /// Re-derives the quorum-acked event count from the per-replica acks.
  void update_el_quorum();
  /// True when every *configured* checkpoint stripe is connected.
  [[nodiscard]] bool all_cs_connected() const;

  // ---- event handling ----
  void handle_pipe(sim::Context& ctx, net::PipeFrame frame);
  void handle_net(sim::Context& ctx, net::NetEvent ev);
  void handle_peer_frame(sim::Context& ctx, mpi::Rank q, Buffer frame);
  void handle_msg_record(sim::Context& ctx, mpi::Rank q, MsgRecord rec);
  /// Drops accept-window entries the hr_[q] watermark now covers.
  void prune_accept_window(mpi::Rank q);
  void handle_ctl(sim::Context& ctx, Buffer msg);
  void handle_el(sim::Context& ctx, std::size_t replica, Buffer msg);
  void handle_cs(sim::Context& ctx, std::size_t stripe, Buffer msg);

  // ---- protocol actions ----
  void send_event(sim::Context& ctx, mpi::Rank dest, SharedBuffer block);
  void try_satisfy_app(sim::Context& ctx);
  /// First arrival eligible for app delivery (per-sender order guaranteed).
  std::deque<Arrival>::iterator next_deliverable();
  void deliver_to_app(sim::Context& ctx, Arrival arrival, bool replayed);
  void flush_el(sim::Context& ctx);
  /// Total reception events created so far (appended or still in outbox).
  [[nodiscard]] std::uint64_t el_events_created() const {
    return el_appended_ + el_outbox_.size();
  }
  /// Charges virtual time for an n-byte memcpy and counts it.
  void charge_copy(sim::Context& ctx, std::size_t n);
  void enqueue_control(mpi::Rank q, Buffer frame);
  /// Flushes the EL outbox first (no frame may be gated on an event that
  /// never left the outbox), then queues the record zero-copy.
  void enqueue_msg(sim::Context& ctx, mpi::Rank q, Clock clock,
                   SharedBuffer block);
  void enqueue_saved_resend(sim::Context& ctx, mpi::Rank q, Clock after);
  bool advance_tx(sim::Context& ctx);   // returns true if it did work
  bool advance_ckpt(sim::Context& ctx);
  bool advance_ckpt_legacy(sim::Context& ctx);
  bool advance_ckpt_delta(sim::Context& ctx);
  /// A stripe died (or was found dead) mid-upload: forget the pending
  /// checkpoint; the image was never stable and nothing was pruned.
  void abandon_ckpt(sim::Context& ctx);
  void begin_checkpoint(sim::Context& ctx, SharedBuffer app_image);
  void on_ckpt_stable(sim::Context& ctx, std::uint64_t seq);
  void pipe_reply(sim::Context& ctx, Writer w);
  void pipe_reply(sim::Context& ctx, Writer w, SharedBuffer payload);

  Buffer serialize_daemon_state(ConstBytes app_image) const;
  Buffer restore_daemon_state(ConstBytes image);  // returns app image
  /// Parses the 16-byte image trailer into section offsets.
  [[nodiscard]] static ImageLayout read_image_layout(ConstBytes image);
  /// Stage A: clocks, HS/HR, ckpt seq, probe counters (the image suffix).
  void restore_scalars(ConstBytes image, const ImageLayout& layout);
  /// Stage B: SAVED + undelivered arrivals (+ accept-window seeding).
  void restore_bulk(ConstBytes image, const ImageLayout& layout);

  [[nodiscard]] bool replaying() const { return !replay_.empty(); }

  net::Network& net_;
  net::Pipe& pipe_;
  DaemonConfig config_;

  // ---- protocol state (checkpointed) ----
  // The paper uses one logical clock for sends and deliveries. We split it:
  // message identifiers come from a *sends-only* counter, so a re-executed
  // send always reproduces its original identifier even when the progress
  // engine consumes arrivals in a different interleaving than the original
  // run (delivery timing is nondeterministic; the send sequence, by
  // piecewise determinism, is not). Reception events are ordered by a
  // *deliveries-only* counter. All HS/HR machinery operates on send clocks;
  // the event log and checkpoints are keyed by delivery clocks.
  Clock send_clock_ = 0;
  Clock recv_clock_ = 0;
  std::vector<Clock> hs_;         // last clock sent to q / suppression bound
  // Completeness watermark: every send of q to us with clock <= hr_[q] has
  // been accepted (or was a duplicate). This — not a max-received mark — is
  // what RESTART1 requests, RESTART2 reports, and CkptNotify lets peers GC
  // by: it must never cover a gap. It advances per message in steady state
  // (per-pair FIFO makes gaps impossible) and only via ResendDone markers
  // while a restart exchange is in flight.
  std::vector<Clock> hr_;
  SenderLog saved_;
  std::deque<Arrival> arrivals_;  // received, not yet delivered to the app
  std::uint64_t ckpt_seq_ = 0;
  SharedBuffer app_restart_image_;  // app+ADI blob from the restored image
  bool have_restart_image_ = false;

  // ---- volatile state ----
  std::optional<net::Endpoint> endpoint_;
  std::vector<net::Conn*> peers_;
  std::vector<Buffer> reassembly_;          // per-peer partial MsgRecord
  std::vector<std::deque<OutFrame>> tx_;
  // True from our restart until q's ResendDone: out-of-order arrivals are
  // possible (stragglers sent before q saw our Restart1), so acceptance
  // uses accepted_[q] instead of advancing the watermark.
  std::vector<bool> awaiting_marker_;
  std::vector<std::set<Clock>> accepted_;  // clocks accepted above hr_[q]
  std::vector<SimTime> reconnect_at_;       // next retry for dead lower conns
  // Event-logger replica group state, all indexed by replica.
  std::vector<net::Conn*> el_conns_;
  std::vector<std::uint64_t> el_acked_r_;   // cumulative events acked
  std::vector<std::uint64_t> el_sent_;      // next seq to transmit
  std::vector<bool> el_synced_;             // kQueryR seen on current conn
  std::vector<SimTime> el_reconnect_at_;    // -1 = no retry scheduled
  std::vector<SimDuration> el_backoff_;     // current retry delay
  std::vector<net::Conn*> cs_conns_;        // one per stripe server
  net::Conn* sched_conn_ = nullptr;
  net::Conn* disp_conn_ = nullptr;

  std::deque<ReceptionEvent> replay_;       // events still to re-deliver
  std::uint32_t probes_since_delivery_ = 0;
  std::uint32_t probes_logged_ = 0;  // prefix of the above already durable

  std::vector<ReceptionEvent> el_outbox_;
  /// Our in-memory copy of the log appended under this incarnation, used to
  /// resync replicas that reconnect or reboot. el_log_[k] holds sequence
  /// number el_log_base_ + k; the prefix below el_log_base_ was pruned
  /// under a stable checkpoint (replicas accept the gap via `resync`).
  std::vector<ReceptionEvent> el_log_;
  std::uint64_t el_log_base_ = 0;
  std::uint64_t el_appended_ = 0;        // == el_log_base_ + el_log_.size()
  std::uint64_t el_quorum_acked_ = 0;    // cached quorum-held event count

  bool app_waiting_brecv_ = false;
  bool app_waiting_probe_ = false;
  bool ckpt_requested_ = false;             // piggybacked flag to the app
  std::optional<PendingCkpt> ckpt_;
  std::vector<Clock> last_stable_hr_;       // HR vector of last stable ckpt
  /// Chunk hashes of the last *stable* image — the delta base. Chunks whose
  /// hash matches at the same index are skipped (the servers pin the stable
  /// table, so its content is guaranteed present on the owning stripe).
  std::vector<std::uint64_t> last_stable_hashes_;
  bool has_stable_ckpt_ = false;
  std::size_t cs_rr_next_ = 0;              // round-robin stripe TX pointer
  bool shutdown_ = false;
  bool mut_prune_done_ = false;  // kPruneSavedEarly fired (test only)
  mpi::Rank rr_next_ = 0;                   // round-robin TX pointer
  std::deque<net::NetEvent> setup_backlog_;  // events deferred during setup

  // Overlapped restart in flight (empty once every stage joined, and on
  // incarnation 0 / the serial ablation always).
  std::optional<Restart> restart_;
  // Post-stage-A chunk refetch timers: a stripe that died after the
  // restored watermarks went out cannot be rolled back to scratch, so the
  // fetch retries against the rebooted stripe (stable storage) instead.
  std::vector<SimTime> cs_retry_at_;
  // Recovery latency bookkeeping, valid for both restart paths.
  SimTime restart_t0_ = -1;       // setup entry of a restarted incarnation
  SimTime restart_merge_t_ = -1;  // replay plan adopted
  bool restart_ttfs_done_ = false;
  bool restart_recover_done_ = false;
  bool replay_phase_open_ = false;  // kRestartPhaseBegin(kReplay) emitted

  DaemonStats stats_;
};

}  // namespace mpiv::v2
