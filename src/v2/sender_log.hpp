// The sender-based payload log: the paper's SAVED set.
//
// Every channel block a daemon emits is recorded here with the logical
// clock of its send event, so it can be re-sent if the receiver rolls back.
// Entries are garbage-collected when the receiver reports (via CkptNotify)
// that a checkpoint made every message up to some clock permanently stable.
//
// Entries hold ref-counted payload slices: recording a block shares the
// allocation the TX queue (and originally the app pipe) already holds, so
// SAVED costs no extra copy. Clocks are strictly increasing per destination
// (each send bumps the logical clock), which lets entries_after and prune
// binary-search their start point instead of scanning the whole deque.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "mpi/types.hpp"
#include "v2/wire.hpp"

namespace mpiv::v2 {

class SenderLog {
 public:
  struct Entry {
    Clock clock = 0;
    SharedBuffer block;
  };

  SenderLog() = default;
  explicit SenderLog(mpi::Rank nranks)
      : per_dest_(static_cast<std::size_t>(nranks)) {}

  void record(mpi::Rank dest, Clock clock, SharedBuffer block) {
    bytes_ += block.size();
    per_dest_[static_cast<std::size_t>(dest)].push_back(
        Entry{clock, std::move(block)});
  }

  /// Convenience for callers holding an exclusive Buffer (tests).
  void record(mpi::Rank dest, Clock clock, Buffer block) {
    record(dest, clock, SharedBuffer(std::move(block)));
  }

  /// Entries destined to `dest` with clock > after, in clock order.
  /// O(log n + matches) thanks to per-destination clock monotonicity.
  [[nodiscard]] std::vector<const Entry*> entries_after(mpi::Rank dest,
                                                        Clock after) const {
    const auto& q = per_dest_[static_cast<std::size_t>(dest)];
    auto it = std::lower_bound(
        q.begin(), q.end(), after,
        [](const Entry& e, Clock c) { return e.clock <= c; });
    std::vector<const Entry*> out;
    out.reserve(static_cast<std::size_t>(q.end() - it));
    for (; it != q.end(); ++it) out.push_back(&*it);
    return out;
  }

  /// Garbage collection: drops entries to `dest` with clock <= upto.
  void prune(mpi::Rank dest, Clock upto) {
    auto& q = per_dest_[static_cast<std::size_t>(dest)];
    auto cut = std::lower_bound(
        q.begin(), q.end(), upto,
        [](const Entry& e, Clock c) { return e.clock <= c; });
    for (auto it = q.begin(); it != cut; ++it) bytes_ -= it->block.size();
    q.erase(q.begin(), cut);
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_; }
  [[nodiscard]] std::size_t entry_count() const {
    std::size_t n = 0;
    for (const auto& q : per_dest_) n += q.size();
    return n;
  }
  [[nodiscard]] std::size_t count_for(mpi::Rank dest) const {
    return per_dest_[static_cast<std::size_t>(dest)].size();
  }

  void serialize(Writer& w) const {
    w.u32(static_cast<std::uint32_t>(per_dest_.size()));
    for (const auto& q : per_dest_) {
      w.u32(static_cast<std::uint32_t>(q.size()));
      for (const Entry& e : q) {
        w.i64(e.clock);
        w.blob(e.block.view());
      }
    }
  }

  void restore(Reader& r) {
    std::uint32_t nd = r.u32();
    per_dest_.assign(nd, {});
    bytes_ = 0;
    for (std::uint32_t d = 0; d < nd; ++d) {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Clock c = r.i64();
        SharedBuffer b{r.blob()};
        bytes_ += b.size();
        per_dest_[d].push_back(Entry{c, std::move(b)});
      }
    }
  }

 private:
  std::vector<std::deque<Entry>> per_dest_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mpiv::v2
