// The MPICH-V2 channel device (app-process side).
//
// Each channel primitive is one synchronous request/reply exchange on the
// local pipe to the communication daemon, exactly as in the paper ("the
// communication across the UNIX socket to the MPI process is synchronous
// and its granularity is the whole protocol message"). Every daemon reply
// piggybacks the checkpoint-request flag so polling it is free.
#pragma once

#include "mpi/device.hpp"
#include "net/pipe.hpp"
#include "trace/trace.hpp"
#include "v2/wire.hpp"

namespace mpiv::v2 {

class V2Device final : public mpi::Device {
 public:
  /// `blocking_ckpt` selects the checkpoint handoff: false (default, the
  /// incremental datapath) hands the image to the daemon copy-on-write and
  /// resumes immediately; true waits for the daemon's kCkptOk (the legacy
  /// full-image protocol). Must match Daemon::config_.full_image_ckpt.
  /// `trace` optionally records app-side events (Role::kRuntime).
  V2Device(net::Pipe& pipe, mpi::Rank rank, mpi::Rank size,
           bool blocking_ckpt = false, trace::TraceRecorder* trace = nullptr)
      : pipe_(pipe),
        rank_(rank),
        size_(size),
        blocking_ckpt_(blocking_ckpt),
        trace_(trace) {}

  void init(sim::Context& ctx) override;
  void finish(sim::Context& ctx) override;
  void bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) override;
  mpi::Packet brecv(sim::Context& ctx) override;
  bool nprobe(sim::Context& ctx) override;

  [[nodiscard]] mpi::Rank rank() const override { return rank_; }
  [[nodiscard]] mpi::Rank size() const override { return size_; }
  /// V2's eager/rendezvous switch sits at 64 KB (fig. 10's protocol kink).
  [[nodiscard]] std::uint32_t eager_threshold() const override {
    return 64 * 1024;
  }

  [[nodiscard]] bool checkpoint_requested() const override {
    return ckpt_requested_;
  }
  void send_checkpoint(sim::Context& ctx, Buffer image) override;
  std::optional<Buffer> take_restart_image(sim::Context& ctx) override;

 private:
  /// One synchronous exchange: send `w`, wait for a reply of type `expect`.
  /// The reply's head is returned with the pipe header consumed; any bulk
  /// payload rides the frame as a shared slice.
  net::PipeFrame roundtrip(sim::Context& ctx, net::PipeFrame req,
                           PipeMsg expect);

  net::Pipe& pipe_;
  mpi::Rank rank_;
  mpi::Rank size_;
  bool blocking_ckpt_ = false;
  bool ckpt_requested_ = false;
  trace::TraceRecorder* trace_ = nullptr;
};

}  // namespace mpiv::v2
