#include "v2/v2_device.hpp"

#include "common/error.hpp"

namespace mpiv::v2 {

Buffer V2Device::roundtrip(sim::Context& ctx, Writer w, PipeMsg expect) {
  pipe_.app_end().send(ctx, w.take());
  Buffer reply = pipe_.app_end().recv(ctx);
  Reader r(reply);
  PipeHeader h = read_pipe_header(r);
  MPIV_CHECK(h.type == expect, "v2 device: unexpected pipe reply type");
  ckpt_requested_ = h.ckpt_requested;
  // Return the remainder (after the header) as a fresh buffer.
  ConstBytes rest = r.rest();
  return Buffer(rest.begin(), rest.end());
}

void V2Device::init(sim::Context& ctx) {
  Buffer body = roundtrip(ctx, pipe_writer(PipeMsg::kInit), PipeMsg::kInitOk);
  Reader r(body);
  mpi::Rank rank = r.i32();
  mpi::Rank size = r.i32();
  MPIV_CHECK(rank == rank_ && size == size_, "v2 device: daemon disagrees");
}

void V2Device::finish(sim::Context& ctx) {
  roundtrip(ctx, pipe_writer(PipeMsg::kFinish), PipeMsg::kFinishOk);
}

void V2Device::bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) {
  // One-way hand-off: the app pays the local socket transfer (charged by
  // the pipe) and continues; the daemon transmits in the background. This
  // is what makes V2's MPI_Isend cheap (Table 1) and lets communication
  // overlap computation.
  Writer w = pipe_writer(PipeMsg::kBsend);
  w.i32(dest);
  w.blob(block);
  pipe_.app_end().send(ctx, w.take());
}

mpi::Packet V2Device::brecv(sim::Context& ctx) {
  Buffer body = roundtrip(ctx, pipe_writer(PipeMsg::kBrecv), PipeMsg::kDeliver);
  Reader r(body);
  mpi::Packet pkt;
  pkt.from = r.i32();
  pkt.data = r.blob();
  return pkt;
}

bool V2Device::nprobe(sim::Context& ctx) {
  Buffer body = roundtrip(ctx, pipe_writer(PipeMsg::kNprobe), PipeMsg::kProbeR);
  Reader r(body);
  return r.boolean();
}

void V2Device::send_checkpoint(sim::Context& ctx, Buffer image) {
  Writer w = pipe_writer(PipeMsg::kCkptImage);
  w.blob(image);
  roundtrip(ctx, std::move(w), PipeMsg::kCkptOk);
}

std::optional<Buffer> V2Device::take_restart_image(sim::Context& ctx) {
  Buffer body =
      roundtrip(ctx, pipe_writer(PipeMsg::kGetImage), PipeMsg::kImageR);
  Reader r(body);
  bool found = r.boolean();
  Buffer blob = r.blob();
  if (!found) return std::nullopt;
  return blob;
}

}  // namespace mpiv::v2
