#include "v2/v2_device.hpp"

#include "common/error.hpp"

namespace mpiv::v2 {

net::PipeFrame V2Device::roundtrip(sim::Context& ctx, net::PipeFrame req,
                                   PipeMsg expect) {
  pipe_.app_end().send(ctx, std::move(req));
  net::PipeFrame reply = pipe_.app_end().recv(ctx);
  Reader r(reply.head);
  PipeHeader h = read_pipe_header(r);
  MPIV_CHECK(h.type == expect, "v2 device: unexpected pipe reply type");
  ckpt_requested_ = h.ckpt_requested;
  // Strip the pipe header so callers parse only the body.
  ConstBytes rest = r.rest();
  reply.head = Buffer(rest.begin(), rest.end());
  return reply;
}

void V2Device::init(sim::Context& ctx) {
  net::PipeFrame reply =
      roundtrip(ctx, net::PipeFrame(pipe_writer(PipeMsg::kInit).take()),
                PipeMsg::kInitOk);
  Reader r(reply.head);
  mpi::Rank rank = r.i32();
  mpi::Rank size = r.i32();
  MPIV_CHECK(rank == rank_ && size == size_, "v2 device: daemon disagrees");
}

void V2Device::finish(sim::Context& ctx) {
  roundtrip(ctx, net::PipeFrame(pipe_writer(PipeMsg::kFinish).take()),
            PipeMsg::kFinishOk);
}

void V2Device::bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) {
  // One-way hand-off: the app pays the local socket transfer (charged by
  // the pipe) and continues; the daemon transmits in the background. This
  // is what makes V2's MPI_Isend cheap (Table 1) and lets communication
  // overlap computation. The block crosses the pipe as a ref-counted
  // slice, so the daemon logs and transmits the very bytes handed over
  // here — zero user-level copies on the send side.
  copies_.blocks_sent += 1;
  copies_.payload_bytes_sent += block.size();
  Writer w = pipe_writer(PipeMsg::kBsend);
  w.i32(dest);
  pipe_.app_end().send(ctx,
                       net::PipeFrame(w.take(), SharedBuffer(std::move(block))));
}

mpi::Packet V2Device::brecv(sim::Context& ctx) {
  net::PipeFrame reply =
      roundtrip(ctx, net::PipeFrame(pipe_writer(PipeMsg::kBrecv).take()),
                PipeMsg::kDeliver);
  Reader r(reply.head);
  mpi::Packet pkt;
  pkt.from = r.i32();
  // The one deliberate RX copy: the MPI layer owns its Packet bytes.
  copies_.payload_copies += 1;
  copies_.bytes_copied += reply.payload.size();
  pkt.data = reply.payload.copy();
  return pkt;
}

bool V2Device::nprobe(sim::Context& ctx) {
  net::PipeFrame reply =
      roundtrip(ctx, net::PipeFrame(pipe_writer(PipeMsg::kNprobe).take()),
                PipeMsg::kProbeR);
  Reader r(reply.head);
  return r.boolean();
}

void V2Device::send_checkpoint(sim::Context& ctx, Buffer image) {
  copies_.ckpt_bytes_captured += image.size();
  MPIV_TRACE(trace_, trace::Kind::kAppCkptImage, {.n = image.size()});
  if (blocking_ckpt_) {
    // Legacy path: block until the daemon has taken the image.
    roundtrip(ctx,
              net::PipeFrame(pipe_writer(PipeMsg::kCkptImage).take(),
                             SharedBuffer(std::move(image))),
              PipeMsg::kCkptOk);
    return;
  }
  // Incremental path: copy-on-write handoff. The app pays only for the
  // pages it dirtied since the previous capture and resumes immediately —
  // the daemon chunk-hashes, dedups and uploads in the background. The
  // daemon sends no kCkptOk here; the next piggybacked header refreshes
  // ckpt_requested_, and we clear it eagerly since this request is now
  // satisfied.
  copies_.ckpt_cow_bytes += pipe_.app_end().send_cow(
      ctx, net::PipeFrame(pipe_writer(PipeMsg::kCkptImage).take(),
                          SharedBuffer(std::move(image))));
  ckpt_requested_ = false;
}

std::optional<Buffer> V2Device::take_restart_image(sim::Context& ctx) {
  net::PipeFrame reply =
      roundtrip(ctx, net::PipeFrame(pipe_writer(PipeMsg::kGetImage).take()),
                PipeMsg::kImageR);
  Reader r(reply.head);
  bool found = r.boolean();
  if (!found) return std::nullopt;
  return reply.payload.copy();
}

}  // namespace mpiv::v2
