#include "v2/daemon.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"

namespace mpiv::v2 {

using TK = trace::Kind;

namespace {
// user_tag values for service connections (peer conns use the peer rank).
constexpr std::uint64_t kTagSched = (1u << 20) + 2;
constexpr std::uint64_t kTagDisp = (1u << 20) + 3;
// Checkpoint stripe i tags its connection kTagCsBase + i.
constexpr std::uint64_t kTagCsBase = (1u << 20) + 16;
// Event-logger replica i tags its connection kTagElBase + i.
constexpr std::uint64_t kTagElBase = (1u << 20) + 64;
// Exponential backoff cap for event-logger reconnects.
constexpr int kElBackoffMaxShift = 6;  // 64x the base retry
}  // namespace

Daemon::Daemon(net::Network& net, net::Pipe& pipe, DaemonConfig config)
    : net_(net), pipe_(pipe), config_(std::move(config)) {
  auto n = static_cast<std::size_t>(config_.size);
  hs_.assign(n, 0);
  hr_.assign(n, 0);
  saved_ = SenderLog(config_.size);
  peers_.assign(n, nullptr);
  reassembly_.assign(n, {});
  tx_.assign(n, {});
  awaiting_marker_.assign(n, false);
  accepted_.assign(n, {});
  reconnect_at_.assign(n, -1);
  last_stable_hr_.assign(n, 0);
  if (config_.trace != nullptr) {
    config_.trace->set_incarnation(config_.incarnation);
  }
}

// --------------------------------------------------------------- setup

void Daemon::setup(sim::Context& ctx) {
  if (config_.incarnation > 0) restart_t0_ = ctx.now();
  endpoint_.emplace(net_, config_.node);
  endpoint_->listen(kDaemonPortBase + config_.rank);
  connect_services(ctx);
  // The fast path overlaps the image fetch, the event download and the
  // Restart1 fan-out from the main loop; the legacy full-image fetch has no
  // chunk structure to overlap, so it stays on the serial path with the
  // serial_restart ablation.
  const bool overlapped = config_.incarnation > 0 && !config_.serial_restart &&
                          !config_.full_image_ckpt;
  if (overlapped) {
    begin_overlapped_restart(ctx);
  } else {
    if (config_.incarnation > 0) {
      MPIV_TRACE(config_.trace, TK::kRestartPhaseBegin,
                 {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kFetch)});
    }
    fetch_checkpoint(ctx);
    if (config_.incarnation > 0) {
      MPIV_TRACE(config_.trace, TK::kRestartPhaseEnd,
                 {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kFetch),
                  .n = stats_.ckpt_fetch_bytes});
      // Snapshot the restored HS/HR watermarks (zero on a scratch restart):
      // the offline auditor baselines its per-incarnation bounds from these.
      for (mpi::Rank q = 0; q < config_.size; ++q) {
        if (q == config_.rank) continue;
        auto qi = static_cast<std::size_t>(q);
        MPIV_TRACE(config_.trace, TK::kWatermarks,
                   {.peer = q, .c1 = hs_[qi], .c2 = hr_[qi]});
      }
    }
    download_events(ctx);
    if (config_.incarnation > 0) {
      for (mpi::Rank q = 0; q < config_.size; ++q) {
        if (q != config_.rank) {
          awaiting_marker_[static_cast<std::size_t>(q)] = true;
        }
      }
    }
  }
  // The lower rank of each pair initiates; we connect to all higher ranks.
  for (mpi::Rank q = config_.rank + 1; q < config_.size; ++q) {
    connect_peer(ctx, q);
  }
  // A restarted daemon connects to its lower-rank peers too (eager
  // Restart1 fan-out): recovery would otherwise stall until each of them
  // notices the dead connection and retries on its own cadence.
  if (config_.incarnation > 0) {
    for (mpi::Rank q = 0; q < config_.rank; ++q) connect_peer(ctx, q);
  }
}

/// Waits for a Data event on `conn`; stashes everything else for the main
/// loop (used for the synchronous fetch/download exchanges during setup).
static Buffer wait_for_data(sim::Context& ctx, net::Endpoint& ep,
                            net::Conn* conn,
                            std::deque<net::NetEvent>& backlog) {
  for (;;) {
    net::NetEvent ev = ep.wait(ctx);
    if (ev.type == net::NetEvent::Type::kData && ev.conn == conn) {
      return std::move(ev.data);
    }
    MPIV_CHECK(!(ev.type == net::NetEvent::Type::kClosed && ev.conn == conn),
               "daemon: service connection lost during setup");
    backlog.push_back(std::move(ev));
  }
}

void Daemon::connect_services(sim::Context& ctx) {
  SimTime deadline = ctx.now() + config_.connect_timeout;
  auto connect_to = [&](net::Address addr, std::uint64_t tag) -> net::Conn* {
    if (addr.node == net::kNoNode) return nullptr;
    net::Conn* c =
        net_.connect_retry(ctx, *endpoint_, addr, milliseconds(2), deadline);
    MPIV_CHECK(c != nullptr, "daemon: cannot reach service");
    c->user_tag = tag;
    return c;
  };
  // The checkpoint server and scheduler are allowed to be unreliable
  // (§4.3): if they cannot be reached the node simply runs without
  // checkpoint support and would restart from scratch, at worst.
  auto connect_optional = [&](net::Address addr, std::uint64_t tag,
                              SimDuration budget) -> net::Conn* {
    if (addr.node == net::kNoNode) return nullptr;
    net::Conn* c = net_.connect_retry(ctx, *endpoint_, addr, milliseconds(2),
                                      ctx.now() + budget);
    if (c == nullptr) {
      MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank,
                " cannot reach optional service; continuing without it");
      return nullptr;
    }
    c->user_tag = tag;
    return c;
  };
  disp_conn_ = connect_to(config_.dispatcher, kTagDisp);
  if (disp_conn_ != nullptr) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CtlMsg::kRegister));
    w.i32(config_.rank);
    w.i32(config_.incarnation);
    disp_conn_->send(ctx, w.take());
  }
  cs_conns_.assign(config_.ckpt_servers.size(), nullptr);
  for (std::size_t i = 0; i < config_.ckpt_servers.size(); ++i) {
    cs_conns_[i] = connect_optional(config_.ckpt_servers[i], kTagCsBase + i,
                                    config_.optional_connect_budget);
  }
  sched_conn_ = connect_optional(config_.scheduler, kTagSched,
                                 config_.optional_connect_budget);
  if (sched_conn_ != nullptr) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CtlMsg::kRegister));
    w.i32(config_.rank);
    w.i32(config_.incarnation);
    sched_conn_->send(ctx, w.take());
  }
  connect_el_quorum(ctx);
}

net::NetEvent Daemon::wait_for_el(sim::Context& ctx) {
  auto is_el = [this](net::Conn* c) {
    for (net::Conn* el : el_conns_) {
      if (el != nullptr && el == c) return true;
    }
    return false;
  };
  for (;;) {
    net::NetEvent ev = endpoint_->wait(ctx);
    if (is_el(ev.conn) && (ev.type == net::NetEvent::Type::kData ||
                           ev.type == net::NetEvent::Type::kClosed)) {
      return ev;
    }
    setup_backlog_.push_back(std::move(ev));
  }
}

void Daemon::connect_el_quorum(sim::Context& ctx) {
  const std::size_t nel = config_.event_loggers.size();
  MPIV_CHECK(nel >= 1, "daemon: at least one event logger is required");
  el_conns_.assign(nel, nullptr);
  el_acked_r_.assign(nel, 0);
  el_sent_.assign(nel, 0);
  el_synced_.assign(nel, false);
  el_reconnect_at_.assign(nel, -1);
  el_backoff_.assign(nel, config_.el_retry);
  stats_.el_replica_max_lag.assign(nel, 0);
  const std::size_t quorum = el_quorum(nel);
  const SimTime deadline = ctx.now() + config_.connect_timeout;
  for (;;) {
    for (std::size_t i = 0; i < nel; ++i) {
      if (el_conns_[i] != nullptr) continue;
      net::Conn* c =
          net_.connect_retry(ctx, *endpoint_, config_.event_loggers[i],
                             milliseconds(2), ctx.now() + config_.el_connect_budget);
      if (c == nullptr) {
        // Down replica: leave it to the backoff reconnect path; setup only
        // needs a quorum.
        MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank,
                  " cannot reach event-logger replica ", i,
                  "; continuing with the quorum");
        el_drop(ctx, i);
        continue;
      }
      c->user_tag = kTagElBase + i;
      el_conns_[i] = c;
      el_reconnect_at_[i] = -1;
      el_backoff_[i] = config_.el_retry;
      Writer w;
      w.u8(static_cast<std::uint8_t>(ElMsg::kHello));
      w.i32(config_.rank);
      w.i32(config_.incarnation);
      c->send(ctx, w.take());
      Writer q;
      q.u8(static_cast<std::uint8_t>(ElMsg::kQuery));
      c->send(ctx, q.take());
    }
    // Absorb the kQueryR handshakes synchronously so the restart download
    // below only talks to replicas with a known resync position.
    auto unsynced = [this] {
      for (std::size_t i = 0; i < el_conns_.size(); ++i) {
        if (el_conns_[i] != nullptr && !el_synced_[i]) return true;
      }
      return false;
    };
    while (unsynced()) {
      net::NetEvent ev = wait_for_el(ctx);
      std::size_t i = ev.conn->user_tag - kTagElBase;
      if (ev.type == net::NetEvent::Type::kClosed) {
        el_drop(ctx, i);
      } else {
        handle_el(ctx, i, std::move(ev.data));
      }
    }
    std::size_t synced = 0;
    for (std::size_t i = 0; i < nel; ++i) synced += el_synced_[i] ? 1 : 0;
    if (synced >= quorum) return;
    MPIV_CHECK(ctx.now() < deadline,
               "daemon: cannot reach a quorum of event loggers");
    ctx.sleep(config_.el_retry * 4);
  }
}

void Daemon::el_drop(sim::Context& ctx, std::size_t i) {
  el_conns_[i] = nullptr;
  el_synced_[i] = false;
  el_reconnect_at_[i] = ctx.now() + el_backoff_[i];
  if (el_backoff_[i] < config_.el_retry * (1 << kElBackoffMaxShift)) {
    el_backoff_[i] = el_backoff_[i] * 2;
  }
  stats_.el_replica_retries += 1;
  if (restart_.has_value() && restart_->download_issued &&
      !restart_->plan_merged) {
    // The replica owed us a download reply; the backoff reconnect retries
    // against the surviving majority (el_sync re-requests). Give up only
    // once the quorum stays lost past the connect budget — the drops keep
    // firing on the backoff cadence, so this deadline is always revisited.
    restart_->dl_pending[i] = false;
    MPIV_CHECK(ctx.now() < restart_t0_ + config_.connect_timeout,
               "daemon: lost the event-logger quorum during restart download");
  }
}

void Daemon::reconnect_el(sim::Context& ctx, std::size_t i) {
  net::Conn* c = net_.connect(ctx, *endpoint_, config_.event_loggers[i]);
  if (c == nullptr) {
    el_drop(ctx, i);
    return;
  }
  c->user_tag = kTagElBase + i;
  el_conns_[i] = c;
  el_synced_[i] = false;
  el_reconnect_at_[i] = -1;
  el_backoff_[i] = config_.el_retry;
  Writer w;
  w.u8(static_cast<std::uint8_t>(ElMsg::kHello));
  w.i32(config_.rank);
  w.i32(config_.incarnation);
  c->send(ctx, w.take());
  // The replica may have rebooted (volatile store) or missed appends while
  // we were disconnected: ask where it stands, catch it up on the reply.
  Writer q;
  q.u8(static_cast<std::uint8_t>(ElMsg::kQuery));
  c->send(ctx, q.take());
}

void Daemon::el_sync(sim::Context& ctx, std::size_t i, std::uint64_t next_seq) {
  MPIV_CHECK(next_seq <= el_appended_,
             "daemon: event-logger replica ahead of our log");
  el_synced_[i] = true;
  // A rebooted replica legitimately *regresses* its position: overwrite,
  // don't max. The quorum gate recomputes below — a frame released earlier
  // is safe, its events are still on a quorum of the other replicas.
  el_acked_r_[i] = next_seq;
  el_sent_[i] = next_seq;
  update_el_quorum();
  el_catch_up(ctx, i);
  if (restart_.has_value() && restart_->download_issued &&
      !restart_->plan_merged && !restart_->dl_pending[i] &&
      !restart_->dl_responded[i]) {
    // A replica (re)joined while the first-quorum download is still short:
    // pull its copy of the log too.
    Writer w;
    w.u8(static_cast<std::uint8_t>(ElMsg::kDownload));
    w.i64(recv_clock_);
    el_conns_[i]->send(ctx, w.take());
    restart_->dl_pending[i] = true;
  }
}

void Daemon::el_catch_up(sim::Context& ctx, std::size_t i) {
  if (el_sent_[i] >= el_appended_) return;
  // History below el_log_base_ was pruned under a stable checkpoint; the
  // replica accepts the sequence gap when flagged as a resync.
  std::uint64_t first = std::max(el_sent_[i], el_log_base_);
  Writer w;
  w.u8(static_cast<std::uint8_t>(ElMsg::kAppend));
  w.u64(first);
  w.boolean(first > el_sent_[i]);
  w.u32(static_cast<std::uint32_t>(el_appended_ - first));
  for (std::uint64_t s = first; s < el_appended_; ++s) {
    write_event(w, el_log_[static_cast<std::size_t>(s - el_log_base_)]);
  }
  el_sent_[i] = el_appended_;
  stats_.el_replica_max_lag[i] =
      std::max(stats_.el_replica_max_lag[i], el_appended_ - el_acked_r_[i]);
  el_conns_[i]->send(ctx, w.take());
}

void Daemon::update_el_quorum() {
  std::vector<std::uint64_t> acks(el_acked_r_);
  const std::size_t q = el_quorum(acks.size());
  std::nth_element(acks.begin(), acks.begin() + static_cast<std::ptrdiff_t>(q - 1),
                   acks.end(), std::greater<>());
  std::uint64_t before = el_quorum_acked_;
  el_quorum_acked_ = acks[q - 1];
  if (el_quorum_acked_ != before) {
    MPIV_TRACE(config_.trace, TK::kElQuorum, {.n = el_quorum_acked_});
  }
}

net::NetEvent Daemon::wait_for_cs(sim::Context& ctx) {
  auto is_cs = [this](net::Conn* c) {
    for (net::Conn* cs : cs_conns_) {
      if (cs != nullptr && cs == c) return true;
    }
    return false;
  };
  for (;;) {
    net::NetEvent ev = endpoint_->wait(ctx);
    if (is_cs(ev.conn) && (ev.type == net::NetEvent::Type::kData ||
                           ev.type == net::NetEvent::Type::kClosed)) {
      return ev;
    }
    setup_backlog_.push_back(std::move(ev));
  }
}

void Daemon::fetch_checkpoint(sim::Context& ctx) {
  if (config_.incarnation == 0) return;
  if (config_.full_image_ckpt) {
    fetch_checkpoint_legacy(ctx);
  } else {
    fetch_checkpoint_striped(ctx);
  }
}

void Daemon::fetch_checkpoint_legacy(sim::Context& ctx) {
  net::Conn* cs = cs_conns_.empty() ? nullptr : cs_conns_[0];
  if (cs == nullptr) return;
  SimTime t0 = ctx.now();
  Writer w;
  w.u8(static_cast<std::uint8_t>(CsMsg::kFetch));
  w.i32(config_.rank);
  cs->send(ctx, w.take());
  Buffer reply = wait_for_data(ctx, *endpoint_, cs, setup_backlog_);
  Reader r(reply);
  MPIV_CHECK(static_cast<CsMsg>(r.u8()) == CsMsg::kImage,
             "daemon: bad fetch reply");
  bool found = r.boolean();
  std::uint64_t seq = r.u64();
  Buffer image = r.blob();
  if (!found) return;
  stats_.ckpt_fetch_bytes += image.size();
  ckpt_seq_ = seq;
  app_restart_image_ = SharedBuffer(restore_daemon_state(image));
  have_restart_image_ = true;
  has_stable_ckpt_ = true;  // the fetched image *is* stable storage
  last_stable_hr_ = hr_;
  stats_.ckpt_fetch_ns += static_cast<std::uint64_t>(ctx.now() - t0);
  MPIV_TRACE(config_.trace, TK::kCkptRestore,
             {.c2 = recv_clock_, .n = seq});
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " restored checkpoint seq ", seq, " at delivery clock ",
            recv_clock_);
}

void Daemon::fetch_checkpoint_striped(sim::Context& ctx) {
  std::size_t nlive = 0;
  for (net::Conn* c : cs_conns_) nlive += c != nullptr ? 1 : 0;
  if (nlive == 0) return;
  SimTime t0 = ctx.now();
  const std::size_t nstripes = cs_conns_.size();

  // Phase 1: ask every live stripe which chunk tables it holds for us.
  Writer q;
  q.u8(static_cast<std::uint8_t>(CsMsg::kChunkQuery));
  q.i32(config_.rank);
  for (net::Conn* c : cs_conns_) {
    if (c != nullptr) c->send(ctx, Buffer(q.buffer()));
  }
  // seq -> (table meta, stripes that can serve their share of it).
  std::map<std::uint64_t, ChunkTable> metas;
  std::map<std::uint64_t, std::vector<bool>> ready;
  std::size_t pending = nlive;
  while (pending > 0) {
    net::NetEvent ev = wait_for_cs(ctx);
    std::size_t s = ev.conn->user_tag - kTagCsBase;
    if (ev.type == net::NetEvent::Type::kClosed) {
      cs_conns_[s] = nullptr;
      --pending;
      continue;
    }
    Reader r(ev.data);
    MPIV_CHECK(static_cast<CsMsg>(r.u8()) == CsMsg::kChunkInfo,
               "daemon: bad chunk-query reply");
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      ChunkTable t = read_chunk_table(r);
      bool complete = r.boolean();
      if (!complete) continue;
      ready.emplace(t.ckpt_seq, std::vector<bool>(nstripes, false))
          .first->second[s] = true;
      metas.emplace(t.ckpt_seq, std::move(t));
    }
    --pending;
  }

  // Phase 2: newest seq whose every chunk has a live, ready owner stripe.
  const ChunkTable* best = nullptr;
  for (auto it = metas.rbegin(); it != metas.rend(); ++it) {
    const ChunkTable& t = it->second;
    const std::vector<bool>& rdy = ready.at(t.ckpt_seq);
    bool ok = true;
    for (std::size_t i = 0; i < t.hashes.size() && ok; ++i) {
      std::size_t s = t.owner_of(i, nstripes);
      ok = cs_conns_[s] != nullptr && rdy[s];
    }
    if (ok) {
      best = &t;
      break;
    }
  }
  if (best == nullptr) {
    MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank,
              " found no fetchable checkpoint across ", nlive,
              " stripe(s); restarting from scratch");
    return;
  }

  // Phase 3: pipeline all chunk requests, then gather the replies. Each
  // stripe streams its share concurrently with the others — the fetch is
  // bounded by the largest stripe share, not the whole image.
  for (std::size_t i = 0; i < best->hashes.size(); ++i) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CsMsg::kFetchChunk));
    w.i32(config_.rank);
    w.u64(best->ckpt_seq);
    w.u32(static_cast<std::uint32_t>(i));
    cs_conns_[best->owner_of(i, nstripes)]->send(ctx, w.take());
  }
  Buffer image(best->total_bytes);
  std::size_t remaining = best->hashes.size();
  while (remaining > 0) {
    net::NetEvent ev = wait_for_cs(ctx);
    if (ev.type == net::NetEvent::Type::kClosed) {
      std::size_t s = ev.conn->user_tag - kTagCsBase;
      cs_conns_[s] = nullptr;
      MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank, " lost stripe ",
                s, " mid-fetch; restarting from scratch");
      return;
    }
    Reader r(ev.data);
    MPIV_CHECK(static_cast<CsMsg>(r.u8()) == CsMsg::kChunk,
               "daemon: bad chunk-fetch reply");
    std::uint32_t index = r.u32();
    bool found = r.boolean();
    ConstBytes bytes = r.blob_view();
    if (!found) {
      MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank, " chunk ", index,
                " of seq ", best->ckpt_seq,
                " vanished mid-fetch; restarting from scratch");
      return;
    }
    MPIV_CHECK(index < best->hashes.size() &&
                   bytes.size() == chunk_len(best->total_bytes,
                                             best->chunk_size, index),
               "daemon: fetched chunk does not fit the table");
    MPIV_CHECK(hash64(bytes) == best->hashes[index],
               "daemon: fetched chunk failed its content hash");
    std::copy(bytes.begin(), bytes.end(),
              image.begin() +
                  static_cast<std::ptrdiff_t>(index) * best->chunk_size);
    stats_.ckpt_fetch_bytes += bytes.size();
    --remaining;
  }
  ckpt_seq_ = best->ckpt_seq;
  app_restart_image_ = SharedBuffer(restore_daemon_state(image));
  have_restart_image_ = true;
  has_stable_ckpt_ = true;  // the fetched image *is* stable storage
  last_stable_hr_ = hr_;
  last_stable_hashes_ = best->hashes;  // delta base for the next upload
  stats_.ckpt_fetch_ns += static_cast<std::uint64_t>(ctx.now() - t0);
  MPIV_TRACE(config_.trace, TK::kCkptRestore,
             {.c2 = recv_clock_, .n = ckpt_seq_});
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " restored checkpoint seq ", best->ckpt_seq, " (",
            best->hashes.size(), " chunks over ", nlive,
            " stripes) at delivery clock ", recv_clock_);
}

void Daemon::download_events(sim::Context& ctx) {
  if (config_.incarnation == 0) return;
  // A replica may have died between the quorum handshake and now (its
  // Closed event sits in the setup backlog, stashed by wait_for_cs during
  // the checkpoint fetch). Absorb those before addressing the group.
  for (auto it = setup_backlog_.begin(); it != setup_backlog_.end();) {
    std::uint64_t tag = it->conn->user_tag;
    if (it->type == net::NetEvent::Type::kClosed && tag >= kTagElBase &&
        tag < kTagElBase + el_conns_.size() &&
        el_conns_[tag - kTagElBase] == it->conn) {
      el_drop(ctx, tag - kTagElBase);
      it = setup_backlog_.erase(it);
    } else {
      ++it;
    }
  }
  MPIV_TRACE(config_.trace, TK::kRestartPhaseBegin,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kDownload)});
  const SimTime t0 = ctx.now();
  // Ask every reachable replica for its list. An event whose append was
  // quorum-acked is held by f+1 of the 2f+1 replicas, so any f+1 responses
  // cover the entire quorum-acked prefix — merge at the first quorum of
  // replies instead of waiting out the slowest replica.
  Writer w;
  w.u8(static_cast<std::uint8_t>(ElMsg::kDownload));
  w.i64(recv_clock_);
  std::vector<bool> pending(el_conns_.size(), false);
  std::vector<bool> responded(el_conns_.size(), false);
  std::size_t npending = 0;
  auto request = [&](std::size_t i) {
    el_conns_[i]->send(ctx, Buffer(w.buffer()));
    pending[i] = true;
    ++npending;
  };
  for (std::size_t i = 0; i < el_conns_.size(); ++i) {
    if (el_conns_[i] == nullptr || !el_synced_[i]) continue;
    request(i);
  }
  std::vector<std::vector<ReceptionEvent>> lists;
  const std::size_t quorum = el_quorum(el_conns_.size());
  const SimTime deadline = restart_t0_ + config_.connect_timeout;
  while (lists.size() < quorum) {
    if (npending == 0) {
      // The quorum was lost mid-download. Rather than aborting the whole
      // restart, keep retrying against whatever majority survives: kick
      // the replicas whose exponential-backoff retry is due, re-request
      // from any that resynced, and sleep to the next retry otherwise.
      MPIV_CHECK(ctx.now() < deadline,
                 "daemon: lost the event-logger quorum during restart "
                 "download");
      SimTime earliest = -1;
      for (std::size_t i = 0; i < el_conns_.size(); ++i) {
        if (el_conns_[i] != nullptr || el_reconnect_at_[i] < 0) continue;
        if (ctx.now() >= el_reconnect_at_[i]) {
          reconnect_el(ctx, i);
        } else {
          earliest = earliest < 0 ? el_reconnect_at_[i]
                                  : std::min(earliest, el_reconnect_at_[i]);
        }
      }
      for (std::size_t i = 0; i < el_conns_.size(); ++i) {
        if (el_conns_[i] != nullptr && el_synced_[i] && !pending[i] &&
            !responded[i]) {
          request(i);
        }
      }
      if (npending == 0) {
        // Nothing in flight and no handshake outstanding: wait out the
        // earliest scheduled retry.
        SimTime until = earliest >= 0 ? earliest : ctx.now() + config_.el_retry;
        ctx.sleep(std::max<SimDuration>(until - ctx.now(), 1));
        continue;
      }
    }
    net::NetEvent ev = wait_for_el(ctx);
    std::size_t i = ev.conn->user_tag - kTagElBase;
    if (ev.type == net::NetEvent::Type::kClosed) {
      el_drop(ctx, i);
      if (pending[i]) {
        pending[i] = false;
        --npending;
      }
      continue;
    }
    Reader r(ev.data);
    auto type = static_cast<ElMsg>(r.u8());
    if (type == ElMsg::kQueryR) {
      // A replica reconnected mid-download; sync it and pull its list.
      el_sync(ctx, i, r.u64());
      if (!pending[i] && !responded[i]) request(i);
      continue;
    }
    MPIV_CHECK(type == ElMsg::kEvents, "daemon: bad download reply");
    std::uint32_t n = r.u32();
    std::vector<ReceptionEvent> list;
    list.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) list.push_back(read_event(r));
    if (!responded[i]) {
      responded[i] = true;
      lists.push_back(std::move(list));
    }
    if (pending[i]) {
      pending[i] = false;
      --npending;
    }
  }
  stats_.restart_download_ns = static_cast<std::uint64_t>(ctx.now() - t0);
  adopt_merged_events(ctx, merge_event_logs(lists), lists.size());
}

void Daemon::adopt_merged_events(sim::Context& ctx,
                                 std::vector<ReceptionEvent> merged,
                                 std::size_t nlists) {
  MPIV_TRACE(config_.trace, TK::kElDownload,
             {.c1 = recv_clock_, .n = merged.size()});
  for (const ReceptionEvent& e : merged) {
    // The replay plan, in the exact order the log dictates; the auditor
    // checks re-deliveries against this sequence.
    MPIV_TRACE(config_.trace, TK::kReplayPlan,
               {.peer = e.sender,
                .c1 = e.send_clock,
                .c2 = e.recv_clock,
                .n = e.nprobes,
                .flag = e.kind == ReceptionEvent::Kind::kProbeBatch});
    replay_.push_back(e);
  }
  if (config_.trace_mutation == trace::Mutation::kReplayOutOfOrder) {
    // TEST ONLY: swap the first two re-deliveries so the replay diverges
    // from the logged order (the plan above records the true order).
    std::size_t first = replay_.size(), second = replay_.size();
    for (std::size_t i = 0; i < replay_.size(); ++i) {
      if (replay_[i].kind != ReceptionEvent::Kind::kDelivery) continue;
      if (first == replay_.size()) {
        first = i;
      } else {
        second = i;
        break;
      }
    }
    if (second < replay_.size()) std::swap(replay_[first], replay_[second]);
  }
  // Adopt the merged history as this incarnation's log and re-append it to
  // every reachable replica under our (new) incarnation: replicas that
  // missed events converge, stale suffixes from the previous incarnation
  // are truncated server-side, and the quorum gate covers the history for
  // the sends to come. (These re-appends are resyncs, not fresh events, so
  // they do not count toward events_logged.)
  el_log_ = std::move(merged);
  el_log_base_ = 0;
  el_appended_ = el_log_.size();
  for (std::size_t i = 0; i < el_conns_.size(); ++i) {
    el_sent_[i] = 0;
    if (el_conns_[i] != nullptr && el_synced_[i]) el_catch_up(ctx, i);
  }
  // A send issued before the merge could not log its probe batch (the log
  // position was unknowable then — see send_event); the history is settled
  // now, so make any such probes durable before those frames are released.
  bool held_msg = false;
  for (auto& dq : tx_) {
    for (OutFrame& f : dq) held_msg |= f.gate_pending_merge && f.is_msg;
  }
  if (held_msg && replay_.empty() &&
      probes_since_delivery_ > probes_logged_) {
    el_outbox_.push_back(ReceptionEvent{ReceptionEvent::Kind::kProbeBatch, -1,
                                        0, recv_clock_ + 1,
                                        probes_since_delivery_});
    probes_logged_ = probes_since_delivery_;
    flush_el(ctx);
  }
  // Frames issued before the merge were held with an unknowable gate
  // position; the adopted history (plus the batch above) *is* their
  // causal-predecessor set.
  for (auto& dq : tx_) {
    for (OutFrame& f : dq) {
      if (f.gate_pending_merge) {
        f.gate_pending_merge = false;
        f.required_events = el_events_created();
      }
    }
  }
  restart_merge_t_ = ctx.now();
  MPIV_TRACE(config_.trace, TK::kRestartPhaseEnd,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kDownload),
              .n = el_appended_});
  if (!replay_.empty()) {
    replay_phase_open_ = true;
    MPIV_TRACE(config_.trace, TK::kRestartPhaseBegin,
               {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kReplay)});
  } else {
    note_replay_drained(ctx);
  }
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank, " will replay ",
            replay_.size(), " logged receptions (merged from ", nlists,
            " replicas)");
}

void Daemon::note_replay_drained(sim::Context& ctx) {
  if (config_.incarnation == 0 || restart_recover_done_ || !replay_.empty()) {
    return;
  }
  restart_recover_done_ = true;
  if (replay_phase_open_) {
    replay_phase_open_ = false;
    stats_.restart_replay_ns =
        static_cast<std::uint64_t>(ctx.now() - restart_merge_t_);
    MPIV_TRACE(config_.trace, TK::kRestartPhaseEnd,
               {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kReplay),
                .n = stats_.replayed_deliveries});
  }
  stats_.restart_recover_ns =
      static_cast<std::uint64_t>(ctx.now() - restart_t0_);
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " recovered (replay drained) in ",
            stats_.restart_recover_ns / 1000, " us");
}

// ------------------------------------------ overlapped restart (fast path)

void Daemon::begin_overlapped_restart(sim::Context& ctx) {
  restart_.emplace();
  Restart& rs = *restart_;
  rs.fetch_t0 = ctx.now();
  cs_retry_at_.assign(cs_conns_.size(), -1);
  MPIV_TRACE(config_.trace, TK::kRestartPhaseBegin,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kFetch)});
  std::size_t nlive = 0;
  for (net::Conn* c : cs_conns_) nlive += c != nullptr ? 1 : 0;
  if (nlive == 0) {
    restart_enter_scratch(ctx);
    return;
  }
  // Phase 1 of the striped fetch: ask every live stripe which tables it
  // holds for us. From here on everything — the kChunkInfo/kChunk replies,
  // the event download and the Restart1/Restart2 exchanges — flows through
  // the main loop concurrently; the protocol joins are restart_on_scalars
  // (fan-out + download need the watermarks) and restart_merge + stage B
  // (replay needs the plan and the arrival stash).
  Writer q;
  q.u8(static_cast<std::uint8_t>(CsMsg::kChunkQuery));
  q.i32(config_.rank);
  rs.query_pending.assign(cs_conns_.size(), false);
  for (std::size_t i = 0; i < cs_conns_.size(); ++i) {
    if (cs_conns_[i] == nullptr) continue;
    cs_conns_[i]->send(ctx, Buffer(q.buffer()));
    rs.query_pending[i] = true;
    ++rs.queries_left;
  }
}

void Daemon::restart_enter_scratch(sim::Context& ctx) {
  Restart& rs = *restart_;
  MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank,
            " found no fetchable checkpoint; restarting from scratch");
  rs.fetch = Restart::Fetch::kDone;
  rs.layout_known = true;
  rs.scalars_restored = true;  // zero state: nothing to restore
  rs.bulk_restored = true;
  MPIV_TRACE(config_.trace, TK::kRestartPhaseEnd,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kFetch),
              .n = 0});
  restart_on_scalars(ctx);
  restart_on_bulk(ctx);
  if (rs.app_image_waiting) {
    rs.app_image_waiting = false;
    Writer w = pipe_writer(PipeMsg::kImageR, ckpt_requested_);
    w.boolean(false);
    pipe_reply(ctx, std::move(w), app_restart_image_);
  }
  restart_maybe_finish(ctx);
}

void Daemon::restart_handle_chunk_info(sim::Context& ctx, std::size_t stripe,
                                       Reader& r) {
  Restart& rs = *restart_;
  if (rs.fetch != Restart::Fetch::kQuery || !rs.query_pending[stripe]) {
    return;  // residue of an abandoned query round
  }
  rs.query_pending[stripe] = false;
  --rs.queries_left;
  std::uint32_t n = r.u32();
  const std::size_t nstripes = cs_conns_.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    ChunkTable t = read_chunk_table(r);
    bool complete = r.boolean();
    if (!complete) continue;
    rs.ready.emplace(t.ckpt_seq, std::vector<bool>(nstripes, false))
        .first->second[stripe] = true;
    rs.metas.emplace(t.ckpt_seq, std::move(t));
  }
  if (rs.queries_left == 0) restart_pick_table(ctx);
}

void Daemon::restart_pick_table(sim::Context& ctx) {
  Restart& rs = *restart_;
  const std::size_t nstripes = cs_conns_.size();
  // Newest seq whose every chunk has a live, ready owner stripe.
  const ChunkTable* best = nullptr;
  for (auto it = rs.metas.rbegin(); it != rs.metas.rend(); ++it) {
    const ChunkTable& t = it->second;
    const std::vector<bool>& rdy = rs.ready.at(t.ckpt_seq);
    bool ok = true;
    for (std::size_t i = 0; i < t.hashes.size() && ok; ++i) {
      std::size_t s = t.owner_of(i, nstripes);
      ok = cs_conns_[s] != nullptr && rdy[s];
    }
    if (ok) {
      best = &t;
      break;
    }
  }
  if (best == nullptr || best->total_bytes < kImageTrailerBytes) {
    restart_enter_scratch(ctx);
    return;
  }
  ChunkTable chosen = *best;
  rs.metas.clear();
  rs.ready.clear();
  rs.table = std::move(chosen);
  rs.fetch = Restart::Fetch::kChunks;
  rs.image = Buffer(rs.table.total_bytes);
  rs.have_chunk.assign(rs.table.hashes.size(), false);
  rs.chunks_left = rs.table.hashes.size();
  // Request TAIL-FIRST: each stripe serves its queue FIFO, so the chunks
  // holding the trailer and the scalar section land first and stage A (the
  // watermark restore, the Restart1 fan-out, the event download) starts
  // after roughly one chunk time instead of after the whole image.
  for (std::size_t i = rs.table.hashes.size(); i-- > 0;) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CsMsg::kFetchChunk));
    w.i32(config_.rank);
    w.u64(rs.table.ckpt_seq);
    w.u32(static_cast<std::uint32_t>(i));
    cs_conns_[rs.table.owner_of(i, nstripes)]->send(ctx, w.take());
  }
}

void Daemon::restart_handle_chunk(sim::Context& ctx, std::size_t stripe,
                                  Reader& r) {
  (void)stripe;
  Restart& rs = *restart_;
  if (rs.fetch != Restart::Fetch::kChunks) {
    return;  // residue of an abandoned fetch
  }
  std::uint32_t index = r.u32();
  bool found = r.boolean();
  ConstBytes bytes = r.blob_view();
  if (index >= rs.have_chunk.size() || rs.have_chunk[index]) {
    return;  // refetch duplicate
  }
  if (!found) {
    MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank, " chunk ", index,
              " of seq ", rs.table.ckpt_seq, " vanished mid-fetch");
    // Before stage A the restart can still degrade to scratch; after it
    // the restored watermarks already went out in Restart1 frames, and the
    // stripes pin the two newest tables on stable storage — a pinned chunk
    // disappearing is a protocol error.
    MPIV_CHECK(!rs.scalars_restored,
               "daemon: checkpoint chunk lost after restart stage A");
    restart_enter_scratch(ctx);
    return;
  }
  MPIV_CHECK(bytes.size() ==
                 chunk_len(rs.table.total_bytes, rs.table.chunk_size, index),
             "daemon: fetched chunk does not fit the table");
  MPIV_CHECK(hash64(bytes) == rs.table.hashes[index],
             "daemon: fetched chunk failed its content hash");
  std::copy(bytes.begin(), bytes.end(),
            rs.image.begin() +
                static_cast<std::ptrdiff_t>(index) * rs.table.chunk_size);
  stats_.ckpt_fetch_bytes += bytes.size();
  rs.have_chunk[index] = true;
  --rs.chunks_left;
  restart_check_stages(ctx);
}

void Daemon::restart_handle_cs_closed(sim::Context& ctx, std::size_t stripe) {
  Restart& rs = *restart_;
  if (rs.fetch == Restart::Fetch::kQuery) {
    if (rs.query_pending[stripe]) {
      rs.query_pending[stripe] = false;
      if (--rs.queries_left == 0) restart_pick_table(ctx);
    }
    return;
  }
  if (rs.fetch != Restart::Fetch::kChunks) return;
  const std::size_t nstripes = cs_conns_.size();
  bool owes = false;
  for (std::size_t i = 0; i < rs.have_chunk.size() && !owes; ++i) {
    owes = !rs.have_chunk[i] && rs.table.owner_of(i, nstripes) == stripe;
  }
  if (!owes) return;
  if (!rs.scalars_restored) {
    // Nothing restored yet: degrade to a scratch restart, exactly like the
    // serial path's mid-fetch stripe loss.
    MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank, " lost stripe ",
              stripe, " mid-fetch");
    restart_enter_scratch(ctx);
    return;
  }
  // Stage A already went out (Restart1 carried the restored watermarks),
  // so falling back to scratch would fork the protocol state. The stripes
  // write stable storage: wait for the reboot and refetch the missing
  // share from the main loop.
  MPIV_WARN("daemon", ctx.now(), "rank ", config_.rank, " lost stripe ",
            stripe, " mid-fetch after stage A; will refetch on its reboot");
  cs_retry_at_[stripe] = ctx.now() + config_.peer_retry;
}

void Daemon::restart_check_stages(sim::Context& ctx) {
  Restart& rs = *restart_;
  if (rs.fetch != Restart::Fetch::kChunks) return;
  // Contiguity of a byte range [lo, hi) in chunk space.
  auto have_range = [&rs](std::size_t lo, std::size_t hi) {
    if (lo >= hi) return true;
    std::size_t c0 = lo / rs.table.chunk_size;
    std::size_t c1 = (hi - 1) / rs.table.chunk_size;
    for (std::size_t c = c0; c <= c1; ++c) {
      if (!rs.have_chunk[c]) return false;
    }
    return true;
  };
  ConstBytes img(rs.image.data(), rs.image.size());
  if (!rs.layout_known &&
      have_range(rs.image.size() - kImageTrailerBytes, rs.image.size())) {
    rs.layout = read_image_layout(img);
    rs.layout_known = true;
  }
  if (rs.layout_known && !rs.scalars_restored &&
      have_range(rs.layout.scalars_begin(), rs.image.size())) {
    // Stage A: the image suffix holds the clocks and HS/HR watermarks.
    restore_scalars(img, rs.layout);
    rs.scalars_restored = true;
    has_stable_ckpt_ = true;  // the fetched image *is* stable storage
    last_stable_hr_ = hr_;
    last_stable_hashes_ = rs.table.hashes;  // delta base for the next upload
    MPIV_TRACE(config_.trace, TK::kCkptRestore,
               {.c2 = recv_clock_, .n = rs.table.ckpt_seq});
    MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
              " restored watermarks of checkpoint seq ", rs.table.ckpt_seq,
              " at delivery clock ", recv_clock_, " (stage A)");
    restart_on_scalars(ctx);
  }
  if (rs.scalars_restored && !rs.bulk_restored &&
      have_range(rs.layout.app_size, rs.image.size())) {
    // Stage B: SAVED + the undelivered arrival stash.
    restore_bulk(img, rs.layout);
    rs.bulk_restored = true;
    restart_on_bulk(ctx);
  }
  if (rs.chunks_left == 0) restart_image_done(ctx);
}

void Daemon::restart_on_scalars(sim::Context& ctx) {
  // Stage A join: the restored (or zero, on scratch) watermarks are
  // authoritative. Trace the audit baselines, open the restart windows,
  // fan Restart1 out to every connected peer and start the event download
  // — none of which needs the bulk image.
  for (mpi::Rank q = 0; q < config_.size; ++q) {
    if (q == config_.rank) continue;
    auto qi = static_cast<std::size_t>(q);
    MPIV_TRACE(config_.trace, TK::kWatermarks,
               {.peer = q, .c1 = hs_[qi], .c2 = hr_[qi]});
    awaiting_marker_[qi] = true;
  }
  for (mpi::Rank q = 0; q < config_.size; ++q) {
    if (q == config_.rank) continue;
    auto qi = static_cast<std::size_t>(q);
    if (peers_[qi] == nullptr) {
      // Eager fan-out: connect now instead of waiting out the lower-rank
      // peer's reconnect cadence — recovery stalls until every peer has
      // our Restart1 (it gates their SAVED resends). The Restart1 and
      // CkptNotify ride the connect (awaiting_marker_ is already set).
      connect_peer(ctx, q);
      continue;
    }
    Writer w;
    w.u8(static_cast<std::uint8_t>(PeerMsg::kRestart1));
    w.i64(hr_[qi]);
    MPIV_TRACE(config_.trace, TK::kRestart1Send, {.peer = q, .c1 = hr_[qi]});
    enqueue_control(q, w.take());
    if (has_stable_ckpt_) {
      Writer w2;
      w2.u8(static_cast<std::uint8_t>(PeerMsg::kCkptNotify));
      w2.i64(last_stable_hr_[qi]);
      MPIV_TRACE(config_.trace, TK::kCkptNotifySend,
                 {.peer = q, .c1 = last_stable_hr_[qi]});
      enqueue_control(q, w2.take());
    }
  }
  restart_issue_download(ctx);
}

void Daemon::restart_on_bulk(sim::Context& ctx) {
  Restart& rs = *restart_;
  // Stage B join: SAVED and the arrival stash are authoritative, so the
  // peer frames held back (Restart1 requests, resent payloads) can be
  // processed in their arrival order now.
  while (!rs.deferred.empty()) {
    Restart::DeferredFrame df = std::move(rs.deferred.front());
    rs.deferred.pop_front();
    // A frame from a replaced connection must not interleave with the live
    // stream (same rule as handle_net); the peer may have died or
    // reconnected while the frame waited.
    if (peers_[static_cast<std::size_t>(df.from)] != df.conn) continue;
    handle_peer_frame(ctx, df.from, std::move(df.frame));
  }
  if (rs.plan_merged) try_satisfy_app(ctx);
}

void Daemon::restart_image_done(sim::Context& ctx) {
  Restart& rs = *restart_;
  rs.fetch = Restart::Fetch::kDone;
  stats_.ckpt_fetch_ns += static_cast<std::uint64_t>(ctx.now() - rs.fetch_t0);
  SharedBuffer whole{std::move(rs.image)};
  app_restart_image_ = whole.slice(0, rs.layout.app_size);
  have_restart_image_ = true;
  MPIV_TRACE(config_.trace, TK::kRestartPhaseEnd,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kFetch),
              .n = stats_.ckpt_fetch_bytes});
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " restored checkpoint seq ", rs.table.ckpt_seq, " (",
            rs.have_chunk.size(), " chunks) at delivery clock ", recv_clock_);
  if (rs.app_image_waiting) {
    rs.app_image_waiting = false;
    Writer w = pipe_writer(PipeMsg::kImageR, ckpt_requested_);
    w.boolean(true);
    pipe_reply(ctx, std::move(w), app_restart_image_);
  }
  restart_maybe_finish(ctx);
}

void Daemon::restart_issue_download(sim::Context& ctx) {
  Restart& rs = *restart_;
  rs.download_issued = true;
  rs.download_t0 = ctx.now();
  rs.dl_pending.assign(el_conns_.size(), false);
  rs.dl_responded.assign(el_conns_.size(), false);
  MPIV_TRACE(config_.trace, TK::kRestartPhaseBegin,
             {.c3 = static_cast<std::int64_t>(trace::RestartPhase::kDownload)});
  Writer w;
  w.u8(static_cast<std::uint8_t>(ElMsg::kDownload));
  w.i64(recv_clock_);
  for (std::size_t i = 0; i < el_conns_.size(); ++i) {
    if (el_conns_[i] == nullptr || !el_synced_[i]) continue;
    el_conns_[i]->send(ctx, Buffer(w.buffer()));
    rs.dl_pending[i] = true;
  }
  // If fewer than a quorum are reachable right now, the backoff reconnect
  // path brings replicas back and el_sync() re-requests from them.
}

void Daemon::restart_handle_events(sim::Context& ctx, std::size_t replica,
                                   Reader& r) {
  Restart& rs = *restart_;
  if (!rs.download_issued || rs.plan_merged || rs.dl_responded[replica]) {
    return;  // late reply past the first-quorum merge: harmless
  }
  std::uint32_t n = r.u32();
  std::vector<ReceptionEvent> list;
  list.reserve(n);
  for (std::uint32_t k = 0; k < n; ++k) list.push_back(read_event(r));
  rs.dl_responded[replica] = true;
  rs.dl_pending[replica] = false;
  rs.dl_lists.push_back(std::move(list));
  // First-quorum merge: any f+1 responses cover the quorum-acked prefix,
  // so replay starts without waiting out the slowest replica.
  if (rs.dl_lists.size() >= el_quorum(el_conns_.size())) restart_merge(ctx);
}

void Daemon::restart_merge(sim::Context& ctx) {
  Restart& rs = *restart_;
  rs.plan_merged = true;
  stats_.restart_download_ns =
      static_cast<std::uint64_t>(ctx.now() - rs.download_t0);
  std::vector<std::vector<ReceptionEvent>> lists = std::move(rs.dl_lists);
  rs.dl_lists.clear();
  adopt_merged_events(ctx, merge_event_logs(lists), lists.size());
  if (restart_->bulk_restored) try_satisfy_app(ctx);
  restart_maybe_finish(ctx);
}

void Daemon::restart_maybe_finish(sim::Context& ctx) {
  (void)ctx;
  if (!restart_.has_value()) return;
  const Restart& rs = *restart_;
  if (rs.fetch != Restart::Fetch::kDone || !rs.plan_merged ||
      !rs.bulk_restored || rs.app_image_waiting || !rs.deferred.empty()) {
    return;
  }
  // Every overlapped stage joined; replay (if any) drains from the normal
  // main-loop machinery exactly as it does after a serial setup.
  restart_.reset();
}

void Daemon::connect_peer(sim::Context& ctx, mpi::Rank q) {
  if (peers_[static_cast<std::size_t>(q)] != nullptr) return;
  net::Address addr = config_.peer_addrs[static_cast<std::size_t>(q)];
  net::Conn* c = net_.connect(ctx, *endpoint_, addr);
  if (c == nullptr) {
    // Peer not up (yet) — or restarted on a different node. Ask the
    // dispatcher where the rank lives now, then retry from the main loop.
    if (disp_conn_ != nullptr) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(CtlMsg::kWhereIs));
      w.i32(q);
      disp_conn_->send(ctx, w.take());
    }
    reconnect_at_[static_cast<std::size_t>(q)] = ctx.now() + config_.peer_retry;
    return;
  }
  c->user_tag = static_cast<std::uint64_t>(q);
  peers_[static_cast<std::size_t>(q)] = c;
  reassembly_[static_cast<std::size_t>(q)].clear();
  reconnect_at_[static_cast<std::size_t>(q)] = -1;
  Writer hello;
  hello.u8(static_cast<std::uint8_t>(PeerMsg::kHello));
  hello.i32(config_.rank);
  hello.i32(config_.incarnation);
  c->send(ctx, hello.take());
  if (awaiting_marker_[static_cast<std::size_t>(q)]) {
    // (Re-)request the resend pass; the flag clears at q's ResendDone so a
    // crash of q mid-pass triggers a fresh Restart1 to its next incarnation.
    Writer w;
    w.u8(static_cast<std::uint8_t>(PeerMsg::kRestart1));
    w.i64(hr_[static_cast<std::size_t>(q)]);
    MPIV_TRACE(config_.trace, TK::kRestart1Send,
               {.peer = q, .c1 = hr_[static_cast<std::size_t>(q)]});
    enqueue_control(q, w.take());
  }
  if (has_stable_ckpt_) {
    // Advertise our stable checkpoint on every outbound (re)connect, the
    // mirror of the inbound-Hello side: the peer may have missed the
    // notify while disconnected and its sender log GC depends on it.
    Writer w;
    w.u8(static_cast<std::uint8_t>(PeerMsg::kCkptNotify));
    w.i64(last_stable_hr_[static_cast<std::size_t>(q)]);
    MPIV_TRACE(config_.trace, TK::kCkptNotifySend,
               {.peer = q, .c1 = last_stable_hr_[static_cast<std::size_t>(q)]});
    enqueue_control(q, w.take());
  }
}

// --------------------------------------------------------------- main loop

void Daemon::run(sim::Context& ctx) {
  // The Daemon object outlives its fiber (the runtime keeps it for stats),
  // so network resources must be torn down when the fiber exits — whether
  // normally or unwinding through ProcessKilled. Destroying the endpoint
  // closes every connection (the failure detector) and frees the port for
  // the next incarnation.
  struct Teardown {
    Daemon& d;
    ~Teardown() {
      d.endpoint_.reset();
      d.peers_.assign(d.peers_.size(), nullptr);
      d.cs_conns_.assign(d.cs_conns_.size(), nullptr);
      d.el_conns_.assign(d.el_conns_.size(), nullptr);
      d.sched_conn_ = d.disp_conn_ = nullptr;
    }
  } teardown{*this};

  MPIV_TRACE(config_.trace, TK::kSpawn, {.flag = config_.incarnation > 0});
  setup(ctx);
  sim::Notifier notifier(net_.engine());
  endpoint_->set_notifier(&notifier);
  pipe_.daemon_end().set_notifier(&notifier);

  while (!shutdown_) {
    bool worked = false;
    while (!setup_backlog_.empty()) {
      net::NetEvent ev = std::move(setup_backlog_.front());
      setup_backlog_.pop_front();
      handle_net(ctx, std::move(ev));
      worked = true;
    }
    if (auto ev = endpoint_->poll(ctx)) {
      handle_net(ctx, std::move(*ev));
      worked = true;
    }
    if (auto msg = pipe_.daemon_end().try_recv()) {
      handle_pipe(ctx, std::move(*msg));
      worked = true;
    }
    // Reconnect attempts that are due. Lower ranks appear here only while
    // an eager restart fan-out still owes them a Restart1.
    for (mpi::Rank q = 0; q < config_.size; ++q) {
      if (q == config_.rank) continue;
      SimTime due = reconnect_at_[static_cast<std::size_t>(q)];
      if (due >= 0 && ctx.now() >= due &&
          peers_[static_cast<std::size_t>(q)] == nullptr) {
        connect_peer(ctx, q);
        worked = true;
      }
    }
    for (std::size_t i = 0; i < el_conns_.size(); ++i) {
      if (el_conns_[i] == nullptr && el_reconnect_at_[i] >= 0 &&
          ctx.now() >= el_reconnect_at_[i]) {
        reconnect_el(ctx, i);
        worked = true;
      }
    }
    // Post-stage-A chunk refetches toward rebooted stripes (the overlapped
    // restart cannot degrade to scratch once Restart1 carried restored
    // watermarks — see restart_handle_cs_closed).
    if (restart_.has_value() && restart_->fetch == Restart::Fetch::kChunks) {
      for (std::size_t s = 0; s < cs_retry_at_.size(); ++s) {
        if (cs_retry_at_[s] < 0 || ctx.now() < cs_retry_at_[s]) continue;
        worked = true;
        net::Conn* c = cs_conns_[s];
        if (c == nullptr) {
          c = net_.connect(ctx, *endpoint_, config_.ckpt_servers[s]);
          if (c == nullptr) {
            MPIV_CHECK(ctx.now() < restart_t0_ + config_.connect_timeout,
                       "daemon: checkpoint stripe unreachable during restart "
                       "fetch (stage A already restored)");
            cs_retry_at_[s] = ctx.now() + config_.peer_retry;
            continue;
          }
          c->user_tag = kTagCsBase + s;
          cs_conns_[s] = c;
        }
        cs_retry_at_[s] = -1;
        // Re-request the stripe's missing share, tail-first.
        const std::size_t nstripes = cs_conns_.size();
        for (std::size_t i = restart_->have_chunk.size(); i-- > 0;) {
          if (restart_->have_chunk[i] ||
              restart_->table.owner_of(i, nstripes) != s) {
            continue;
          }
          Writer w;
          w.u8(static_cast<std::uint8_t>(CsMsg::kFetchChunk));
          w.i32(config_.rank);
          w.u64(restart_->table.ckpt_seq);
          w.u32(static_cast<std::uint32_t>(i));
          c->send(ctx, w.take());
        }
      }
    }
    if (!worked) worked = advance_tx(ctx);
    if (!worked) worked = advance_ckpt(ctx);
    if (worked || shutdown_) continue;

    // Nothing to do: park on (notifier | window space | reconnect timer).
    sim::Process& proc = ctx.self();
    std::uint64_t token = proc.wake_token();
    notifier.arm(proc, token);
    SimTime deadline = -1;
    for (mpi::Rank q = 0; q < config_.size; ++q) {
      auto qi = static_cast<std::size_t>(q);
      if (!tx_[qi].empty() && peers_[qi] != nullptr) {
        peers_[qi]->add_window_waiter(proc, token);
      }
      if (reconnect_at_[qi] >= 0 && peers_[qi] == nullptr) {
        deadline = deadline < 0 ? reconnect_at_[qi]
                                : std::min(deadline, reconnect_at_[qi]);
      }
    }
    for (std::size_t i = 0; i < el_conns_.size(); ++i) {
      if (el_conns_[i] == nullptr && el_reconnect_at_[i] >= 0) {
        deadline = deadline < 0 ? el_reconnect_at_[i]
                                : std::min(deadline, el_reconnect_at_[i]);
      }
    }
    for (SimTime due : cs_retry_at_) {
      if (due >= 0) deadline = deadline < 0 ? due : std::min(deadline, due);
    }
    if (ckpt_.has_value()) {
      // An upload may be blocked on stripe-server window space alone.
      for (net::Conn* c : cs_conns_) {
        if (c != nullptr) c->add_window_waiter(proc, token);
      }
    }
    std::optional<sim::EventId> timer;
    if (deadline >= 0) {
      timer = net_.engine().schedule_at(
          std::max(deadline, ctx.now()), [&proc, token] { proc.unpark(token); });
    }
    proc.park();
    if (timer) net_.engine().cancel(*timer);
  }
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank, " shut down");
}

// --------------------------------------------------------------- pipe side

void Daemon::pipe_reply(sim::Context& ctx, Writer w) {
  pipe_.daemon_end().send(ctx, w.take());
}

void Daemon::pipe_reply(sim::Context& ctx, Writer w, SharedBuffer payload) {
  pipe_.daemon_end().send(ctx, net::PipeFrame(w.take(), std::move(payload)));
}

void Daemon::charge_copy(sim::Context& ctx, std::size_t n) {
  if (n == 0) return;
  stats_.bytes_copied += n;
  ctx.sleep(transfer_time(n, net_.params().memcpy_bandwidth_bps));
}

void Daemon::handle_pipe(sim::Context& ctx, net::PipeFrame frame) {
  Reader r(frame.head);
  PipeHeader h = read_pipe_header(r);
  switch (h.type) {
    case PipeMsg::kInit: {
      Writer w = pipe_writer(PipeMsg::kInitOk, ckpt_requested_);
      w.i32(config_.rank);
      w.i32(config_.size);
      pipe_reply(ctx, std::move(w));
      return;
    }
    case PipeMsg::kFinish: {
      // Nothing sends after finalize; push any coalesced events out now so
      // the log is complete at shutdown.
      flush_el(ctx);
      MPIV_TRACE(config_.trace, TK::kFinish, {});
      pipe_reply(ctx, pipe_writer(PipeMsg::kFinishOk, false));
      if (disp_conn_ != nullptr) {
        Writer w;
        w.u8(static_cast<std::uint8_t>(CtlMsg::kDone));
        w.i32(config_.rank);
        disp_conn_->send(ctx, w.take());
      } else {
        shutdown_ = true;  // standalone mode: no dispatcher to wait for
      }
      return;
    }
    case PipeMsg::kBsend: {
      // One-way from the app; no reply (see V2Device::bsend). The payload
      // rides the frame as a shared slice — no decode copy.
      mpi::Rank dest = r.i32();
      if (config_.legacy_datapath) {
        // Old path copied the block out of the pipe blob.
        charge_copy(ctx, frame.payload.size());
        stats_.payload_copies_tx += 1;
      }
      send_event(ctx, dest, std::move(frame.payload));
      return;
    }
    case PipeMsg::kBrecv: {
      app_waiting_brecv_ = true;
      try_satisfy_app(ctx);
      return;
    }
    case PipeMsg::kNprobe: {
      app_waiting_probe_ = true;
      try_satisfy_app(ctx);
      return;
    }
    case PipeMsg::kCkptImage: {
      begin_checkpoint(ctx, std::move(frame.payload));
      // Non-blocking capture (the default): the app resumed the moment the
      // image crossed the pipe; only the legacy blocking mode expects an
      // acknowledgement.
      if (config_.full_image_ckpt) {
        pipe_reply(ctx, pipe_writer(PipeMsg::kCkptOk, false));
      }
      return;
    }
    case PipeMsg::kGetImage: {
      if (restart_.has_value() && restart_->fetch != Restart::Fetch::kDone) {
        // The overlapped striped fetch is still assembling the image; the
        // app blocks on kImageR, so reply when the last chunk lands (see
        // restart_image_done / restart_enter_scratch).
        restart_->app_image_waiting = true;
        return;
      }
      Writer w = pipe_writer(PipeMsg::kImageR, ckpt_requested_);
      w.boolean(have_restart_image_);
      pipe_reply(ctx, std::move(w), app_restart_image_);
      return;
    }
    default:
      throw ProtocolError("daemon: unexpected pipe message");
  }
}

// --------------------------------------------------------------- protocol

void Daemon::send_event(sim::Context& ctx, mpi::Rank dest, SharedBuffer block) {
  // Failed probes are nondeterministic events; make any unlogged ones
  // durable before this send leaves (the appendix's UnDetAction LOG +
  // WAITLOGGED, batched to at most one event per send).
  // While the replay plan is still downloading (overlapped restart), the
  // log position is unknowable — the batch for any pre-merge send is
  // appended at merge time instead (see adopt_merged_events).
  if (replay_.empty() && !restore_pending() &&
      probes_since_delivery_ > probes_logged_) {
    ReceptionEvent batch;
    batch.kind = ReceptionEvent::Kind::kProbeBatch;
    batch.recv_clock = recv_clock_ + 1;
    batch.nprobes = probes_since_delivery_;
    el_outbox_.push_back(batch);
    probes_logged_ = probes_since_delivery_;
    flush_el(ctx);
  }
  ++send_clock_;
  Clock clock = send_clock_;
  MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " send@", clock, " -> ",
             dest, " h=", fnv1a(block.view()) & 0xffff,
             (clock <= hs_[static_cast<std::size_t>(dest)] ? " SUPPRESSED" : ""));
  stats_.sent_msgs += 1;
  stats_.sent_bytes += block.size();
  auto di = static_cast<std::size_t>(dest);
  if (clock > hs_[di]) {
    hs_[di] = clock;
    enqueue_msg(ctx, dest, clock, block);
  } else {
    // Replay suppression (clock <= HS): the receiver already has this
    // message, so nothing is queued.
    MPIV_TRACE(config_.trace, TK::kSendSuppressed,
               {.peer = dest, .c1 = clock, .c2 = hs_[di]});
    stats_.suppressed_sends += 1;
  }
  // Record in SAVED either way, so a *future* crash of the receiver can
  // still be served (closes a hole in the paper's simplified protocol).
  // The entry shares the allocation with the queued frame — no copy.
  saved_.record(dest, clock, std::move(block));
  if (config_.trace_mutation == trace::Mutation::kPruneSavedEarly &&
      !mut_prune_done_ && saved_.count_for(dest) >= 4) {
    // TEST ONLY: drop the oldest SAVED entry toward `dest` without any
    // covering CkptNotify — a GC-safety violation the auditor must flag.
    mut_prune_done_ = true;
    auto entries = saved_.entries_after(dest, 0);
    Clock oldest = entries.front()->clock;
    saved_.prune(dest, oldest);
    MPIV_TRACE(config_.trace, TK::kGcPrune,
               {.peer = dest, .c1 = oldest, .n = 1});
  }
}

void Daemon::enqueue_control(mpi::Rank q, Buffer frame) {
  tx_[static_cast<std::size_t>(q)].push_back(
      OutFrame{false, std::move(frame), {}, 0});
}

void Daemon::enqueue_msg(sim::Context& ctx, mpi::Rank q, Clock clock,
                         SharedBuffer block) {
  // Coalesced reception events must be on their way before a frame can be
  // gated on them, or WAITLOGGED would wait forever.
  flush_el(ctx);
  if (config_.legacy_datapath) {
    // Old path materialized the encoded MsgRecord per queued frame.
    charge_copy(ctx, kMsgRecordHeaderBytes + block.size());
    stats_.payload_copies_tx += 1;
  }
  OutFrame f;
  f.is_msg = true;
  f.head = encode_msg_record_header(clock, block.size());
  f.payload = std::move(block);
  f.required_events = el_events_created();
  f.clock = clock;
  // A frame issued while the replay plan is still downloading cannot know
  // its true gate (the merged log supersedes el_events_created() == 0):
  // hold it until adopt_merged_events patches the requirement.
  f.gate_pending_merge = restart_.has_value() && !restart_->plan_merged;
  MPIV_TRACE(config_.trace, TK::kSendIssued,
             {.peer = q, .c1 = clock, .n = f.required_events});
  tx_[static_cast<std::size_t>(q)].push_back(std::move(f));
}

void Daemon::enqueue_saved_resend(sim::Context& ctx, mpi::Rank q, Clock after) {
  std::vector<const SenderLog::Entry*> entries = saved_.entries_after(q, after);
  if (entries.empty()) return;
  if (config_.legacy_datapath) {
    // Old path shipped one frame per SAVED record.
    for (const SenderLog::Entry* e : entries) {
      enqueue_msg(ctx, q, e->clock, e->block);
    }
    return;
  }
  // Scatter-gather batching: whole records are greedily grouped until the
  // frame would exceed one wire chunk, so the backlog ships in O(frames)
  // sends instead of O(messages). Shares the logged allocations; a resend
  // pass still costs no payload copies at enqueue time.
  flush_el(ctx);  // events must be on their way before frames gate on them
  const std::uint64_t required = el_events_created();
  const bool pending_merge = restart_.has_value() && !restart_->plan_merged;
  const std::size_t limit = net_.params().daemon_chunk_bytes;
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    std::size_t bytes = 0;
    while (j < entries.size()) {
      std::size_t rec = kResendRecordHeaderBytes + entries[j]->block.size();
      if (j > i && bytes + rec > limit) break;
      bytes += rec;
      ++j;
    }
    if (j == i + 1 && bytes > limit) {
      // Too big to share a frame: the chunked single-record path handles it.
      enqueue_msg(ctx, q, entries[i]->clock, entries[i]->block);
      i = j;
      continue;
    }
    OutFrame f;
    f.is_msg = true;
    Writer h;
    h.u8(static_cast<std::uint8_t>(PeerMsg::kResendBatch));
    h.u32(static_cast<std::uint32_t>(j - i));
    for (std::size_t k = i; k < j; ++k) {
      h.i64(entries[k]->clock);
      h.u32(static_cast<std::uint32_t>(entries[k]->block.size()));
      f.batch.push_back(entries[k]->block);
      f.batch_clocks.push_back(entries[k]->clock);
      MPIV_TRACE(config_.trace, TK::kSendIssued,
                 {.peer = q, .c1 = entries[k]->clock, .n = required});
    }
    f.head = h.take();
    f.required_events = required;
    f.gate_pending_merge = pending_merge;
    f.clock = f.batch_clocks.back();
    tx_[static_cast<std::size_t>(q)].push_back(std::move(f));
    i = j;
  }
}

bool Daemon::advance_tx(sim::Context& ctx) {
  const std::uint32_t chunk = net_.params().daemon_chunk_bytes;
  for (mpi::Rank i = 0; i < config_.size; ++i) {
    mpi::Rank q = (rr_next_ + i) % config_.size;
    auto qi = static_cast<std::size_t>(q);
    if (tx_[qi].empty()) continue;
    net::Conn* c = peers_[qi];
    if (c == nullptr) {
      // No connection (not yet established, or peer down): keep the frames
      // queued. On a peer *death* the Closed handler clears this queue —
      // payloads live in SAVED and are re-requested via RESTART1.
      continue;
    }
    OutFrame& f = tx_[qi].front();
    // WAITLOGGED: hold the frame until the events that preceded this send
    // action are logged on a quorum of the replicas. A frame issued before
    // the replay-plan merge holds unconditionally (its requirement is still
    // a placeholder — see adopt_merged_events).
    if (f.is_msg && config_.gate_sends &&
        (f.gate_pending_merge || el_quorum_acked_ < f.required_events)) {
      if (!f.quorum_wait_counted) {
        f.quorum_wait_counted = true;
        stats_.el_quorum_waits += 1;
        MPIV_TRACE(config_.trace, TK::kStallStart,
                   {.peer = q,
                    .c1 = f.clock,
                    .c2 = static_cast<std::int64_t>(el_quorum_acked_),
                    .n = f.required_events});
      }
      // TEST ONLY: kSkipWaitLogged transmits anyway — an orphan-creating
      // WAITLOGGED breach the auditor must catch from the honest counters
      // recorded at departure.
      if (config_.trace_mutation != trace::Mutation::kSkipWaitLogged) {
        continue;
      }
    }
    if (!c->writable()) continue;
    if (config_.incarnation > 0 && !restart_ttfs_done_) {
      // Time-to-first-send: the first frame of any kind leaving for a peer
      // after a restart (typically Restart1 out of stage A).
      restart_ttfs_done_ = true;
      stats_.restart_ttfs_ns =
          static_cast<std::uint64_t>(ctx.now() - restart_t0_);
    }
    rr_next_ = (q + 1) % config_.size;
    if (!f.is_msg) {
      Buffer frame = std::move(f.head);
      tx_[qi].pop_front();
      c->send(ctx, std::move(frame));
      return true;
    }
    if (f.is_batch()) {
      // Gathered resend frame: one wire send for the whole group. Each
      // payload is copied once into the frame (the same per-byte charge the
      // chunked path pays) but the per-message overhead is paid per frame.
      Writer w(std::move(f.head));
      std::size_t bytes = 0;
      for (const SharedBuffer& b : f.batch) {
        w.raw(b.data(), b.size());
        bytes += b.size();
      }
      stats_.payload_copies_tx += f.batch.size();
      stats_.resend_batches += 1;
      stats_.resend_batched_msgs += f.batch.size();
      for (Clock bc : f.batch_clocks) {
        MPIV_TRACE(config_.trace, TK::kSendWire,
                   {.peer = q,
                    .c1 = bc,
                    .c2 = static_cast<std::int64_t>(el_quorum_acked_),
                    .n = f.required_events,
                    .flag = f.quorum_wait_counted});
      }
      if (f.quorum_wait_counted) {
        MPIV_TRACE(config_.trace, TK::kStallEnd, {.peer = q, .c1 = f.clock});
      }
      Buffer out = w.take();
      tx_[qi].pop_front();
      charge_copy(ctx, out.size());
      c->send(ctx, std::move(out));
      return true;
    }
    // Chunked payload frame: [kMsgPart][last][slice of header+payload].
    // The slice is gathered straight from the record header and the shared
    // payload into the wire message — the datapath's one TX copy.
    const std::size_t total = f.total_size();
    std::size_t n = std::min<std::size_t>(chunk, total - f.offset);
    bool last = (f.offset + n == total);
    Writer w;
    w.u8(static_cast<std::uint8_t>(PeerMsg::kMsgPart));
    w.boolean(last);
    std::size_t head_n = 0;
    if (f.offset < f.head.size()) {
      head_n = std::min(n, f.head.size() - f.offset);
      w.raw(f.head.data() + f.offset, head_n);
    }
    ConstBytes tail;
    // Keep the payload alive across send(): a Closed event arriving while
    // the sending fiber sleeps clears this tx_ queue.
    SharedBuffer payload = f.payload;
    if (n > head_n) {
      std::size_t poff = f.offset + head_n - f.head.size();
      tail = payload.view().subspan(poff, n - head_n);
    }
    f.offset += n;
    if (last) {
      stats_.payload_copies_tx += 1;
      if (f.quorum_wait_counted) {
        MPIV_TRACE(config_.trace, TK::kStallEnd, {.peer = q, .c1 = f.clock});
      }
      MPIV_TRACE(config_.trace, TK::kSendWire,
                 {.peer = q,
                  .c1 = f.clock,
                  .c2 = static_cast<std::int64_t>(el_quorum_acked_),
                  .n = f.required_events,
                  .flag = f.quorum_wait_counted});
      tx_[qi].pop_front();
    }
    charge_copy(ctx, n);
    c->send(ctx, w.take(), tail);
    return true;
  }
  return false;
}

void Daemon::flush_el(sim::Context& ctx) {
  if (el_outbox_.empty()) return;
  // Adopt the batch into our log unconditionally — replicas that are down
  // catch up from el_log_ on reconnect, and the quorum gate holds any send
  // that depends on these events until a majority acked them.
  stats_.events_logged += el_outbox_.size();
  stats_.el_appends += 1;
  for (const ReceptionEvent& e : el_outbox_) {
    MPIV_TRACE(config_.trace, TK::kElAppend,
               {.peer = e.sender,
                .c1 = e.send_clock,
                .c2 = e.recv_clock,
                .c3 = static_cast<std::int64_t>(el_log_base_ + el_log_.size()),
                .flag = e.kind == ReceptionEvent::Kind::kProbeBatch});
    el_log_.push_back(e);
  }
  el_appended_ = el_log_base_ + el_log_.size();
  el_outbox_.clear();
  for (std::size_t i = 0; i < el_conns_.size(); ++i) {
    if (el_conns_[i] == nullptr || !el_synced_[i]) continue;
    el_catch_up(ctx, i);
  }
}

void Daemon::try_satisfy_app(sim::Context& ctx) {
  // Overlapped restart with the replay plan or the bulk image still in
  // flight: nothing may be answered yet — a fresh delivery now could
  // contradict the logged order the merge is about to impose.
  if (restore_pending()) return;
  // Fully-consumed probe batches step aside (their count was reached).
  // Their probes are already durable — remember that, or the next send
  // would append a duplicate batch the logger's monotonic store rejects.
  while (!replay_.empty() &&
         replay_.front().kind == ReceptionEvent::Kind::kProbeBatch &&
         probes_since_delivery_ >= replay_.front().nprobes) {
    probes_logged_ = std::max(probes_logged_, replay_.front().nprobes);
    replay_.pop_front();
  }
  if (replay_.empty()) note_replay_drained(ctx);
  if (app_waiting_probe_) {
    if (replaying()) {
      const ReceptionEvent& e = replay_.front();
      if (probes_since_delivery_ < e.nprobes) {
        ++probes_since_delivery_;
        app_waiting_probe_ = false;
        MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " probe->false(R) n=",
                   probes_since_delivery_, "/", e.nprobes);
        Writer w = pipe_writer(PipeMsg::kProbeR, ckpt_requested_);
        w.boolean(false);
        pipe_reply(ctx, std::move(w));
      } else {
        // The original probe at this point succeeded; answer true once the
        // replayed payload is actually here (otherwise stay pending).
        auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                               [&e](const Arrival& a) {
                                 return a.from == e.sender &&
                                        a.send_clock == e.send_clock;
                               });
        if (it != arrivals_.end()) {
          app_waiting_probe_ = false;
          MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " probe->true(R)");
          Writer w = pipe_writer(PipeMsg::kProbeR, ckpt_requested_);
          w.boolean(true);
          pipe_reply(ctx, std::move(w));
        }
      }
    } else {
      bool pending = next_deliverable() != arrivals_.end();
      if (!pending) ++probes_since_delivery_;
      app_waiting_probe_ = false;
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " probe->",
                 pending ? "true" : "false", " n=", probes_since_delivery_);
      Writer w = pipe_writer(PipeMsg::kProbeR, ckpt_requested_);
      w.boolean(pending);
      pipe_reply(ctx, std::move(w));
    }
  }
  if (app_waiting_brecv_) {
    if (replaying() &&
        replay_.front().kind == ReceptionEvent::Kind::kDelivery) {
      const ReceptionEvent& e = replay_.front();
      auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                             [&e](const Arrival& a) {
                               return a.from == e.sender &&
                                      a.send_clock == e.send_clock;
                             });
      if (it != arrivals_.end()) {
        Arrival a = std::move(*it);
        arrivals_.erase(it);
        app_waiting_brecv_ = false;
        deliver_to_app(ctx, std::move(a), /*replayed=*/true);
      }
    } else if (!replaying()) {
      // (While a probe batch heads the replay list, the app must consume
      // its probes first; a blocking receive here would be a PWD breach.)
      auto it = next_deliverable();
      if (it != arrivals_.end()) {
        Arrival a = std::move(*it);
        arrivals_.erase(it);
        app_waiting_brecv_ = false;
        deliver_to_app(ctx, std::move(a), /*replayed=*/false);
      }
    }
  }
}

std::deque<Daemon::Arrival>::iterator Daemon::next_deliverable() {
  // A fresh message from q is deliverable only once q's resend pass (if
  // any) completed: before the ResendDone marker, an older message of q
  // might still be on its way, and delivering out of send order would
  // break MPI's non-overtaking guarantee.
  for (auto it = arrivals_.begin(); it != arrivals_.end(); ++it) {
    if (!awaiting_marker_[static_cast<std::size_t>(it->from)]) return it;
  }
  return arrivals_.end();
}

void Daemon::deliver_to_app(sim::Context& ctx, Arrival arrival, bool replayed) {
  ++recv_clock_;
  MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " deliver@", recv_clock_,
             " from ", arrival.from, "@", arrival.send_clock, " h=",
             fnv1a(arrival.block.view()) & 0xffff, replayed ? " REPLAY" : "");
  if (replayed) {
    const ReceptionEvent& e = replay_.front();
    // (The kReplayOutOfOrder mutation deliberately diverges; keep the run
    // alive so the offline auditor — not this check — reports it.)
    MPIV_CHECK(recv_clock_ == e.recv_clock ||
                   config_.trace_mutation == trace::Mutation::kReplayOutOfOrder,
               "replay diverged: delivery clock does not match the log "
               "(piecewise determinism violated?)");
    replay_.pop_front();
    stats_.replayed_deliveries += 1;
    stats_.replayed_bytes += arrival.block.size();
    note_replay_drained(ctx);
  } else {
    // Coalescing: the event stays in the outbox until the next send (or
    // checkpoint / finalize) flushes it. Losing an unflushed event in a
    // crash is safe precisely because no send depended on it — the
    // delivery is simply re-executed, which pessimistic logging permits.
    el_outbox_.push_back(ReceptionEvent{ReceptionEvent::Kind::kDelivery,
                                        arrival.from, arrival.send_clock,
                                        recv_clock_, probes_since_delivery_});
  }
  MPIV_TRACE(config_.trace, TK::kDeliver,
             {.peer = arrival.from,
              .c1 = arrival.send_clock,
              .c2 = recv_clock_,
              .n = probes_since_delivery_,
              .flag = replayed});
  probes_since_delivery_ = 0;
  probes_logged_ = 0;
  Writer w = pipe_writer(PipeMsg::kDeliver, ckpt_requested_);
  w.i32(arrival.from);
  if (config_.legacy_datapath) {
    // Old path wrote the block into the pipe message as a blob.
    charge_copy(ctx, arrival.block.size());
    stats_.payload_copies_rx += 1;
    if (!replayed) flush_el(ctx);  // one append per delivery
  }
  pipe_reply(ctx, std::move(w), std::move(arrival.block));
}

// --------------------------------------------------------------- network side

void Daemon::handle_net(sim::Context& ctx, net::NetEvent ev) {
  switch (ev.type) {
    case net::NetEvent::Type::kAccepted:
      return;  // identity arrives with the Hello
    case net::NetEvent::Type::kClosed: {
      std::uint64_t tag = ev.conn->user_tag;
      if (tag < static_cast<std::uint64_t>(config_.size)) {
        auto q = static_cast<mpi::Rank>(tag);
        auto qi = static_cast<std::size_t>(q);
        if (peers_[qi] == ev.conn) {
          peers_[qi] = nullptr;
          reassembly_[qi].clear();
          tx_[qi].clear();
          // Higher ranks are ours to re-initiate; a lower rank only while
          // we still owe it a Restart1 pass (the eager restart fan-out) —
          // in steady state the lower rank initiates.
          if (q > config_.rank || awaiting_marker_[qi]) {
            reconnect_at_[qi] = ctx.now() + config_.peer_retry;
          }
        }
      } else if (tag >= kTagElBase && tag < kTagElBase + el_conns_.size() &&
                 el_conns_[tag - kTagElBase] == ev.conn) {
        // A replica died. The quorum gate and the backoff reconnect path
        // absorb the loss: sends keep flowing as long as a majority acks.
        el_drop(ctx, tag - kTagElBase);
      } else if (tag >= kTagCsBase && tag < kTagCsBase + cs_conns_.size() &&
                 cs_conns_[tag - kTagCsBase] == ev.conn) {
        // A checkpoint stripe is gone: abandon any upload in flight (the
        // image never went stable, so nothing was pruned); the node keeps
        // computing and reconnects at the next checkpoint order.
        cs_conns_[tag - kTagCsBase] = nullptr;
        if (restart_.has_value()) {
          restart_handle_cs_closed(ctx, tag - kTagCsBase);
        }
        if (ckpt_.has_value()) abandon_ckpt(ctx);
        ckpt_requested_ = false;
      } else if (ev.conn == sched_conn_) {
        sched_conn_ = nullptr;
      } else if (ev.conn == disp_conn_) {
        disp_conn_ = nullptr;
      }
      return;
    }
    case net::NetEvent::Type::kData:
      break;
  }
  std::uint64_t tag = ev.conn->user_tag;
  if (tag >= kTagElBase && tag < kTagElBase + el_conns_.size()) {
    // Drop frames from a replaced replica connection (reconnect raced a
    // stale ack): only the live conn's traffic counts.
    if (el_conns_[tag - kTagElBase] != ev.conn) return;
    return handle_el(ctx, tag - kTagElBase, std::move(ev.data));
  }
  if (tag >= kTagCsBase && tag < kTagCsBase + cs_conns_.size()) {
    return handle_cs(ctx, tag - kTagCsBase, std::move(ev.data));
  }
  if (tag == kTagSched || tag == kTagDisp) {
    return handle_ctl(ctx, std::move(ev.data));
  }
  if (tag == ~0ull) {
    // First frame on an inbound connection must be a peer Hello.
    Reader r(ev.data);
    MPIV_CHECK(static_cast<PeerMsg>(r.u8()) == PeerMsg::kHello,
               "daemon: expected Hello on new connection");
    mpi::Rank q = r.i32();
    int incarnation = r.i32();
    (void)incarnation;
    auto qi = static_cast<std::size_t>(q);
    if (peers_[qi] != nullptr && peers_[qi] != ev.conn) {
      // Crossed simultaneous dials: the eager restart fan-out lets both ends
      // of a pair initiate at once (two co-restarting ranks, or a restarting
      // higher rank racing the lower rank's reconnect). Without a tie-break
      // each side replaces its conn with the other's and closes the one the
      // other side just adopted — the pair ping-pongs on the retry cadence
      // and never settles. Both sides deterministically keep the connection
      // the *lower* rank initiated. A stale conn can't reach here: a crash
      // aborts its links and the kClosed precedes the new incarnation's
      // Hello.
      if (config_.rank < q) {
        // Ours wins. Tag the rejected conn before closing so any frames it
        // flushed in flight fall to the replaced-connection guard below
        // instead of the expected-Hello check.
        ev.conn->user_tag = static_cast<std::uint64_t>(q);
        ev.conn->close();
        return;
      }
      peers_[qi]->close();
    }
    ev.conn->user_tag = static_cast<std::uint64_t>(q);
    peers_[qi] = ev.conn;
    reassembly_[qi].clear();
    if (awaiting_marker_[qi]) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(PeerMsg::kRestart1));
      w.i64(hr_[qi]);
      MPIV_TRACE(config_.trace, TK::kRestart1Send, {.peer = q, .c1 = hr_[qi]});
      enqueue_control(q, w.take());
    }
    if (has_stable_ckpt_) {
      // Re-advertise our stable checkpoint so the (possibly restarted) peer
      // can garbage collect its sender log.
      Writer w;
      w.u8(static_cast<std::uint8_t>(PeerMsg::kCkptNotify));
      w.i64(last_stable_hr_[qi]);
      MPIV_TRACE(config_.trace, TK::kCkptNotifySend,
                 {.peer = q, .c1 = last_stable_hr_[qi]});
      enqueue_control(q, w.take());
    }
    return;
  }
  // Frames from a replaced connection must not interleave with the live
  // stream: chunk reassembly assumes a single FIFO per peer.
  if (peers_[tag] != ev.conn) return;
  handle_peer_frame(ctx, static_cast<mpi::Rank>(tag), std::move(ev.data));
}

void Daemon::handle_peer_frame(sim::Context& ctx, mpi::Rank q, Buffer frame) {
  auto qi = static_cast<std::size_t>(q);
  if (restart_.has_value() && !restart_->bulk_restored) {
    // Overlapped restart with SAVED and the arrival stash not yet restored:
    // the frame's dedup and resend decisions need that state, so hold it
    // (in arrival order, per peer FIFO intact) until stage B — the
    // overlapped analogue of the serial path deferring everything behind
    // the synchronous setup.
    restart_->deferred.push_back({q, peers_[qi], std::move(frame)});
    return;
  }
  Reader r(frame);
  auto type = static_cast<PeerMsg>(r.u8());
  switch (type) {
    case PeerMsg::kHello:
      return;  // duplicate hello on an already-identified conn
    case PeerMsg::kMsgPart: {
      bool last = r.boolean();
      ConstBytes bytes = r.rest();
      Buffer& acc = reassembly_[qi];
      if (last && acc.empty() && !config_.legacy_datapath) {
        // Single-chunk fast path: the wire frame *is* the record. Adopt it
        // and decode in place — zero RX copies; the arrival (and later the
        // app delivery) alias the network buffer.
        SharedBuffer whole{std::move(frame)};
        handle_msg_record(ctx, q, decode_msg_record(whole.slice_of(bytes)));
        return;
      }
      charge_copy(ctx, bytes.size());  // reassembly pass
      acc.insert(acc.end(), bytes.begin(), bytes.end());
      if (last) {
        stats_.payload_copies_rx += 1;
        if (config_.legacy_datapath) {
          // Old path copied the payload back out of the record blob.
          charge_copy(ctx, acc.size());
          stats_.payload_copies_rx += 1;
        }
        SharedBuffer rec{std::move(acc)};
        acc = Buffer{};
        handle_msg_record(ctx, q, decode_msg_record(rec));
      }
      return;
    }
    case PeerMsg::kRestart1: {
      Clock hr = r.i64();
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " RESTART1 from ", q,
                 " hr=", hr);
      MPIV_TRACE(config_.trace, TK::kRestart1Recv, {.peer = q, .c1 = hr});
      hs_[qi] = hr;
      // Drop queued payload frames: the resend pass below re-covers them
      // from SAVED. A queued ResendDone must go with them — it belongs to a
      // previous pass (a duplicate Restart1 from a crossed reconnect), and
      // letting it sail ahead of payloads we just erased would advance the
      // peer's watermark past clocks it never received; the pass below
      // appends a fresh one. Other control frames (e.g. our own pending
      // Restart1 to q) must survive, and a partially-chunked payload must
      // finish so the peer's reassembly stream stays framed (the duplicate
      // is dropped by its clock-window dedup).
      auto& q_tx = tx_[qi];
      for (auto it = q_tx.begin(); it != q_tx.end();) {
        bool stale_done =
            !it->is_msg && it->offset == 0 && !it->head.empty() &&
            static_cast<PeerMsg>(it->head[0]) == PeerMsg::kResendDone;
        if ((it->is_msg && it->offset == 0) || stale_done) {
          it = q_tx.erase(it);
        } else {
          ++it;
        }
      }
      Writer w2;
      w2.u8(static_cast<std::uint8_t>(PeerMsg::kRestart2));
      w2.i64(hr_[qi]);
      MPIV_TRACE(config_.trace, TK::kRestart2Send, {.peer = q, .c1 = hr_[qi]});
      enqueue_control(q, w2.take());
      if (has_stable_ckpt_) {
        Writer w3;
        w3.u8(static_cast<std::uint8_t>(PeerMsg::kCkptNotify));
        w3.i64(last_stable_hr_[qi]);
        MPIV_TRACE(config_.trace, TK::kCkptNotifySend,
                   {.peer = q, .c1 = last_stable_hr_[qi]});
        enqueue_control(q, w3.take());
      }
      MPIV_TRACE(config_.trace, TK::kSavedResend,
                 {.peer = q, .c1 = hr, .n = saved_.entries_after(q, hr).size()});
      enqueue_saved_resend(ctx, q, hr);
      // Close the pass: everything we ever sent (clock <= h_) has now been
      // transmitted or re-transmitted on this connection.
      Writer w4;
      w4.u8(static_cast<std::uint8_t>(PeerMsg::kResendDone));
      w4.i64(send_clock_);
      MPIV_TRACE(config_.trace, TK::kResendDoneSend,
                 {.peer = q, .c1 = send_clock_});
      enqueue_control(q, w4.take());
      return;
    }
    case PeerMsg::kRestart2: {
      hs_[qi] = r.i64();
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " RESTART2 from ", q,
                 " hs=", hs_[qi]);
      MPIV_TRACE(config_.trace, TK::kRestart2Recv, {.peer = q, .c1 = hs_[qi]});
      return;
    }
    case PeerMsg::kCkptNotify: {
      Clock hr = r.i64();
      MPIV_TRACE(config_.trace, TK::kCkptNotifyRecv, {.peer = q, .c1 = hr});
      std::size_t before = saved_.count_for(q);
      saved_.prune(q, hr);
      std::size_t pruned = before - saved_.count_for(q);
      stats_.gc_pruned_entries += pruned;
      if (pruned > 0) {
        MPIV_TRACE(config_.trace, TK::kGcPrune,
                   {.peer = q, .c1 = hr, .n = pruned});
      }
      return;
    }
    case PeerMsg::kResendDone: {
      Clock marker = r.i64();
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " ResendDone from ",
                 q, " marker=", marker);
      MPIV_TRACE(config_.trace, TK::kResendDoneRecv,
                 {.peer = q, .c1 = marker});
      hr_[qi] = std::max(hr_[qi], marker);
      // Close the out-of-order window, but only forget clocks the watermark
      // now covers. Entries above the marker can be real: if q died mid-pass,
      // its *next* incarnation answers our re-issued Restart1 with an empty
      // log and marker 0 while a fresh high-clock message from the previous
      // incarnation still sits in arrivals_ — clearing its record here would
      // let the re-executed copy through as a duplicate delivery.
      prune_accept_window(q);
      awaiting_marker_[qi] = false;
      try_satisfy_app(ctx);
      return;
    }
    case PeerMsg::kResendBatch: {
      std::uint32_t n = r.u32();
      std::vector<std::pair<Clock, std::uint32_t>> heads;
      heads.reserve(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        Clock clock = r.i64();
        std::uint32_t len = r.u32();
        heads.emplace_back(clock, len);
      }
      // The payloads trail the record headers back to back; each record
      // aliases the wire frame — zero RX copies for the whole batch.
      ConstBytes rest = r.rest();
      SharedBuffer whole{std::move(frame)};
      std::size_t off = 0;
      for (auto [clock, len] : heads) {
        MPIV_CHECK(off + len <= rest.size(),
                   "daemon: resend batch payloads overrun the frame");
        MsgRecord rec;
        rec.send_clock = clock;
        rec.block = whole.slice_of(rest.subspan(off, len));
        off += len;
        handle_msg_record(ctx, q, std::move(rec));
      }
      MPIV_CHECK(off == rest.size(), "daemon: trailing bytes in resend batch");
      return;
    }
  }
  throw ProtocolError("daemon: unexpected peer frame");
}

void Daemon::prune_accept_window(mpi::Rank q) {
  auto qi = static_cast<std::size_t>(q);
  auto& win = accepted_[qi];
  win.erase(win.begin(), win.upper_bound(hr_[qi]));
}

void Daemon::handle_msg_record(sim::Context& ctx, mpi::Rank q, MsgRecord rec) {
  auto qi = static_cast<std::size_t>(q);
  if (rec.send_clock <= hr_[qi]) {
    MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " msg from ", q, "@",
               rec.send_clock, " DUP(below)");
    MPIV_TRACE(config_.trace, TK::kDupDrop,
               {.peer = q, .c1 = rec.send_clock, .c2 = hr_[qi]});
    stats_.duplicates_dropped += 1;
    return;
  }
  if (awaiting_marker_[qi]) {
    // Restart exchange in flight: arrivals may be out of clock order, so
    // deduplicate in the window without advancing the watermark.
    if (!accepted_[qi].insert(rec.send_clock).second) {
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " msg from ", q, "@",
                 rec.send_clock, " DUP(window)");
      MPIV_TRACE(config_.trace, TK::kDupDrop,
                 {.peer = q, .c1 = rec.send_clock, .c2 = hr_[qi], .flag = true});
      stats_.duplicates_dropped += 1;
      return;
    }
  } else {
    // Residual window entries (accepted above a ResendDone marker) still
    // identify messages we hold; the re-executed copy must not pass.
    if (accepted_[qi].count(rec.send_clock) != 0) {
      MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " msg from ", q, "@",
                 rec.send_clock, " DUP(window)");
      MPIV_TRACE(config_.trace, TK::kDupDrop,
                 {.peer = q, .c1 = rec.send_clock, .c2 = hr_[qi], .flag = true});
      stats_.duplicates_dropped += 1;
      return;
    }
    hr_[qi] = rec.send_clock;
    prune_accept_window(q);
  }
  MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " msg from ", q, "@",
             rec.send_clock);
  stats_.recv_msgs += 1;
  stats_.recv_bytes += rec.block.size();
  // Per-sender FIFO: during a restart exchange a resent (lower-clock)
  // message can arrive after a fresh straggler; insert in send-clock order
  // within the sender so app-level non-overtaking holds.
  auto pos = arrivals_.end();
  for (auto it = arrivals_.begin(); it != arrivals_.end(); ++it) {
    if (it->from == q && it->send_clock > rec.send_clock) {
      pos = it;
      break;
    }
  }
  arrivals_.insert(pos, Arrival{q, rec.send_clock, std::move(rec.block)});
  try_satisfy_app(ctx);
}

void Daemon::handle_el(sim::Context& ctx, std::size_t replica, Buffer msg) {
  Reader r(msg);
  auto type = static_cast<ElMsg>(r.u8());
  switch (type) {
    case ElMsg::kAck: {
      std::uint64_t next = r.u64();
      MPIV_CHECK(next <= el_appended_, "daemon: over-acked events");
      if (next > el_acked_r_[replica]) {
        el_acked_r_[replica] = next;
        MPIV_TRACE(config_.trace, TK::kElAck,
                   {.peer = static_cast<std::int32_t>(replica), .n = next});
        update_el_quorum();
      }
      return;
    }
    case ElMsg::kQueryR:
      el_sync(ctx, replica, r.u64());
      return;
    case ElMsg::kEvents:
      if (restart_.has_value()) {
        restart_handle_events(ctx, replica, r);
        return;
      }
      return;  // residue past the first-quorum merge: harmless
    default:
      throw ProtocolError("daemon: unexpected event-logger message");
  }
}

void Daemon::handle_cs(sim::Context& ctx, std::size_t stripe, Buffer msg) {
  Reader r(msg);
  auto type = static_cast<CsMsg>(r.u8());
  if (restart_.has_value() && type == CsMsg::kChunkInfo) {
    restart_handle_chunk_info(ctx, stripe, r);
    return;
  }
  if (restart_.has_value() && type == CsMsg::kChunk) {
    restart_handle_chunk(ctx, stripe, r);
    return;
  }
  if (type != CsMsg::kStoreOk) {
    // Residue of an aborted setup fetch (kChunk / kChunkInfo replies that
    // were pipelined before a stripe died): harmless, drop.
    MPIV_CHECK(type == CsMsg::kChunk || type == CsMsg::kChunkInfo ||
                   type == CsMsg::kImage,
               "daemon: unexpected checkpoint-server message");
    return;
  }
  std::uint64_t seq = r.u64();
  if (!ckpt_.has_value() || ckpt_->seq != seq) {
    // Ack for an upload we already abandoned (another stripe died first).
    MPIV_DEBUG("daemon", ctx.now(), "r", config_.rank, " stale StoreOk seq ",
               seq, " from stripe ", stripe);
    return;
  }
  if (config_.full_image_ckpt) {
    on_ckpt_stable(ctx, seq);
    return;
  }
  PendingCkpt& pc = *ckpt_;
  if (pc.acked_s[stripe] != 0) return;  // duplicate ack
  pc.acked_s[stripe] = 1;
  // Stable only once *every* stripe holds its share of the image.
  if (++pc.acks == pc.acked_s.size()) on_ckpt_stable(ctx, seq);
}

void Daemon::handle_ctl(sim::Context& ctx, Buffer msg) {
  Reader r(msg);
  auto type = static_cast<CtlMsg>(r.u8());
  switch (type) {
    case CtlMsg::kShutdown:
      shutdown_ = true;
      return;
    case CtlMsg::kStatusReq: {
      DaemonStatus s;
      s.rank = config_.rank;
      s.saved_bytes = saved_.total_bytes();
      s.sent_bytes = stats_.sent_bytes;
      s.recv_bytes = stats_.recv_bytes;
      s.sent_msgs = stats_.sent_msgs;
      s.recv_msgs = stats_.recv_msgs;
      Writer w;
      w.u8(static_cast<std::uint8_t>(CtlMsg::kStatus));
      write_status(w, s);
      if (sched_conn_ != nullptr) sched_conn_->send(ctx, w.take());
      return;
    }
    case CtlMsg::kCkptOrder: {
      for (std::size_t i = 0; i < cs_conns_.size(); ++i) {
        if (cs_conns_[i] != nullptr ||
            config_.ckpt_servers[i].node == net::kNoNode) {
          continue;
        }
        // The stripe server may have rebooted since we lost it.
        net::Conn* c = net_.connect(ctx, *endpoint_, config_.ckpt_servers[i]);
        if (c != nullptr) {
          c->user_tag = kTagCsBase + i;
          cs_conns_[i] = c;
        }
      }
      // Ignore while an upload is still in flight (the scheduler reorders)
      // or while any stripe is unreachable (a partial upload could never
      // become stable).
      if (!ckpt_.has_value() && all_cs_connected()) ckpt_requested_ = true;
      return;
    }
    case CtlMsg::kAddr: {
      mpi::Rank q = r.i32();
      net::Address addr{r.i32(), r.i32()};
      auto qi = static_cast<std::size_t>(q);
      if (config_.peer_addrs[qi] != addr) {
        config_.peer_addrs[qi] = addr;
        // Retry immediately with the fresh address.
        if (q > config_.rank && peers_[qi] == nullptr) {
          reconnect_at_[qi] = ctx.now();
        }
      }
      return;
    }
    default:
      throw ProtocolError("daemon: unexpected control message");
  }
}

// --------------------------------------------------------------- checkpoint

bool Daemon::all_cs_connected() const {
  if (cs_conns_.empty()) return false;
  for (std::size_t i = 0; i < cs_conns_.size(); ++i) {
    if (config_.ckpt_servers[i].node != net::kNoNode &&
        cs_conns_[i] == nullptr) {
      return false;
    }
  }
  return cs_conns_[0] != nullptr;  // at least stripe 0 must be configured
}

void Daemon::begin_checkpoint(sim::Context& ctx, SharedBuffer app_image) {
  MPIV_CHECK(!ckpt_.has_value(), "daemon: overlapping checkpoints");
  // Flush coalesced events first: every delivery folded into this image
  // must be durable before the image can prune the log below its clock.
  flush_el(ctx);
  ckpt_requested_ = false;
  ++ckpt_seq_;
  MPIV_TRACE(config_.trace, TK::kCkptBegin,
             {.c2 = recv_clock_, .n = ckpt_seq_});
  PendingCkpt pc;
  pc.seq = ckpt_seq_;
  pc.image = SharedBuffer(serialize_daemon_state(app_image.view()));
  pc.h_at_ckpt = recv_clock_;
  pc.hr_at_ckpt = hr_;
  // The serialize pass above walks the whole image once; charge it at
  // memcpy bandwidth (daemon fiber — the app already resumed in the
  // non-blocking mode). Not counted in bytes_copied: that stat tracks the
  // message datapath.
  ctx.sleep(transfer_time(pc.image.size(), net_.params().memcpy_bandwidth_bps));
  if (!config_.full_image_ckpt) {
    const std::size_t nstripes = cs_conns_.size();
    const std::uint32_t chunk = net_.params().ckpt_chunk_bytes;
    pc.hashes = chunk_hashes(pc.image.view(), chunk);
    pc.chunks_for.assign(nstripes, {});
    pc.next_chunk.assign(nstripes, 0);
    pc.begun_s.assign(nstripes, 0);
    pc.end_sent_s.assign(nstripes, 0);
    pc.acked_s.assign(nstripes, 0);
    for (std::size_t i = 0; i < pc.hashes.size(); ++i) {
      std::size_t len = chunk_len(pc.image.size(), chunk, i);
      if (i < last_stable_hashes_.size() &&
          pc.hashes[i] == last_stable_hashes_[i]) {
        // Unchanged since the last stable image: the owning stripe pins
        // that table, so the content is already durable there.
        stats_.ckpt_bytes_deduped += len;
        continue;
      }
      std::size_t owner = pc.hashes[i] % nstripes;
      pc.chunks_for[owner].push_back(static_cast<std::uint32_t>(i));
    }
  }
  ckpt_ = std::move(pc);
}

void Daemon::abandon_ckpt(sim::Context& ctx) {
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " abandoning checkpoint seq ", ckpt_->seq,
            " (stripe server lost mid-upload)");
  MPIV_TRACE(config_.trace, TK::kCkptAbandon, {.n = ckpt_->seq});
  ckpt_.reset();
}

bool Daemon::advance_ckpt(sim::Context& ctx) {
  if (!ckpt_.has_value()) return false;
  return config_.full_image_ckpt ? advance_ckpt_legacy(ctx)
                                 : advance_ckpt_delta(ctx);
}

bool Daemon::advance_ckpt_legacy(sim::Context& ctx) {
  net::Conn* cs = cs_conns_.empty() ? nullptr : cs_conns_[0];
  if (cs == nullptr) return false;
  PendingCkpt& pc = *ckpt_;
  const std::uint32_t chunk = net_.params().daemon_chunk_bytes;
  if (!pc.begun) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CsMsg::kStoreBegin));
    w.i32(config_.rank);
    w.u64(pc.seq);
    w.u64(pc.image.size());
    pc.begun = true;
    cs->send(ctx, w.take());
    return true;
  }
  if (pc.offset < pc.image.size()) {
    if (!cs->writable()) return false;
    std::size_t n = std::min<std::size_t>(chunk, pc.image.size() - pc.offset);
    Writer w;
    w.u8(static_cast<std::uint8_t>(CsMsg::kStoreChunk));
    w.raw(pc.image.data() + pc.offset, n);
    pc.offset += n;
    stats_.ckpt_bytes_sent += n;
    cs->send(ctx, w.take());
    return true;
  }
  if (!pc.done_sent) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(CsMsg::kStoreEnd));
    pc.done_sent = true;
    cs->send(ctx, w.take());
    return true;
  }
  return false;  // waiting for StoreOk
}

bool Daemon::advance_ckpt_delta(sim::Context& ctx) {
  PendingCkpt& pc = *ckpt_;
  const std::size_t nstripes = cs_conns_.size();
  const std::uint32_t chunk = net_.params().ckpt_chunk_bytes;
  // One frame per call, round-robin across the stripes, so the upload
  // interleaves with normal traffic and all stripes fill concurrently.
  for (std::size_t i = 0; i < nstripes; ++i) {
    std::size_t s = (cs_rr_next_ + i) % nstripes;
    if (pc.acked_s[s] != 0) continue;
    net::Conn* c = cs_conns_[s];
    if (c == nullptr) {
      // A stripe died before we finished with it: the image can never
      // become stable, so drop the whole attempt.
      abandon_ckpt(ctx);
      return true;
    }
    if (!c->writable()) continue;
    cs_rr_next_ = (s + 1) % nstripes;
    if (pc.begun_s[s] == 0) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(CsMsg::kDeltaBegin));
      w.i32(config_.rank);
      ChunkTable t;
      t.ckpt_seq = pc.seq;
      t.chunk_size = chunk;
      t.total_bytes = pc.image.size();
      t.hashes = pc.hashes;  // replicated to every stripe
      write_chunk_table(w, t);
      pc.begun_s[s] = 1;
      c->send(ctx, w.take());
      return true;
    }
    if (pc.next_chunk[s] < pc.chunks_for[s].size()) {
      std::uint32_t index = pc.chunks_for[s][pc.next_chunk[s]++];
      std::size_t len = chunk_len(pc.image.size(), chunk, index);
      Writer w;
      w.u8(static_cast<std::uint8_t>(CsMsg::kDeltaChunk));
      w.u64(pc.seq);
      w.u32(index);
      // Scatter-gather: the chunk bytes ride as a slice of the pending
      // image — the upload never materializes chunk copies. The one wire
      // assembly copy is charged like any other TX.
      SharedBuffer payload = pc.image;  // keep alive across send()
      ConstBytes tail =
          payload.view().subspan(static_cast<std::size_t>(index) * chunk, len);
      stats_.ckpt_bytes_sent += len;
      charge_copy(ctx, len);
      c->send(ctx, w.take(), tail);
      return true;
    }
    if (pc.end_sent_s[s] == 0) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(CsMsg::kDeltaEnd));
      w.u64(pc.seq);
      pc.end_sent_s[s] = 1;
      c->send(ctx, w.take());
      return true;
    }
    // This stripe has everything; waiting for its StoreOk.
  }
  return false;
}

void Daemon::on_ckpt_stable(sim::Context& ctx, std::uint64_t seq) {
  MPIV_CHECK(ckpt_.has_value() && ckpt_->seq == seq,
             "daemon: StoreOk for unknown checkpoint");
  has_stable_ckpt_ = true;
  last_stable_hr_ = ckpt_->hr_at_ckpt;
  last_stable_hashes_ = std::move(ckpt_->hashes);  // next upload's delta base
  Clock hck = ckpt_->h_at_ckpt;
  ckpt_.reset();
  stats_.checkpoints_taken += 1;
  MPIV_TRACE(config_.trace, TK::kCkptStable, {.c1 = hck, .n = seq});
  MPIV_TRACE(config_.trace, TK::kElPrune, {.c1 = hck});
  // The event log below the checkpoint clock is dead — on every replica
  // and in our own resync copy. (Disconnected replicas miss the prune;
  // they are either rebooted empty or pruned at the next checkpoint.)
  Writer w;
  w.u8(static_cast<std::uint8_t>(ElMsg::kPrune));
  w.i64(hck);
  for (net::Conn* c : el_conns_) {
    if (c != nullptr) c->send(ctx, Buffer(w.buffer()));
  }
  auto first_kept = std::find_if(el_log_.begin(), el_log_.end(),
                                 [hck](const ReceptionEvent& e) {
                                   return e.recv_clock > hck;
                                 });
  el_log_base_ += static_cast<std::uint64_t>(first_kept - el_log_.begin());
  el_log_.erase(el_log_.begin(), first_kept);
  // Peers can garbage collect every payload we received before the image.
  for (mpi::Rank q = 0; q < config_.size; ++q) {
    if (q == config_.rank) continue;
    Writer wn;
    wn.u8(static_cast<std::uint8_t>(PeerMsg::kCkptNotify));
    wn.i64(last_stable_hr_[static_cast<std::size_t>(q)]);
    MPIV_TRACE(config_.trace, TK::kCkptNotifySend,
               {.peer = q, .c1 = last_stable_hr_[static_cast<std::size_t>(q)]});
    enqueue_control(q, wn.take());
  }
  if (sched_conn_ != nullptr) {
    Writer wd;
    wd.u8(static_cast<std::uint8_t>(CtlMsg::kCkptDone));
    wd.i32(config_.rank);
    wd.u64(seq);
    sched_conn_->send(ctx, wd.take());
  }
  MPIV_INFO("daemon", ctx.now(), "rank ", config_.rank,
            " checkpoint stable at clock ", hck);
}

Buffer Daemon::serialize_daemon_state(ConstBytes app_image) const {
  // Layout: [app][bulk: SAVED + arrivals][scalars][u64 bulk][u64 app].
  // The raw app bytes come FIRST so that growth or shrinkage of the daemon
  // state (sender log, arrival queue) between checkpoints cannot shift the
  // app pages across chunk boundaries — the chunked-delta path depends on
  // stable chunk alignment for its dedup. The scalar section sits LAST
  // (right before the trailer) so a restarting daemon adopts its clocks
  // and watermarks from roughly one tail chunk, letting the Restart1
  // fan-out and the event download start while the bulk is still in
  // flight (the recovery fast path's stage A).
  Writer w;
  w.raw(app_image.data(), app_image.size());
  saved_.serialize(w);
  w.u32(static_cast<std::uint32_t>(arrivals_.size()));
  for (const Arrival& a : arrivals_) {
    w.i32(a.from);
    w.i64(a.send_clock);
    w.blob(a.block.view());
  }
  const std::size_t bulk_size = w.buffer().size() - app_image.size();
  w.i64(send_clock_);
  w.i64(recv_clock_);
  w.u32(static_cast<std::uint32_t>(hs_.size()));
  for (Clock c : hs_) w.i64(c);
  for (Clock c : hr_) w.i64(c);
  w.u64(ckpt_seq_);
  w.u32(probes_since_delivery_);
  w.u32(probes_logged_);
  w.u64(bulk_size);
  w.u64(app_image.size());
  return w.take();
}

Daemon::ImageLayout Daemon::read_image_layout(ConstBytes image) {
  MPIV_CHECK(image.size() >= kImageTrailerBytes,
             "daemon: checkpoint image too small");
  Reader trailer(image.subspan(image.size() - kImageTrailerBytes));
  ImageLayout l;
  l.bulk_size = static_cast<std::size_t>(trailer.u64());
  l.app_size = static_cast<std::size_t>(trailer.u64());
  MPIV_CHECK(l.app_size + l.bulk_size <= image.size() - kImageTrailerBytes,
             "daemon: corrupt checkpoint image trailer");
  return l;
}

void Daemon::restore_scalars(ConstBytes image, const ImageLayout& layout) {
  Reader r(image.subspan(layout.scalars_begin(),
                         image.size() - kImageTrailerBytes -
                             layout.scalars_begin()));
  send_clock_ = r.i64();
  recv_clock_ = r.i64();
  std::uint32_t n = r.u32();
  MPIV_CHECK(n == hs_.size(), "daemon: image rank-count mismatch");
  for (auto& c : hs_) c = r.i64();
  for (auto& c : hr_) c = r.i64();
  ckpt_seq_ = r.u64();
  probes_since_delivery_ = r.u32();
  probes_logged_ = r.u32();
  MPIV_CHECK(r.done(), "daemon: trailing bytes in checkpoint image");
}

void Daemon::restore_bulk(ConstBytes image, const ImageLayout& layout) {
  Reader r(image.subspan(layout.app_size, layout.bulk_size));
  saved_.restore(r);
  arrivals_.clear();
  std::uint32_t na = r.u32();
  for (std::uint32_t i = 0; i < na; ++i) {
    Arrival a;
    a.from = r.i32();
    a.send_clock = r.i64();
    a.block = SharedBuffer{r.blob()};
    // Arrivals above the sender's watermark were accepted in an out-of-order
    // window; re-seed the window so the restart resend pass cannot inject a
    // second copy of a payload this image already holds.
    auto fi = static_cast<std::size_t>(a.from);
    if (a.send_clock > hr_[fi]) accepted_[fi].insert(a.send_clock);
    arrivals_.push_back(std::move(a));
  }
  MPIV_CHECK(r.done(), "daemon: trailing bytes in checkpoint bulk section");
}

Buffer Daemon::restore_daemon_state(ConstBytes image) {
  ImageLayout layout = read_image_layout(image);
  restore_scalars(image, layout);
  restore_bulk(image, layout);
  ConstBytes app = image.subspan(0, layout.app_size);
  return Buffer(app.begin(), app.end());
}

namespace {

// Single source of truth for the counter <-> struct-field mapping; registry()
// and from_registry() both walk this table so they cannot drift apart.
template <typename Stats, typename Fn>
void for_each_counter(Stats& s, Fn&& fn) {
  fn("sent_msgs", s.sent_msgs);
  fn("recv_msgs", s.recv_msgs);
  fn("sent_bytes", s.sent_bytes);
  fn("recv_bytes", s.recv_bytes);
  fn("duplicates_dropped", s.duplicates_dropped);
  fn("replayed_deliveries", s.replayed_deliveries);
  fn("events_logged", s.events_logged);
  fn("checkpoints_taken", s.checkpoints_taken);
  fn("gc_pruned_entries", s.gc_pruned_entries);
  fn("suppressed_sends", s.suppressed_sends);
  fn("bytes_copied", s.bytes_copied);
  fn("payload_copies_tx", s.payload_copies_tx);
  fn("payload_copies_rx", s.payload_copies_rx);
  fn("el_appends", s.el_appends);
  fn("el_quorum_waits", s.el_quorum_waits);
  fn("el_replica_retries", s.el_replica_retries);
  fn("ckpt_bytes_sent", s.ckpt_bytes_sent);
  fn("ckpt_bytes_deduped", s.ckpt_bytes_deduped);
  fn("ckpt_fetch_bytes", s.ckpt_fetch_bytes);
  fn("ckpt_fetch_ns", s.ckpt_fetch_ns);
  fn("replayed_bytes", s.replayed_bytes);
  fn("resend_batches", s.resend_batches);
  fn("resend_batched_msgs", s.resend_batched_msgs);
}

// Latency counters merge by max: the job-level value is the slowest
// restarted rank's recovery, not a meaningless sum across ranks.
template <typename Stats, typename Fn>
void for_each_max_counter(Stats& s, Fn&& fn) {
  fn("restart_ttfs_ns", s.restart_ttfs_ns);
  fn("restart_download_ns", s.restart_download_ns);
  fn("restart_replay_ns", s.restart_replay_ns);
  fn("restart_recover_ns", s.restart_recover_ns);
}

std::string lag_name(std::size_t i) {
  return "el_replica_max_lag_" + std::to_string(i);
}

}  // namespace

CounterRegistry DaemonStats::registry() const {
  CounterRegistry reg;
  for_each_counter(*this, [&](const char* name, std::uint64_t v) {
    reg.add(name, static_cast<std::int64_t>(v), MergeKind::kSum);
  });
  for_each_max_counter(*this, [&](const char* name, std::uint64_t v) {
    reg.add(name, static_cast<std::int64_t>(v), MergeKind::kMax);
  });
  for (std::size_t i = 0; i < el_replica_max_lag.size(); ++i) {
    reg.add(lag_name(i), static_cast<std::int64_t>(el_replica_max_lag[i]),
            MergeKind::kMax);
  }
  return reg;
}

DaemonStats DaemonStats::from_registry(const CounterRegistry& reg) {
  DaemonStats s;
  for_each_counter(s, [&](const char* name, std::uint64_t& v) {
    v = static_cast<std::uint64_t>(reg.get(name));
  });
  for_each_max_counter(s, [&](const char* name, std::uint64_t& v) {
    v = static_cast<std::uint64_t>(reg.get(name));
  });
  for (std::size_t i = 0; reg.contains(lag_name(i)); ++i) {
    s.el_replica_max_lag.push_back(
        static_cast<std::uint64_t>(reg.get(lag_name(i))));
  }
  return s;
}

}  // namespace mpiv::v2
