// Simulated cluster network.
//
// Nodes host processes and own a full-duplex NIC. Connections are reliable
// FIFO byte-message streams (TCP-like): while both ends are alive, every
// message sent is delivered in order; when a node is killed every connection
// touching it is closed and the remote endpoint receives a Closed event —
// the paper's "socket disconnection as a trusty fault detector".
//
// Timing model (see NetParams): a send occupies the sender NIC for
// per_msg_send_cpu + bytes/bandwidth (the sending fiber sleeps through it,
// which also models the CPU cost of driving TCP), then arrives wire_latency
// later; the receiver pays per_msg_recv_cpu when it dequeues the event.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/params.hpp"
#include "sim/mailbox.hpp"

namespace mpiv::net {

using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

struct Address {
  NodeId node = kNoNode;
  std::int32_t port = 0;
  bool operator<(const Address& o) const {
    return node != o.node ? node < o.node : port < o.port;
  }
  bool operator==(const Address& o) const = default;
};

class Network;
class Endpoint;
class Link;

/// One side of an established connection. Raw pointers to Conn stay valid
/// for the lifetime of the Network; a closed Conn simply fails sends.
class Conn {
 public:
  /// Blocking send: charges the calling fiber NIC/CPU time, and blocks
  /// while the flow-control window toward the peer is exhausted (more than
  /// tcp_window_bytes in flight). `while_blocked`, when provided, runs each
  /// time the sender wakes up still window-blocked — single-threaded
  /// drivers (P4) use it to service their own incoming queue, which is what
  /// real ch_p4 does to avoid deadlock. Returns false if the connection is
  /// (or becomes) closed. Never throws on peer death.
  bool send(sim::Context& ctx, Buffer msg,
            const std::function<void(sim::Context&)>& while_blocked = {});

  /// Scatter-gather send: transmits `head` followed by `tail` as one wire
  /// message without requiring the caller to assemble them. The gather into
  /// the kernel buffer happens here (the one unavoidable TX copy of the
  /// zero-copy datapath); daemons account for it via their copy counters.
  bool send(sim::Context& ctx, Buffer head, ConstBytes tail,
            const std::function<void(sim::Context&)>& while_blocked = {});

  void close();  // non-blocking; remote gets a Closed event
  [[nodiscard]] bool is_open() const;
  /// True when a send would be admitted immediately (window has room).
  /// Between this check and a send() the state cannot change (single
  /// runnable fiber), so daemons use it to avoid head-of-line blocking.
  [[nodiscard]] bool writable() const;
  /// Arms `p` (with its current park token) to wake when the window toward
  /// the peer frees up; used together with other wait sources.
  void add_window_waiter(sim::Process& p, std::uint64_t token);
  [[nodiscard]] NodeId local_node() const;
  [[nodiscard]] NodeId peer_node() const;
  [[nodiscard]] std::uint64_t id() const;

  /// Free-form tag for select loops (e.g. peer rank). Defaults to ~0.
  std::uint64_t user_tag = ~0ull;

 private:
  friend class Network;
  friend class Link;
  friend class Endpoint;
  Link* link_ = nullptr;
  int side_ = 0;  // 0 = initiator, 1 = acceptor
};

struct NetEvent {
  enum class Type { kData, kClosed, kAccepted };
  Type type = Type::kData;
  Conn* conn = nullptr;
  Buffer data;
};

/// Per-process event queue: connections deliver Data/Closed/Accepted events
/// here. Owned by exactly one fiber; destroying it closes all its
/// connections and removes its listeners (crash semantics via RAII).
class Endpoint {
 public:
  Endpoint(Network& net, NodeId node);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Starts accepting connections on (node, port).
  void listen(std::int32_t port);

  /// Blocking: next event; charges per-message receive CPU for Data events.
  NetEvent wait(sim::Context& ctx);
  /// As wait() but returns nullopt once `deadline` passes.
  std::optional<NetEvent> wait_until(sim::Context& ctx, SimTime deadline);
  /// Non-blocking variant; Data events still charge receive CPU so the
  /// modeled cost is identical on both paths.
  std::optional<NetEvent> poll(sim::Context& ctx);
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Network& network() { return net_; }

  /// Select-loop integration: poke this notifier whenever an event lands.
  void set_notifier(sim::Notifier* n) { notifier_ = n; }

 private:
  friend class Network;
  friend class Link;
  void enqueue(NetEvent ev);
  NetEvent finish_event(sim::Context& ctx, NetEvent ev);

  Network& net_;
  NodeId node_;
  std::deque<NetEvent> queue_;
  sim::WaitList waiters_;
  sim::Notifier* notifier_ = nullptr;
  std::vector<std::int32_t> listen_ports_;
  std::vector<Conn*> conns_;  // sides owned by this endpoint
  bool destroyed_ = false;
};

/// Aggregate wire statistics, also broken down by server-side port so
/// benches can report e.g. event-logger traffic separately.
struct WireCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::map<std::int32_t, std::uint64_t> messages_by_port;
  std::map<std::int32_t, std::uint64_t> bytes_by_port;
};

class Network {
 public:
  Network(sim::Engine& engine, NetParams params);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] bool node_alive(NodeId id) const;
  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Kills every process registered on the node and closes its connections.
  void kill_node(NodeId id);
  /// Marks the node usable again (dispatcher restarts processes on it).
  void revive_node(NodeId id);

  /// Associates a process with a node so kill_node can terminate it.
  void register_process(NodeId id, sim::Process* p);

  /// Blocking connect; returns nullptr if nobody listens or the node is dead.
  Conn* connect(sim::Context& ctx, Endpoint& local, Address remote);
  /// Connect with retry until `deadline`; services may come up out of order.
  Conn* connect_retry(sim::Context& ctx, Endpoint& local, Address remote,
                      SimDuration retry_interval, SimTime deadline);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const NetParams& params() const { return params_; }
  [[nodiscard]] const WireCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = WireCounters{}; }

  /// Transfer duration of one wire message of `bytes` (excludes latency).
  [[nodiscard]] SimDuration tx_time(std::size_t bytes) const;

 private:
  friend class Conn;
  friend class Endpoint;
  friend class Link;

  struct Node {
    std::string name;
    bool alive = true;
    SimTime nic_tx_busy_until = 0;
    std::vector<sim::Process*> processes;
  };

  void endpoint_created(Endpoint* ep);
  void endpoint_destroyed(Endpoint* ep, bool graceful);
  Endpoint* listener_at(Address addr);

  sim::Engine& engine_;
  NetParams params_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Endpoint*> endpoints_;
  WireCounters counters_;
  std::uint64_t next_link_id_ = 1;
};

}  // namespace mpiv::net
