#include "net/network.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"
#include "common/log.hpp"

namespace mpiv::net {

/// Shared state of one connection; owns both Conn sides.
class Link {
 public:
  Link(Network& net, std::uint64_t id, NodeId a, NodeId b, Endpoint* ep_a,
       Endpoint* ep_b, std::int32_t server_port)
      : net_(net), id_(id), server_port_(server_port) {
    nodes_[0] = a;
    nodes_[1] = b;
    eps_[0] = ep_a;
    eps_[1] = ep_b;
    sides_[0].link_ = this;
    sides_[0].side_ = 0;
    sides_[1].link_ = this;
    sides_[1].side_ = 1;
  }

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] NodeId node(int side) const { return nodes_[side]; }
  Conn* conn(int side) { return &sides_[side]; }

  bool send_from(sim::Context& ctx, int side, Buffer msg,
                 const std::function<void(sim::Context&)>& while_blocked) {
    const NetParams& p = net_.params();
    // Flow control: admit the message only while the window has room.
    while (open_ && !aborted_ &&
           in_flight_[side] >= static_cast<std::int64_t>(p.tcp_window_bytes)) {
      if (while_blocked) {
        // Wake on either window space or traffic arriving at our own
        // endpoint (which the handler will drain, freeing the peer).
        sim::Process& proc = ctx.self();
        std::uint64_t token = proc.wake_token();
        window_waiters_[side].add(proc, token);
        if (eps_[side] != nullptr) eps_[side]->waiters_.add(proc, token);
        proc.park();
        while_blocked(ctx);
      } else {
        window_waiters_[side].wait(ctx);
      }
    }
    if (!open_ || aborted_) return false;
    Network::Node& sender = net_.nodes_[static_cast<std::size_t>(nodes_[side])];
    if (!sender.alive) return false;
    in_flight_[side] += static_cast<std::int64_t>(msg.size());
    SimTime now = ctx.now();
    SimTime start = std::max(now, sender.nic_tx_busy_until);
    SimDuration dur = p.per_msg_send_cpu +
                      transfer_time(msg.size(), p.bandwidth_bps);
    SimTime done = start + dur;
    sender.nic_tx_busy_until = done;

    net_.counters_.messages += 1;
    net_.counters_.bytes += msg.size();
    net_.counters_.messages_by_port[server_port_] += 1;
    net_.counters_.bytes_by_port[server_port_] += msg.size();

    int other = 1 - side;
    net_.engine().schedule_at(
        done + p.wire_latency,
        [this, other, m = std::move(msg)]() mutable { deliver(other, std::move(m)); });
    ctx.sleep(done - now);
    return open_;
  }

  void deliver(int side, Buffer msg) {
    // A gracefully closed link still flushes in-flight data (TCP FIN
    // semantics); an aborted link (crash) drops it.
    if (aborted_) return;
    if (eps_[side] == nullptr) return;
    if (!net_.nodes_[static_cast<std::size_t>(nodes_[side])].alive) return;
    eps_[side]->enqueue(
        NetEvent{NetEvent::Type::kData, &sides_[side], std::move(msg)});
  }

  void close_from(int side, bool graceful) {
    if (!graceful) aborted_ = true;
    if (!open_ && !graceful) {
      // Still release any window-blocked senders on abort.
      window_waiters_[0].wake_all(net_.engine());
      window_waiters_[1].wake_all(net_.engine());
    }
    if (!open_) return;
    open_ = false;
    window_waiters_[0].wake_all(net_.engine());
    window_waiters_[1].wake_all(net_.engine());
    int other = 1 - side;
    Endpoint* remote = eps_[other];
    if (remote != nullptr &&
        net_.nodes_[static_cast<std::size_t>(nodes_[other])].alive) {
      net_.engine().schedule_in(net_.params().wire_latency, [this, other] {
        if (eps_[other] != nullptr &&
            net_.nodes_[static_cast<std::size_t>(nodes_[other])].alive) {
          eps_[other]->enqueue(NetEvent{NetEvent::Type::kClosed, &sides_[other], {}});
        }
      });
    }
  }

  void detach_endpoint(Endpoint* ep, bool graceful) {
    for (int s = 0; s < 2; ++s) {
      if (eps_[s] == ep) {
        eps_[s] = nullptr;
        close_from(s, graceful);
      }
    }
  }

  void attach_acceptor(Endpoint* ep) { eps_[1] = ep; }

  /// Receiver-side dequeue: frees window space for the sending side.
  void on_dequeued(int receiving_side, std::size_t bytes) {
    int sending_side = 1 - receiving_side;
    in_flight_[sending_side] -= static_cast<std::int64_t>(bytes);
    window_waiters_[sending_side].wake_all(net_.engine());
  }

 private:
  friend class Conn;
  friend class Network;
  Network& net_;
  std::uint64_t id_;
  std::int32_t server_port_;
  bool open_ = true;
  bool aborted_ = false;
  std::int64_t in_flight_[2] = {0, 0};      // bytes sent by side i, not yet dequeued
  sim::WaitList window_waiters_[2];          // senders blocked on window of side i
  NodeId nodes_[2] = {kNoNode, kNoNode};
  Endpoint* eps_[2] = {nullptr, nullptr};
  Conn sides_[2];
};

// ---------------------------------------------------------------- Conn

bool Conn::send(sim::Context& ctx, Buffer msg,
                const std::function<void(sim::Context&)>& while_blocked) {
  return link_->send_from(ctx, side_, std::move(msg), while_blocked);
}

bool Conn::send(sim::Context& ctx, Buffer head, ConstBytes tail,
                const std::function<void(sim::Context&)>& while_blocked) {
  // Gather into a pooled frame: the common case (header + logged payload)
  // reuses a recycled slab instead of growing `head`'s allocation.
  Buffer frame = BufferPool::global().rent(head.size() + tail.size());
  if (!head.empty()) std::memcpy(frame.data(), head.data(), head.size());
  if (!tail.empty()) {
    std::memcpy(frame.data() + head.size(), tail.data(), tail.size());
  }
  BufferPool::global().give_back(std::move(head));
  return link_->send_from(ctx, side_, std::move(frame), while_blocked);
}

void Conn::close() { link_->close_from(side_, /*graceful=*/true); }

bool Conn::writable() const {
  return link_->open() && !link_->aborted_ &&
         link_->in_flight_[side_] <
             static_cast<std::int64_t>(link_->net_.params().tcp_window_bytes);
}

void Conn::add_window_waiter(sim::Process& p, std::uint64_t token) {
  link_->window_waiters_[side_].add(p, token);
}
bool Conn::is_open() const { return link_->open(); }
NodeId Conn::local_node() const { return link_->node(side_); }
NodeId Conn::peer_node() const { return link_->node(1 - side_); }
std::uint64_t Conn::id() const { return link_->id(); }

// ---------------------------------------------------------------- Endpoint

Endpoint::Endpoint(Network& net, NodeId node) : net_(net), node_(node) {
  net_.endpoint_created(this);
}

Endpoint::~Endpoint() {
  destroyed_ = true;
  // Unwinding through ProcessKilled (a crash) aborts connections, dropping
  // in-flight data; a normal return closes them gracefully.
  net_.endpoint_destroyed(this, /*graceful=*/std::uncaught_exceptions() == 0);
}

void Endpoint::listen(std::int32_t port) {
  MPIV_CHECK(net_.listener_at({node_, port}) == nullptr,
             "port already in use on node");
  listen_ports_.push_back(port);
}

void Endpoint::enqueue(NetEvent ev) {
  queue_.push_back(std::move(ev));
  waiters_.wake_all(net_.engine());
  if (notifier_ != nullptr) notifier_->notify();
}

NetEvent Endpoint::finish_event(sim::Context& ctx, NetEvent ev) {
  if (ev.type == NetEvent::Type::kData) {
    ev.conn->link_->on_dequeued(ev.conn->side_, ev.data.size());
    ctx.sleep(net_.params().per_msg_recv_cpu);
  }
  return ev;
}

NetEvent Endpoint::wait(sim::Context& ctx) {
  while (queue_.empty()) waiters_.wait(ctx);
  NetEvent ev = std::move(queue_.front());
  queue_.pop_front();
  return finish_event(ctx, std::move(ev));
}

std::optional<NetEvent> Endpoint::wait_until(sim::Context& ctx, SimTime deadline) {
  while (queue_.empty()) {
    if (ctx.now() >= deadline) return std::nullopt;
    sim::Process& p = ctx.self();
    std::uint64_t token = p.wake_token();
    sim::EventId timer =
        net_.engine().schedule_at(deadline, [&p, token] { p.unpark(token); });
    waiters_.wait(ctx);
    net_.engine().cancel(timer);
  }
  NetEvent ev = std::move(queue_.front());
  queue_.pop_front();
  return finish_event(ctx, std::move(ev));
}

std::optional<NetEvent> Endpoint::poll(sim::Context& ctx) {
  if (queue_.empty()) return std::nullopt;
  NetEvent ev = std::move(queue_.front());
  queue_.pop_front();
  return finish_event(ctx, std::move(ev));
}

// ---------------------------------------------------------------- Network

Network::Network(sim::Engine& engine, NetParams params)
    : engine_(engine), params_(params) {}

Network::~Network() {
  // Fibers hold endpoints/connections that reference this network; unwind
  // them all (synchronously) before any member is torn down. Network objects
  // are declared after the Engine they use, so this runs first.
  engine_.shutdown();
}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), true, 0, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  return nodes_[static_cast<std::size_t>(id)].name;
}

bool Network::node_alive(NodeId id) const {
  return nodes_[static_cast<std::size_t>(id)].alive;
}

void Network::kill_node(NodeId id) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  if (!n.alive) return;
  n.alive = false;
  n.nic_tx_busy_until = 0;
  MPIV_INFO("net", engine_.now(), "kill node ", n.name);
  // Close links first so in-flight deliveries are dropped at delivery time.
  for (auto& link : links_) {
    for (int s = 0; s < 2; ++s) {
      if (link->node(s) == id) link->close_from(s, /*graceful=*/false);
    }
  }
  auto procs = std::move(n.processes);
  n.processes.clear();
  for (sim::Process* p : procs) engine_.kill(p);
}

void Network::revive_node(NodeId id) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  n.alive = true;
  n.nic_tx_busy_until = 0;
}

void Network::register_process(NodeId id, sim::Process* p) {
  nodes_[static_cast<std::size_t>(id)].processes.push_back(p);
}

void Network::endpoint_created(Endpoint* ep) { endpoints_.push_back(ep); }

void Network::endpoint_destroyed(Endpoint* ep, bool graceful) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), ep),
                   endpoints_.end());
  for (auto& link : links_) link->detach_endpoint(ep, graceful);
}

Endpoint* Network::listener_at(Address addr) {
  for (Endpoint* ep : endpoints_) {
    if (ep->node() != addr.node) continue;
    for (std::int32_t port : ep->listen_ports_) {
      if (port == addr.port) return ep;
    }
  }
  return nullptr;
}

SimDuration Network::tx_time(std::size_t bytes) const {
  return params_.per_msg_send_cpu + transfer_time(bytes, params_.bandwidth_bps);
}

Conn* Network::connect(sim::Context& ctx, Endpoint& local, Address remote) {
  if (!node_alive(local.node())) return nullptr;
  if (remote.node == kNoNode || !node_alive(remote.node)) {
    ctx.sleep(params_.connect_rtt);
    return nullptr;
  }
  Endpoint* acceptor = listener_at(remote);
  if (acceptor == nullptr) {
    ctx.sleep(params_.connect_rtt);
    return nullptr;
  }
  links_.push_back(std::make_unique<Link>(*this, next_link_id_++, local.node(),
                                          remote.node, &local, acceptor,
                                          remote.port));
  Link* link = links_.back().get();
  local.conns_.push_back(link->conn(0));
  // Accepted event reaches the server after half the handshake.
  engine_.schedule_in(params_.connect_rtt / 2, [this, link, remote] {
    Endpoint* server = listener_at(remote);
    if (server == nullptr || !link->open()) {
      link->close_from(1, /*graceful=*/false);
      return;
    }
    server->conns_.push_back(link->conn(1));
    server->enqueue(NetEvent{NetEvent::Type::kAccepted, link->conn(1), {}});
  });
  ctx.sleep(params_.connect_rtt);
  if (!link->open()) return nullptr;
  return link->conn(0);
}

Conn* Network::connect_retry(sim::Context& ctx, Endpoint& local, Address remote,
                             SimDuration retry_interval, SimTime deadline) {
  for (;;) {
    Conn* c = connect(ctx, local, remote);
    if (c != nullptr) return c;
    if (ctx.now() >= deadline) return nullptr;
    ctx.sleep(retry_interval);
  }
}

}  // namespace mpiv::net
