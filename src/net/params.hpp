// Network timing model parameters.
//
// Defaults are calibrated against the paper's testbed (100 Mb/s switched
// Ethernet, Athlon XP nodes, MPICH 1.2.5 ch_p4):
//   * P4 0-byte one-way MPI latency  = send_cpu + wire + recv_cpu ~ 76 us
//     (paper measures 77 us)
//   * large-message payload bandwidth ~ 11.5 MB/s (paper: 11.3 MB/s for P4)
//   * V2 0-byte one-way = 2 pipe hops + wire + EL round trip ~ 238 us
//     (paper: 237 us)
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace mpiv::net {

struct NetParams {
  /// One-way wire propagation + switch transit.
  SimDuration wire_latency = microseconds(40);
  /// Payload bandwidth of a node's NIC, bytes per second.
  double bandwidth_bps = 11.5e6;
  /// CPU cost paid by the sender per wire message (syscalls, TCP stack).
  SimDuration per_msg_send_cpu = microseconds(18);
  /// CPU cost paid by the receiver per wire message on dequeue.
  SimDuration per_msg_recv_cpu = microseconds(18);
  /// Connection establishment round trip.
  SimDuration connect_rtt = microseconds(160);

  /// Local UNIX-socket pipe between the MPI process and its daemon.
  SimDuration pipe_latency = microseconds(1);
  SimDuration pipe_per_msg = microseconds(4);
  /// Local copy bandwidth through the pipe, bytes per second.
  double pipe_bandwidth_bps = 300e6;

  /// Main-memory copy bandwidth, bytes per second. Charged for every
  /// payload memcpy the daemons still perform (wire scatter-gather
  /// assembly, multi-chunk reassembly) so copy discipline is visible in
  /// virtual time. Era hardware (PC2100 DDR) sustains ~800 MB/s.
  double memcpy_bandwidth_bps = 800e6;

  /// Chunk size used by daemons that interleave TX with their select loop.
  std::uint32_t daemon_chunk_bytes = 16 * 1024;

  /// Chunk size of the incremental-checkpoint datapath: images are hashed,
  /// deduplicated, striped and fetched at this granularity. Also the
  /// dirty-region tracking granularity of the copy-on-write capture on the
  /// app pipe.
  std::uint32_t ckpt_chunk_bytes = 64 * 1024;

  /// TCP flow control: a new message is admitted onto a connection only
  /// while fewer than this many bytes are in flight (sent but not yet
  /// dequeued by the receiving process). Models kernel send+receive
  /// buffering; the reason inline eager senders (P4) stall when their peer
  /// is not draining.
  std::uint32_t tcp_window_bytes = 64 * 1024;
};

}  // namespace mpiv::net
