// Local "UNIX socket" between an MPI process and its communication daemon.
//
// Synchronous at whole-protocol-message granularity, as in the paper: the
// sender pays the local copy cost (per-message overhead + bytes at local
// pipe bandwidth) and the message appears on the other end pipe_latency
// later. Pipes do not occupy the NIC and are not counted as wire messages.
//
// Messages are PipeFrames: a small owned head (framing + scalar fields)
// plus an optional ref-counted payload slice. Handing a bulk payload across
// the pipe is therefore zero-copy at user level — the daemon records the
// *same* underlying bytes into its sender log and TX queue that the app
// handed over (the modeled pipe transfer time still covers head+payload,
// which is the kernel's socket copy).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "net/params.hpp"
#include "sim/mailbox.hpp"

namespace mpiv::net {

/// One pipe message: owned framing bytes plus a shared bulk payload.
struct PipeFrame {
  Buffer head;
  SharedBuffer payload;

  PipeFrame() = default;
  explicit PipeFrame(Buffer h) : head(std::move(h)) {}
  PipeFrame(Buffer h, SharedBuffer p)
      : head(std::move(h)), payload(std::move(p)) {}

  [[nodiscard]] std::size_t size() const { return head.size() + payload.size(); }
};

class Pipe {
 public:
  class End {
   public:
    End(Pipe& pipe, int side) : pipe_(pipe), side_(side) {}

    /// Blocking send; charges the calling fiber the local copy cost for the
    /// whole frame (head + payload).
    void send(sim::Context& ctx, PipeFrame frame) {
      const NetParams& p = pipe_.params_;
      ctx.sleep(p.pipe_per_msg + transfer_time(frame.size(), p.pipe_bandwidth_bps));
      Pipe& pipe = pipe_;
      int other = 1 - side_;
      pipe_.engine_.schedule_in(
          p.pipe_latency, [&pipe, other, m = std::move(frame)]() mutable {
            pipe.boxes_[other].push(std::move(m));
            if (pipe.notifiers_[other] != nullptr) pipe.notifiers_[other]->notify();
          });
    }

    /// Convenience for head-only messages.
    void send(sim::Context& ctx, Buffer msg) {
      send(ctx, PipeFrame(std::move(msg)));
    }

    /// Copy-on-write checkpoint handoff. Models a fork()-style capture: the
    /// app is only charged for the pages it actually dirtied since the last
    /// capture through this end (dirty regions tracked at ckpt_chunk_bytes
    /// granularity via content hashes), copied at memcpy bandwidth, plus the
    /// per-message pipe overhead for the head. Unchanged pages are shared
    /// with the previous capture and cost nothing. Returns the number of
    /// dirty payload bytes charged.
    std::size_t send_cow(sim::Context& ctx, PipeFrame frame) {
      const NetParams& p = pipe_.params_;
      const std::uint32_t chunk = p.ckpt_chunk_bytes;
      std::vector<std::uint64_t> hashes = chunk_hashes(frame.payload.view(), chunk);
      std::size_t dirty = 0;
      for (std::size_t i = 0; i < hashes.size(); ++i) {
        if (i >= cow_hashes_.size() || hashes[i] != cow_hashes_[i]) {
          dirty += chunk_len(frame.payload.size(), chunk, i);
        }
      }
      cow_hashes_ = std::move(hashes);
      ctx.sleep(p.pipe_per_msg +
                transfer_time(frame.head.size(), p.pipe_bandwidth_bps) +
                transfer_time(dirty, p.memcpy_bandwidth_bps));
      Pipe& pipe = pipe_;
      int other = 1 - side_;
      pipe_.engine_.schedule_in(
          p.pipe_latency, [&pipe, other, m = std::move(frame)]() mutable {
            pipe.boxes_[other].push(std::move(m));
            if (pipe.notifiers_[other] != nullptr) pipe.notifiers_[other]->notify();
          });
      return dirty;
    }

    /// Blocking receive.
    PipeFrame recv(sim::Context& ctx) { return pipe_.boxes_[side_].recv(ctx); }

    std::optional<PipeFrame> try_recv() { return pipe_.boxes_[side_].try_recv(); }

    [[nodiscard]] bool has_pending() const {
      return !pipe_.boxes_[side_].empty();
    }

    /// Select-loop integration: poke this notifier when a message lands here.
    void set_notifier(sim::Notifier* n) { pipe_.notifiers_[side_] = n; }

   private:
    Pipe& pipe_;
    int side_;
    /// Per-chunk content hashes of the last send_cow payload: the dirty
    /// tracker for the next capture.
    std::vector<std::uint64_t> cow_hashes_;
  };

  Pipe(sim::Engine& engine, const NetParams& params)
      : engine_(engine),
        params_(params),
        boxes_{sim::Mailbox<PipeFrame>(engine), sim::Mailbox<PipeFrame>(engine)},
        ends_{End(*this, 0), End(*this, 1)} {}

  /// The MPI-process side.
  End& app_end() { return ends_[0]; }
  /// The daemon side.
  End& daemon_end() { return ends_[1]; }

 private:
  friend class End;
  sim::Engine& engine_;
  NetParams params_;
  sim::Mailbox<PipeFrame> boxes_[2];
  sim::Notifier* notifiers_[2] = {nullptr, nullptr};
  End ends_[2];
};

}  // namespace mpiv::net
