// Local "UNIX socket" between an MPI process and its communication daemon.
//
// Synchronous at whole-protocol-message granularity, as in the paper: the
// sender pays the local copy cost (per-message overhead + bytes at local
// pipe bandwidth) and the message appears on the other end pipe_latency
// later. Pipes do not occupy the NIC and are not counted as wire messages.
//
// Messages are PipeFrames: a small owned head (framing + scalar fields)
// plus an optional ref-counted payload slice. Handing a bulk payload across
// the pipe is therefore zero-copy at user level — the daemon records the
// *same* underlying bytes into its sender log and TX queue that the app
// handed over (the modeled pipe transfer time still covers head+payload,
// which is the kernel's socket copy).
#pragma once

#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "net/params.hpp"
#include "sim/mailbox.hpp"

namespace mpiv::net {

/// One pipe message: owned framing bytes plus a shared bulk payload.
struct PipeFrame {
  Buffer head;
  SharedBuffer payload;

  PipeFrame() = default;
  explicit PipeFrame(Buffer h) : head(std::move(h)) {}
  PipeFrame(Buffer h, SharedBuffer p)
      : head(std::move(h)), payload(std::move(p)) {}

  [[nodiscard]] std::size_t size() const { return head.size() + payload.size(); }
};

class Pipe {
 public:
  class End {
   public:
    End(Pipe& pipe, int side) : pipe_(pipe), side_(side) {}

    /// Blocking send; charges the calling fiber the local copy cost for the
    /// whole frame (head + payload).
    void send(sim::Context& ctx, PipeFrame frame) {
      const NetParams& p = pipe_.params_;
      ctx.sleep(p.pipe_per_msg + transfer_time(frame.size(), p.pipe_bandwidth_bps));
      Pipe& pipe = pipe_;
      int other = 1 - side_;
      pipe_.engine_.schedule_in(
          p.pipe_latency, [&pipe, other, m = std::move(frame)]() mutable {
            pipe.boxes_[other].push(std::move(m));
            if (pipe.notifiers_[other] != nullptr) pipe.notifiers_[other]->notify();
          });
    }

    /// Convenience for head-only messages.
    void send(sim::Context& ctx, Buffer msg) {
      send(ctx, PipeFrame(std::move(msg)));
    }

    /// Blocking receive.
    PipeFrame recv(sim::Context& ctx) { return pipe_.boxes_[side_].recv(ctx); }

    std::optional<PipeFrame> try_recv() { return pipe_.boxes_[side_].try_recv(); }

    [[nodiscard]] bool has_pending() const {
      return !pipe_.boxes_[side_].empty();
    }

    /// Select-loop integration: poke this notifier when a message lands here.
    void set_notifier(sim::Notifier* n) { pipe_.notifiers_[side_] = n; }

   private:
    Pipe& pipe_;
    int side_;
  };

  Pipe(sim::Engine& engine, const NetParams& params)
      : engine_(engine),
        params_(params),
        boxes_{sim::Mailbox<PipeFrame>(engine), sim::Mailbox<PipeFrame>(engine)},
        ends_{End(*this, 0), End(*this, 1)} {}

  /// The MPI-process side.
  End& app_end() { return ends_[0]; }
  /// The daemon side.
  End& daemon_end() { return ends_[1]; }

 private:
  friend class End;
  sim::Engine& engine_;
  NetParams params_;
  sim::Mailbox<PipeFrame> boxes_[2];
  sim::Notifier* notifiers_[2] = {nullptr, nullptr};
  End ends_[2];
};

}  // namespace mpiv::net
