#include "p4/p4_device.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mpiv::p4 {

P4Device::P4Device(net::Network& net, P4Config config)
    : net_(net), config_(std::move(config)) {
  conns_.resize(static_cast<std::size_t>(config_.size), nullptr);
}

void P4Device::init(sim::Context& ctx) {
  endpoint_.emplace(net_, config_.node);
  endpoint_->listen(kPortBase + config_.rank);
  SimTime deadline = ctx.now() + config_.connect_timeout;

  // Standard pairwise setup: connect to every lower rank (sending a hello
  // block carrying our rank), accept from every higher rank.
  for (mpi::Rank r = 0; r < config_.rank; ++r) {
    net::Conn* c = net_.connect_retry(
        ctx, *endpoint_, config_.directory[static_cast<std::size_t>(r)],
        milliseconds(1), deadline);
    MPIV_CHECK(c != nullptr, "p4: failed to connect to lower rank");
    c->user_tag = static_cast<std::uint64_t>(r);
    conns_[static_cast<std::size_t>(r)] = c;
    Writer hello;
    hello.i32(config_.rank);
    c->send(ctx, hello.take());
  }
  int expected = config_.size - 1 - config_.rank;
  int have = 0;
  while (have < expected) {
    net::NetEvent ev = endpoint_->wait(ctx);
    if (ev.type == net::NetEvent::Type::kData &&
        ev.conn->user_tag == ~0ull) {
      Reader r(ev.data);
      mpi::Rank peer = r.i32();
      ev.conn->user_tag = static_cast<std::uint64_t>(peer);
      conns_[static_cast<std::size_t>(peer)] = ev.conn;
      ++have;
    } else if (ev.type == net::NetEvent::Type::kData) {
      pending_.push_back(mpi::Packet{
          static_cast<mpi::Rank>(ev.conn->user_tag), std::move(ev.data)});
    }
    // Accepted events carry no information until the hello arrives.
  }
}

void P4Device::finish(sim::Context& /*ctx*/) {
  for (net::Conn* c : conns_) {
    if (c != nullptr) c->close();
  }
}

void P4Device::handle_event(sim::Context& /*ctx*/, net::NetEvent ev) {
  if (ev.type != net::NetEvent::Type::kData) return;
  MPIV_CHECK(ev.conn->user_tag != ~0ull, "p4: data before hello");
  pending_.push_back(mpi::Packet{static_cast<mpi::Rank>(ev.conn->user_tag),
                                 std::move(ev.data)});
}

void P4Device::service(sim::Context& ctx) {
  while (auto ev = endpoint_->poll(ctx)) handle_event(ctx, std::move(*ev));
}

void P4Device::bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) {
  net::Conn* c = conns_[static_cast<std::size_t>(dest)];
  MPIV_CHECK(c != nullptr, "p4: no connection to destination");
  // Inline whole-message push. While window-blocked (the peer is not
  // draining), the single-threaded driver only services its own receive
  // queue coarsely — every blocked_service_interval — which is what keeps
  // two nodes pushing at each other from deadlocking, at the cost of
  // serializing the two directions (fig. 9's P4 behaviour). A window wake
  // (peer drained) always proceeds immediately.
  SimTime last_service = ctx.now();
  while (!c->writable()) {
    MPIV_CHECK(c->is_open(), "p4: connection lost (P4 has no fault tolerance)");
    sim::Process& proc = ctx.self();
    std::uint64_t token = proc.wake_token();
    c->add_window_waiter(proc, token);
    sim::EventId timer = net_.engine().schedule_at(
        last_service + config_.blocked_service_interval,
        [&proc, token] { proc.unpark(token); });
    proc.park();
    net_.engine().cancel(timer);
    if (ctx.now() >= last_service + config_.blocked_service_interval) {
      service(ctx);
      last_service = ctx.now();
    }
  }
  // The block is pushed onto the wire as-is: no device-level copies.
  copies_.blocks_sent += 1;
  copies_.payload_bytes_sent += block.size();
  bool ok = c->send(ctx, std::move(block));
  MPIV_CHECK(ok, "p4: connection lost (P4 has no fault tolerance)");
}

mpi::Packet P4Device::brecv(sim::Context& ctx) {
  while (pending_.empty()) {
    net::NetEvent ev = endpoint_->wait(ctx);
    handle_event(ctx, std::move(ev));
  }
  mpi::Packet pkt = std::move(pending_.front());
  pending_.pop_front();
  return pkt;
}

bool P4Device::nprobe(sim::Context& ctx) {
  service(ctx);
  return !pending_.empty();
}

}  // namespace mpiv::p4
