// The P4 channel device: MPICH's default TCP driver, no fault tolerance.
//
// Direct connections between all pairs of ranks. bsend pushes the whole
// block inline on the caller's (the MPI process') time — the behaviour the
// paper measures for MPICH-P4: MPI_Isend pays the wire cost, and a process
// busy sending does not drain its receive queue (it only services incoming
// traffic when window-blocked, as ch_p4's select fallback does, or inside
// receive-side calls).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "mpi/device.hpp"
#include "net/network.hpp"

namespace mpiv::p4 {

/// Port on which rank r listens: kPortBase + r.
constexpr std::int32_t kPortBase = 5000;

struct P4Config {
  net::NodeId node = net::kNoNode;
  mpi::Rank rank = 0;
  mpi::Rank size = 1;
  /// directory[r] = address rank r listens on.
  std::vector<net::Address> directory;
  /// Give up on init if peers are not reachable within this long.
  SimDuration connect_timeout = seconds(30);
  /// How often a write-blocked inline send gets around to servicing the
  /// socket. ch_p4's single-threaded driver does not interleave receive
  /// processing with an in-progress send at chunk granularity (the paper's
  /// §5.2 contrast with the V2 daemon); this coarse service interval
  /// reproduces the measured effect: on bidirectional non-blocking bursts
  /// P4 reaches about half the full-duplex rate (fig. 9). It never applies
  /// while the peer is draining (the window wake fires first).
  SimDuration blocked_service_interval = milliseconds(5);
};

class P4Device final : public mpi::Device {
 public:
  P4Device(net::Network& net, P4Config config);

  void init(sim::Context& ctx) override;
  void finish(sim::Context& ctx) override;
  void bsend(sim::Context& ctx, mpi::Rank dest, Buffer block) override;
  mpi::Packet brecv(sim::Context& ctx) override;
  bool nprobe(sim::Context& ctx) override;

  [[nodiscard]] mpi::Rank rank() const override { return config_.rank; }
  [[nodiscard]] mpi::Rank size() const override { return config_.size; }
  /// ch_p4's eager/rendezvous switch sits at 128 KB.
  [[nodiscard]] std::uint32_t eager_threshold() const override {
    return 128 * 1024;
  }

 private:
  void handle_event(sim::Context& ctx, net::NetEvent ev);
  /// Drains everything currently pending on the endpoint.
  void service(sim::Context& ctx);

  net::Network& net_;
  P4Config config_;
  std::optional<net::Endpoint> endpoint_;
  std::vector<net::Conn*> conns_;          // by peer rank
  std::deque<mpi::Packet> pending_;
};

}  // namespace mpiv::p4
